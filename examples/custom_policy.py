#!/usr/bin/env python3
"""A custom scheduling policy in ~30 lines, with zero edits to the core tier.

The coordinator's decisions are pluggable ``policy.*`` strategies resolved
through the platform registry.  This example adds **longest-first** (the
mirror image of the built-in ``policy.sched.fastest-first``: get the big
rocks out of the way early) and compares it against the built-ins on a
heterogeneous batch — selecting each one purely by registry key, exactly
like ``--set policy.scheduler=...`` does on the CLI.
"""

from repro.platform import component
from repro.policies import SchedulerPolicy
from repro.scenarios import benchmark_cell


# ---------------------------------------------------------------- the policy
@component("example.sched.longest-first")
class LongestFirstPolicy(SchedulerPolicy):
    """Longest declared execution time first (FCFS tie-break)."""

    key = "example.sched.longest-first"

    def choose(self, eligible, server, now):
        # `eligible` arrives FCFS-ordered and non-empty; the de-duplication
        # rules, assignment bookkeeping and reschedule-on-suspicion switch
        # are all inherited from SchedulerPolicy.
        return max(
            eligible,
            key=lambda record: record.call.exec_time
            if record.call.exec_time is not None
            else 0.0,
        )


# ------------------------------------------------------------- the comparison
POLICIES = (
    "policy.sched.fifo-reschedule",
    "policy.sched.fastest-first",
    "example.sched.longest-first",  # ours, by key — no other wiring
)

if __name__ == "__main__":
    print("scheduling a heterogeneous batch (24 calls, 4..16 s) under faults:")
    for policy in POLICIES:
        outputs = benchmark_cell(
            n_calls=24, exec_time=4.0, exec_time_spread=3.0,
            n_servers=4, n_coordinators=2,
            fault_kind="rate", fault_target="servers", faults_per_minute=2.0,
            scheduler_policy=policy, seed=7, horizon=3000.0,
        )
        print(
            f"  {policy:34s} makespan {outputs['makespan']:7.1f}s  "
            f"completed {outputs['completed']}/{outputs['submitted']}"
        )
    print("ok: a custom policy is a class + @component key, nothing else")
