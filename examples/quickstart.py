#!/usr/bin/env python3
"""Quickstart: submit a handful of RPCs to a simulated desktop grid.

Builds the paper's confined cluster (16 servers, 4 coordinators, 1 client),
issues blocking and non-blocking calls through the GridRPC-compatible API and
prints what happened.
"""

from repro.core.api import GridRpc
from repro.grid import build_confined_cluster


def main() -> None:
    grid = build_confined_cluster()
    grid.start()
    api = GridRpc(grid.client)
    api.initialize()
    outcome = {}

    def application():
        # One blocking call...
        result = yield from api.call("sleep", exec_time=3.0, params_bytes=4096)
        outcome["blocking"] = result
        # ...then a batch of non-blocking calls collected with wait_all.
        handle_ids = []
        for _ in range(8):
            handle_id = yield from api.call_async("sleep", exec_time=2.0, params_bytes=1024)
            handle_ids.append(handle_id)
        outcome["batch"] = yield from api.wait_all(handle_ids)

    process = grid.run_process(application(), name="quickstart")
    grid.run_until(process, timeout=600.0)

    print(f"virtual time elapsed : {grid.env.now:.1f} s")
    print(f"blocking call result : {outcome['blocking'].identity} "
          f"({outcome['blocking'].size_bytes} B, from {outcome['blocking'].produced_by})")
    print(f"batch completed      : {len(outcome['batch'])} calls")
    print("client statistics    :", grid.client.stats())
    print("network statistics   :", grid.network.stats())


if __name__ == "__main__":
    main()
