#!/usr/bin/env python3
"""A custom failure detector in ~30 lines, with zero edits to the detector.

The suspicion *rule* is a pluggable ``policy.detect.*`` strategy; the
mechanism (last-heard bookkeeping, suspicion latching, wrong-suspicion
accounting) stays in ``FailureDetector``.  This example adds a **max-gap**
accrual variant — suspect once the silence beats the worst inter-heartbeat
gap seen so far, with a safety margin — and scores it against the built-ins
on the same lossy heart-beat replay, selecting it by registry key and by
dotted import path (both work anywhere a policy entry does, including
``--set policy.detection=...`` on the CLI).
"""

from collections import deque

from repro.experiments.ablations import detector_cell
from repro.platform import component
from repro.policies import DetectionPolicy


# --------------------------------------------------------------- the detector
@component("example.detect.max-gap")
class MaxGapDetection(DetectionPolicy):
    """Suspect when silence exceeds ``margin x`` the largest recent gap."""

    key = "example.detect.max-gap"

    def __init__(self, margin=2.0, window=64, name=None):
        super().__init__(name)
        self.margin = float(margin)
        self.window = int(window)
        self._gaps = {}

    def observe(self, subject, gap):
        if gap > 0:
            self._gaps.setdefault(subject, deque(maxlen=self.window)).append(gap)

    def forget(self, subject):  # new incarnation: its silences prove nothing
        self._gaps.pop(subject, None)

    def suspects(self, subject, silence, config):
        if silence > config.suspicion_timeout:
            return True  # never slower than the paper's fixed rule
        gaps = self._gaps.get(subject)
        return bool(gaps) and silence > self.margin * max(gaps)


# ------------------------------------------------------------- the comparison
DETECTORS = (
    "policy.detect.fixed-timeout",
    "policy.detect.phi-accrual",
    "example.detect.max-gap",  # ours, by registry key — no other wiring
    # The same class again via its dotted import path, with a looser margin.
    {"name": f"{__name__}:MaxGapDetection", "params": {"margin": 3.0}},
)

if __name__ == "__main__":
    print("replaying one lossy heart-beat trace (crash at t=600s) per detector:")
    for entry in DETECTORS:
        label = entry["name"] if isinstance(entry, dict) else entry
        outputs = detector_cell(
            heartbeat_period=5.0, timeout_multiplier=12.0,
            observation_seconds=1200.0, crash_at=600.0,
            detection_policy=entry, seed=0,
        )
        print(
            f"  {label:42s} detected after {outputs['detection_latency_seconds']:6.1f}s, "
            f"{outputs['wrong_suspicion_checks']} wrong-suspicion checks"
        )
    print("ok: a custom detector is a class + @component key, nothing else")
