#!/usr/bin/env python3
"""Figure 11 scenario: inconsistent component views of the system.

The servers believe only LRI/Orsay exists, the client is forced to submit to
Lille only, and the two coordinators keep replicating between themselves.
Work and results flow through the coordinator overlay and the campaign still
completes — the paper's progress condition in action.
"""

from repro.experiments import run_fig11, run_fig9


def main() -> None:
    scale = dict(n_tasks=120, servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8}, seed=3)
    reference = run_fig9(**scale)
    partitioned = run_fig11(**scale)
    print(f"reference   : {reference['makespan']:.0f} s "
          f"({reference['completed']}/{reference['submitted']} tasks)")
    print(f"partitioned : {partitioned['makespan']:.0f} s "
          f"({partitioned['completed']}/{partitioned['submitted']} tasks)")
    print(f"progress condition held under partition: {partitioned['progress_condition_held']}")
    print(f"slowdown due to routing through the replication overlay: "
          f"{partitioned['makespan'] / reference['makespan']:.2f}x")


if __name__ == "__main__":
    main()
