#!/usr/bin/env python3
"""Fault-tolerance demo: the benchmark keeps finishing while components die.

Reproduces the spirit of Figure 7 and of the Figure 10 scenario at a small
scale: the synthetic benchmark runs while a fault generator kills servers,
then the same workload runs while coordinators are killed and restarted, and
finally a scripted double coordinator failure is survived.
"""

from repro.experiments import run_fig10
from repro.grid import run_synthetic_benchmark


def main() -> None:
    print("=== 1. no fault (baseline) ===")
    baseline = run_synthetic_benchmark(n_calls=48, exec_time=5.0, n_servers=8, n_coordinators=4)
    print(f"makespan {baseline.makespan:.1f} s "
          f"({100 * baseline.overhead_vs_ideal:.0f}% over the {baseline.ideal_time:.0f} s ideal)")

    print("\n=== 2. servers killed at 6 faults/min ===")
    servers = run_synthetic_benchmark(
        n_calls=48, exec_time=5.0, n_servers=8, n_coordinators=4,
        faults_per_minute=6.0, fault_target="servers", fault_restart_delay=5.0, seed=7,
    )
    print(f"makespan {servers.makespan:.1f} s, faults injected {servers.faults_injected}, "
          f"completed {servers.completed}/{servers.submitted}")

    print("\n=== 3. coordinators killed at 6 faults/min ===")
    coordinators = run_synthetic_benchmark(
        n_calls=48, exec_time=5.0, n_servers=8, n_coordinators=4,
        faults_per_minute=6.0, fault_target="coordinators", fault_restart_delay=5.0, seed=7,
    )
    print(f"makespan {coordinators.makespan:.1f} s, faults injected {coordinators.faults_injected}, "
          f"completed {coordinators.completed}/{coordinators.submitted}")

    print("\n=== 4. two consecutive coordinator faults (Figure 10 scenario) ===")
    result = run_fig10(
        n_tasks=120, servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8}, seed=3
    )
    for event in result["events"]:
        print(f"  t={event['time']:7.0f}s  label {event['label']}: {event['event']}")
    print(f"campaign completed: {result['tolerated_two_coordinator_faults']} "
          f"({result['completed']}/{result['submitted']} tasks, {result['makespan']:.0f} s)")


if __name__ == "__main__":
    main()
