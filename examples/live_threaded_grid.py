#!/usr/bin/env python3
"""Drive a scenario in (scaled) real time with the RealTimeDriver.

The exact same components that run in virtual time for the experiments are
paced against the wall clock here (speedup 20x so the demo takes ~2 s), with
a live progress line — the "engine-agnostic" property described in DESIGN.md.
"""

import sys

from repro.grid import build_confined_cluster
from repro.runtime import RealTimeDriver
from repro.workloads import SyntheticWorkload


def main() -> None:
    grid = build_confined_cluster(n_servers=4, n_coordinators=2)
    grid.start()
    workload = SyntheticWorkload(n_calls=12, exec_time=5.0, params_bytes=2048)
    grid.run_process(workload.run(grid.client), name="live-workload")

    driver = RealTimeDriver(grid.env, speedup=20.0)
    last = {"printed": -1.0}

    def tick(now: float) -> None:
        if now - last["printed"] >= 5.0:
            last["printed"] = now
            done = workload.completed_count()
            sys.stdout.write(f"\r virtual t={now:6.1f}s  completed {done:2d}/12")
            sys.stdout.flush()

    driver.run(until=60.0, tick=tick)
    print(f"\nfinal: {workload.completed_count()}/12 completed, "
          f"{driver.events_processed} events processed")


if __name__ == "__main__":
    main()
