#!/usr/bin/env python3
"""A new fault injector in ~30 lines, with zero edits to the grid wiring.

The platform redesign makes injectors, detectors and policies *components*:
a class with a ``setup(builder)/start()/stop()`` lifecycle, registered under
a string key.  This example adds a **rolling blackout** — servers are taken
down one at a time, round-robin, each for a fixed outage — and drives a
scenario sweep that references it purely by name from the spec's
``components:`` list.  Neither ``repro/grid/builder.py`` nor the engine is
touched.
"""

from repro.platform import BaseComponent, component
from repro.scenarios import Axis, ScenarioSpec, SweepRunner, benchmark_cell


@component("example.rolling-blackout")
class RollingBlackout(BaseComponent):
    """Kill one server at a time, round-robin, each down for ``outage`` s."""

    def __init__(self, period: float = 60.0, outage: float = 10.0):
        super().__init__("rolling-blackout")
        self.period, self.outage = period, outage
        self.injected = 0  # read back as the cell's faults_injected output

    def setup(self, builder):
        self.env = builder.env
        self.hosts = builder.hosts("servers")
        self.monitor = builder.monitor

    def start(self):
        self._running = True
        self.env.process(self._run(), name=self.name)

    def stop(self):
        self._running = False

    def _run(self):
        index = 0
        while self._running:
            yield self.env.timeout(self.period)
            victim = self.hosts[index % len(self.hosts)]
            index += 1
            if self._running and victim.up:
                self.injected += 1
                self.monitor.incr("blackout.kills")
                victim.crash(cause=self.name)
                self.env.process(self._restore(victim), name=f"{self.name}:restore")

    def _restore(self, victim):
        yield self.env.timeout(self.outage)
        if not victim.up:
            victim.restart()


BLACKOUT_SWEEP = ScenarioSpec(
    name="blackout-sweep",
    title="Synthetic benchmark under a rolling blackout",
    cell=benchmark_cell,
    base=dict(n_calls=24, exec_time=5.0, n_servers=4, n_coordinators=2,
              horizon=2500.0),
    axes=(Axis("blackout_period", (25.0, 8.0)),),
    seeds=(3,),
    # The injector is referenced by its registered name; "$blackout_period"
    # interpolates the swept axis into the component's parameters.
    components=(
        {"name": "example.rolling-blackout",
         "params": {"period": "$blackout_period", "outage": 15.0}},
    ),
)


def main() -> None:
    result = SweepRunner(BLACKOUT_SWEEP, jobs=1).run()
    for row in result.rows:
        print(
            f"period {row['blackout_period']:6.1f} s -> makespan "
            f"{row['makespan']:7.1f} s, completed {row['completed']}/"
            f"{row['submitted']}, blackouts {row['faults_injected']}"
        )


if __name__ == "__main__":
    main()
