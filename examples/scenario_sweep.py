#!/usr/bin/env python3
"""Authoring a custom scenario: a ~30-line spec instead of a new module.

The declarative scenario engine (``repro.scenarios``) turns a new workload
into a spec: pick a cell kernel (here the shared synthetic-benchmark kernel),
declare what is fixed, what is swept and what is measured, and hand it to the
sweep runner.  The same spec is what ``python -m repro run`` executes, so a
registered spec immediately gains the parallel runner, the JSON results store
and the CLI for free.

This example sweeps *coordinator* churn (the paper only sweeps servers in
Fig. 7): how much replication headroom do volatile coordinators burn?
"""

from repro.experiments.common import print_rows
from repro.scenarios import (
    Axis,
    ResultsStore,
    ScenarioSpec,
    SweepRunner,
    benchmark_cell,
)
from repro.scenarios.reducers import grouped, mean

SPEC = ScenarioSpec(
    name="coordinator-churn",
    title="Synthetic benchmark vs coordinator MTBF (volatile middle tier)",
    cell=benchmark_cell,
    base=dict(
        n_calls=24, exec_time=5.0, n_servers=8, n_coordinators=4,
        fault_kind="churn", fault_target="coordinators",
        mttr=10.0, horizon=4000.0,
    ),
    axes=(Axis("mtbf", (600.0, 120.0, 30.0)),),
    seeds=(7, 11),
    outputs=("makespan", "completed", "faults_injected"),
    reduce=lambda results: [
        {
            "coordinator_mtbf_seconds": mtbf,
            "mean_makespan_seconds": mean(c.outputs["makespan"] for c in cells),
            "departures": sum(c.outputs["faults_injected"] for c in cells),
            "all_completed": all(
                c.outputs["completed"] >= c.outputs["submitted"] for c in cells
            ),
        }
        for (mtbf,), cells in grouped(results, ("mtbf",)).items()
    ],
)


def main() -> None:
    runner = SweepRunner(SPEC, jobs=2, store=ResultsStore("results"))
    result = runner.run(save=True)
    print_rows(result.rows, title=SPEC.title)
    print(
        f"\n{len(result.cells)} cells in {result.wall_seconds:.2f}s "
        f"({'parallel' if result.parallel else 'sequential'}); "
        f"artifact: {result.manifest.get('artifact')}"
    )


if __name__ == "__main__":
    main()
