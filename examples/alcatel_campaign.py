#!/usr/bin/env python3
"""The paper's real-life scenario: an Alcatel-style validation campaign.

Runs a scaled-down version of the §5.2 campaign on the Internet testbed
(Lille + LRI coordinators, servers at three sites) and prints the completed-
task curves seen by the primary and by its passive replica — the data behind
Figure 9, including the replica's 60-second plateaux.
"""

from repro.experiments import run_fig9


def main() -> None:
    result = run_fig9(
        n_tasks=200,
        servers_per_site={"lille": 15, "wisconsin": 15, "orsay": 15},
        seed=3,
    )
    print(f"campaign makespan : {result['makespan']:.0f} s "
          f"({result['completed']}/{result['submitted']} tasks)")
    print(f"replica lag       : mean {result['replica_mean_lag_tasks']:.1f} tasks, "
          f"max {result['replica_max_lag_tasks']:.0f} tasks")
    print("\n time(s)   lille   LRI/orsay")
    for t, lille, orsay in zip(
        result["sample_times"], result["lille_completed"], result["orsay_completed"]
    ):
        print(f"{t:8.0f}  {lille:6.0f}  {orsay:9.0f}")


if __name__ == "__main__":
    main()
