"""Protocol-configuration presets for the baseline systems."""

from __future__ import annotations

from repro.config import ProtocolConfig
from repro.types import LoggingStrategy

__all__ = ["rpcv_protocol", "no_fault_tolerance_protocol", "netsolve_style_protocol"]


def rpcv_protocol() -> ProtocolConfig:
    """The full RPC-V configuration used throughout the experiments."""
    protocol = ProtocolConfig()
    protocol.coordinator.replication.period = 5.0
    return protocol.validate()


def no_fault_tolerance_protocol() -> ProtocolConfig:
    """Ninf/RCS-style: no replication, no rescheduling, no durable client logs.

    Submissions still reach the middle tier (the architecture is shared), but
    nothing protects the execution: a lost coordinator or server simply loses
    whatever it was holding until the application notices by itself.
    """
    protocol = ProtocolConfig()
    protocol.coordinator.replication.enabled = False
    protocol.coordinator.scheduler.reschedule_on_suspicion = False
    protocol.client.logging.strategy = LoggingStrategy.OPTIMISTIC
    return protocol.validate()


def netsolve_style_protocol() -> ProtocolConfig:
    """NetSolve-style: server fault tolerance only.

    The agent (coordinator) reschedules RPCs when it suspects a server, but it
    is a single point of failure (no passive replication) and the client keeps
    no durable logs — "agent and client fault tolerance is not supported".
    """
    protocol = ProtocolConfig()
    protocol.coordinator.replication.enabled = False
    protocol.coordinator.scheduler.reschedule_on_suspicion = True
    protocol.client.logging.strategy = LoggingStrategy.OPTIMISTIC
    return protocol.validate()
