"""Protocol presets for the baseline systems, as declarative policy bundles.

Each baseline of the paper's comparison is a *bundle*: one ``policy.*``
registry entry per decision axis (scheduling, replication, client logging).
:func:`protocol_from_bundle` turns a bundle into a ready
:class:`~repro.config.ProtocolConfig` — it records the entries on
``protocol.policy`` (the authoritative selection the components resolve
through :mod:`repro.policies`) *and* mirrors them onto the legacy tier-config
flags (``replication.enabled``, ``reschedule_on_suspicion``,
``logging.strategy``) so ``describe()`` and flag-reading code stay truthful.

Bundles are plain data: copy one, swap an entry (or add ``params``), and a
new protocol ablation needs no code — ``--set policy.scheduler=...`` on the
CLI edits the same entries per run.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.policies.resolve import sync_policy_flags

__all__ = [
    "POLICY_BUNDLES",
    "protocol_from_bundle",
    "rpcv_protocol",
    "no_fault_tolerance_protocol",
    "netsolve_style_protocol",
    "sync_policy_flags",
]

#: the three baseline systems of the paper's comparison, one bundle each.
POLICY_BUNDLES: dict[str, dict[str, Any]] = {
    # The full RPC-V configuration used throughout the experiments.
    "rpc-v": {
        "scheduler": {
            "name": "policy.sched.fifo-reschedule",
            "params": {"reschedule": True},
        },
        "replication": {
            "name": "policy.repl.passive-periodic",
            "params": {"period": 5.0},
        },
        "logging": {"name": "policy.log.pessimistic-nonblocking"},
    },
    # Ninf/RCS-style: no replication, no rescheduling, no durable client
    # logs.  Submissions still reach the middle tier (the architecture is
    # shared), but nothing protects the execution: a lost coordinator or
    # server simply loses whatever it was holding until the application
    # notices by itself.
    "no-fault-tolerance": {
        "scheduler": {
            "name": "policy.sched.fifo-reschedule",
            "params": {"reschedule": False},
        },
        "replication": {"name": "policy.repl.none"},
        "logging": {"name": "policy.log.optimistic"},
    },
    # NetSolve-style: server fault tolerance only.  The agent (coordinator)
    # reschedules RPCs when it suspects a server, but it is a single point
    # of failure (no passive replication) and the client keeps no durable
    # logs — "agent and client fault tolerance is not supported".
    "netsolve-style": {
        "scheduler": {
            "name": "policy.sched.fifo-reschedule",
            "params": {"reschedule": True},
        },
        "replication": {"name": "policy.repl.none"},
        "logging": {"name": "policy.log.optimistic"},
    },
}


def protocol_from_bundle(
    bundle: Mapping[str, Any] | str, protocol: ProtocolConfig | None = None
) -> ProtocolConfig:
    """Build (or extend) a :class:`ProtocolConfig` from a policy bundle.

    ``bundle`` is a mapping of ``scheduler`` / ``replication`` / ``logging``
    to policy entries (name string or ``{"name", "params"}``), or the name
    of a bundle in :data:`POLICY_BUNDLES`.
    """
    if isinstance(bundle, str):
        try:
            bundle = POLICY_BUNDLES[bundle]
        except KeyError:
            known = ", ".join(sorted(POLICY_BUNDLES))
            raise ConfigurationError(
                f"unknown policy bundle {bundle!r} (known: {known})"
            ) from None
    unknown = set(bundle) - {"scheduler", "replication", "logging", "detection"}
    if unknown:
        # Checked before anything is applied, so a typoed axis never leaves
        # a passed-in protocol half-mutated.
        raise ConfigurationError(
            f"unknown policy bundle axes: {sorted(unknown)} "
            "(expected scheduler/replication/logging/detection)"
        )
    protocol = protocol or ProtocolConfig()
    for axis in ("scheduler", "replication", "logging", "detection"):
        entry = bundle.get(axis)
        if entry is None:
            continue
        if isinstance(entry, str):
            entry = {"name": entry}
        name = entry["name"]
        params = dict(entry.get("params") or {})
        setattr(protocol.policy, axis, {"name": name, "params": params})
    return sync_policy_flags(protocol).validate()


def rpcv_protocol() -> ProtocolConfig:
    """The full RPC-V configuration used throughout the experiments."""
    return protocol_from_bundle("rpc-v")


def no_fault_tolerance_protocol() -> ProtocolConfig:
    """Ninf/RCS-style: no replication, no rescheduling, no durable client logs."""
    return protocol_from_bundle("no-fault-tolerance")


def netsolve_style_protocol() -> ProtocolConfig:
    """NetSolve-style: server fault tolerance only."""
    return protocol_from_bundle("netsolve-style")
