"""Baseline configurations RPC-V is compared against.

The paper's related-work section describes what existing Grid RPC systems
offered at the time; the ablation experiment quantifies the difference on the
same substrate by expressing each one as a protocol configuration:

* :func:`rpcv_protocol` — the full system (reference point);
* :func:`no_fault_tolerance_protocol` — no coordinator replication and no
  "on suspicion" rescheduling (Ninf/RCS-style: the programmer is on their own);
* :func:`netsolve_style_protocol` — NetSolve-style server-side fault tolerance
  only: the agent reschedules on server suspicion, but there is a single,
  unreplicated agent and the client keeps no logs (optimistic at best).
"""

from repro.baselines.presets import (
    POLICY_BUNDLES,
    netsolve_style_protocol,
    no_fault_tolerance_protocol,
    protocol_from_bundle,
    rpcv_protocol,
)

__all__ = [
    "POLICY_BUNDLES",
    "netsolve_style_protocol",
    "no_fault_tolerance_protocol",
    "protocol_from_bundle",
    "rpcv_protocol",
]
