"""``python -m repro`` — the scenario engine's front door.

Three subcommands:

* ``list`` — every registered scenario with its figure, scales and cell counts;
* ``run``  — run one or more scenarios (all of them by default) at a given
  scale, fanning the sweep cells out over ``--jobs`` worker processes, and
  write one JSON artifact per run into the results store;
* ``report`` — list stored artifacts, or show the latest rows of one scenario.

Examples::

    python -m repro list
    python -m repro run fig7 --jobs 4
    python -m repro run --scale tiny --out results
    python -m repro run fig7 --protocol no-replication --scale tiny
    python -m repro run fig7 --set coordinator.replication.period=30 \
        --set client.result_poll_period=0.5
    python -m repro run fig7 --resume   # skip already-checkpointed cells
    python -m repro report fig7
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.experiments.common import format_rows
from repro.scenarios.engine import PROTOCOL_PRESETS, resolve_protocol
from repro.scenarios.registry import all_scenarios, get_scenario
from repro.scenarios.runner import SweepRunner
from repro.scenarios.store import ResultsStore

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper's figure sweeps and custom scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered scenarios")

    run = commands.add_parser("run", help="run scenarios and store their results")
    run.add_argument(
        "scenarios", nargs="*", metavar="scenario",
        help="scenario names (default: every registered scenario)",
    )
    run.add_argument(
        "--scale", default="paper",
        help="parameter scale: 'paper' (full size, default) or a named "
             "preset such as 'tiny'",
    )
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: cpu count; 1 = "
             "sequential)",
    )
    run.add_argument(
        "--seed", type=int, action="append", dest="seeds", metavar="S",
        help="replace the scenario's seed axis (repeatable)",
    )
    run.add_argument(
        "--protocol", default=None, metavar="PRESET",
        help="protocol preset for the runs (one of: "
             f"{', '.join(sorted(PROTOCOL_PRESETS))}); only scenarios whose "
             "cell kernel takes a protocol apply it",
    )
    run.add_argument(
        "--set", action="append", dest="overrides", default=[],
        metavar="PATH=VALUE",
        help="dotted-path protocol override, e.g. "
             "--set coordinator.replication.period=30 (repeatable; values "
             "are parsed as JSON, falling back to strings).  'faults.*' "
             "paths route to the fault plan instead: faults.trace=FILE "
             "replays a node,up,down availability trace "
             "(faults.trace_mode=wrap|clamp), faults.kind / faults.target "
             "override the injector kind and tier",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="skip cells already checkpointed for the same resolved spec "
             "(same spec hash + seed) under the results store",
    )
    run.add_argument(
        "--out", default="results", metavar="DIR",
        help="results store directory (default: results/)",
    )
    run.add_argument(
        "--no-save", action="store_true", help="do not write JSON artifacts"
    )
    run.add_argument(
        "--quiet", action="store_true", help="print summaries only, not the rows"
    )

    report = commands.add_parser("report", help="inspect stored results")
    report.add_argument(
        "scenario", nargs="?", help="show the latest artifact of this scenario"
    )
    report.add_argument(
        "--out", default="results", metavar="DIR",
        help="results store directory (default: results/)",
    )
    return parser


def _cmd_list() -> int:
    rows: list[dict[str, Any]] = []
    for name, spec in all_scenarios().items():
        rows.append(
            {
                "scenario": name,
                "figure": spec.figure or "-",
                "cells": spec.resolve().n_cells,
                "scales": ",".join(("paper", *spec.scale_names)),
                "title": spec.title,
            }
        )
    print(format_rows(rows, title="Registered scenarios"))
    return 0


def _parse_overrides(pairs: Sequence[str]) -> dict[str, Any]:
    """``--set path=value`` pairs -> an overrides mapping (values via JSON)."""
    overrides: dict[str, Any] = {}
    for pair in pairs:
        path, sep, raw = pair.partition("=")
        if not sep or not path:
            raise ConfigurationError(
                f"--set expects PATH=VALUE, got {pair!r}"
            )
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[path] = value
    return overrides


#: ``--set faults.<key>=...`` routes to the cell kernel's fault plan instead
#: of the protocol config; this maps each public key to its kernel keyword.
_FAULT_OVERRIDE_KEYS = {
    "trace": "fault_trace",
    "trace_mode": "fault_trace_mode",
    "kind": "fault_kind",
    "target": "fault_target",
}


def _split_fault_overrides(
    overrides: dict[str, Any]
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Split ``faults.*`` entries (cell keywords) from protocol overrides."""
    protocol: dict[str, Any] = {}
    faults: dict[str, Any] = {}
    for path, value in overrides.items():
        if path.startswith("faults."):
            key = path[len("faults."):]
            if key not in _FAULT_OVERRIDE_KEYS:
                known = ", ".join(
                    f"faults.{name}" for name in sorted(_FAULT_OVERRIDE_KEYS)
                )
                raise ConfigurationError(
                    f"unknown fault override {path!r} (known: {known})"
                )
            faults[_FAULT_OVERRIDE_KEYS[key]] = value
        else:
            protocol[path] = value
    return protocol, faults


def _accepted_keywords(cell: Any) -> set[str]:
    """Keyword parameter names a cell kernel accepts."""
    return {
        parameter.name
        for parameter in inspect.signature(cell).parameters.values()
        if parameter.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }


def _protocol_params(
    spec: Any, preset: str | None, overrides: dict[str, Any]
) -> dict[str, Any] | None:
    """The protocol parameters to pass to ``spec``'s cell kernel.

    Returns ``{}`` when nothing was requested, ``None`` when the kernel does
    not accept protocol keywords (the scenario must then be skipped rather
    than silently run with the wrong protocol).
    """
    if preset is None and not overrides:
        return {}
    if not {"protocol_preset", "protocol_overrides"} <= _accepted_keywords(spec.cell):
        return None
    params: dict[str, Any] = {}
    if preset is not None:
        params["protocol_preset"] = preset
    if overrides:
        params["protocol_overrides"] = overrides
    return params


def _fault_params(
    spec: Any, fault_overrides: dict[str, Any]
) -> dict[str, Any] | None:
    """The ``faults.*`` keywords for ``spec``'s cell kernel (gated like
    :func:`_protocol_params`: ``None`` means the kernel can't take them)."""
    if not fault_overrides:
        return {}
    if not set(fault_overrides) <= _accepted_keywords(spec.cell):
        return None
    return dict(fault_overrides)


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.scenarios or list(all_scenarios())
    store = ResultsStore(args.out)
    overrides, fault_overrides = _split_fault_overrides(
        _parse_overrides(args.overrides)
    )
    # Fail fast on a bad preset name or a typo'd override path, before any
    # sweep burns time (the error already names the valid choices).
    resolve_protocol(args.protocol, overrides)
    failures = 0
    for name in names:
        spec = get_scenario(name)
        scale = args.scale
        if scale != "paper" and scale not in spec.scales:
            # Never silently substitute the full-size campaign for a cheap
            # preset: skip, so a missing 'tiny' shows up as a skip in CI
            # output instead of a blown job timeout.
            print(f"-- {name}: no {scale!r} scale defined, skipping")
            continue
        protocol_params = _protocol_params(spec, args.protocol, overrides)
        if protocol_params is None:
            print(f"-- {name}: cell kernel takes no protocol, skipping")
            continue
        fault_params = _fault_params(spec, fault_overrides)
        if fault_params is None:
            print(f"-- {name}: cell kernel takes no fault plan, skipping")
            continue
        cell_params = {**protocol_params, **fault_params}
        runner = SweepRunner(
            spec, scale=scale, jobs=args.jobs, seeds=args.seeds, store=store,
            params=cell_params or None, resume=args.resume,
        )
        plan = runner.plan
        print(
            f"== {name} [{scale}]: {plan.n_cells} cells, "
            f"jobs={runner.jobs} ..."
        )
        try:
            result = runner.run(save=not args.no_save)
        except Exception as error:  # surface and keep sweeping the rest
            failures += 1
            print(f"!! {name} failed: {error}", file=sys.stderr)
            continue
        mode = f"parallel x{result.jobs}" if result.parallel else "sequential"
        resumed = (
            f", {runner.resumed_cells} resumed" if runner.resumed_cells else ""
        )
        print(
            f"   {len(result.rows)} rows from {len(result.cells)} cells "
            f"in {result.wall_seconds:.2f}s ({mode}{resumed}), "
            f"spec {result.spec_hash}"
        )
        if not args.quiet:
            print(format_rows(result.rows, title=f"   {result.title}"))
        artifact = result.manifest.get("artifact")
        if artifact:
            print(f"   artifact: {artifact}")
    return 1 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultsStore(args.out)
    if args.scenario:
        result = store.latest(args.scenario)
        if result is None:
            print(f"no stored runs for {args.scenario!r} under {args.out}/")
            return 1
        try:
            current = get_scenario(result.scenario)
            fresh = current.spec_hash(current.resolve(
                None if result.scale == "paper" else result.scale
            ))
            freshness = (
                " (matches current spec)" if fresh == result.spec_hash
                else f" (current spec is {fresh})"
            )
        except ConfigurationError:
            # The scenario or its scale may have been renamed since the
            # artifact was written; still show the stored rows.
            freshness = " (scenario/scale no longer registered)"
        print(
            f"{result.scenario} [{result.scale}] {result.started_at} "
            f"spec {result.spec_hash}{freshness}"
        )
        print(format_rows(result.rows, title=result.title))
        return 0
    runs = store.list_runs()
    if not runs:
        print(f"no stored runs under {args.out}/")
        return 0
    rows = []
    for path in runs:
        result = store.load(path)
        rows.append(
            {
                "scenario": result.scenario,
                "scale": result.scale,
                "started": result.started_at,
                "rows": len(result.rows),
                "cells": len(result.cells),
                "wall_s": round(result.wall_seconds, 2),
                "spec": result.spec_hash,
                "artifact": os.fspath(path),
            }
        )
    print(format_rows(rows, title=f"Stored runs under {args.out}/"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_report(args)
