"""RPC-V reproduction: fault-tolerant RPC for Internet connected Desktop Grids.

This package reproduces Djilali et al., *"RPC-V: Toward Fault-Tolerant RPC for
Internet Connected Desktop Grids with Volatile Nodes"* (SC 2004): the
three-tier fault-tolerant RPC protocol (clients / replicated coordinators /
volatile servers), every substrate it needs (discrete-event simulation kernel,
best-effort network, volatile hosts with disk and database cost models,
unreliable failure detectors, sender-based message logging), the workloads of
the paper's evaluation, and one experiment driver per figure.

Quickstart::

    from repro.grid import build_confined_cluster
    from repro.workloads import SyntheticWorkload

    grid = build_confined_cluster()
    grid.start()
    workload = SyntheticWorkload(n_calls=16, exec_time=2.0)
    process = grid.run_process(workload.run(grid.client))
    grid.run_until(process, timeout=600.0)
    print(workload.makespan, workload.completed_count())
"""

from repro.config import (
    ClientConfig,
    CoordinatorConfig,
    FaultDetectionConfig,
    LoggingConfig,
    ProtocolConfig,
    ReplicationConfig,
    SchedulerConfig,
    ServerConfig,
)
from repro.errors import (
    ConfigurationError,
    LogCorruption,
    ProtocolError,
    ReproError,
    RPCError,
    RPCTimeout,
    SchedulingError,
    ServiceNotRegistered,
    SessionError,
)
from repro.types import (
    Address,
    CallIdentity,
    ComponentKind,
    LoggingStrategy,
    RPCId,
    RPCStatus,
    SessionId,
    TaskState,
    UserId,
)

__version__ = "1.0.0"

__all__ = [
    "Address",
    "CallIdentity",
    "ClientConfig",
    "ComponentKind",
    "ConfigurationError",
    "CoordinatorConfig",
    "FaultDetectionConfig",
    "LogCorruption",
    "LoggingConfig",
    "LoggingStrategy",
    "ProtocolConfig",
    "ProtocolError",
    "ReplicationConfig",
    "ReproError",
    "RPCError",
    "RPCId",
    "RPCStatus",
    "RPCTimeout",
    "SchedulerConfig",
    "SchedulingError",
    "ServerConfig",
    "ServiceNotRegistered",
    "SessionError",
    "SessionId",
    "TaskState",
    "UserId",
    "__version__",
]
