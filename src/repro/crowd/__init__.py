"""Vectorized crowd tier: statistical client populations at 100k-1M scale.

The full-protocol :class:`~repro.core.client.ClientComponent` models one
client as Python objects and generator processes — faithful, but two orders
of magnitude short of the paper's "heavy traffic from millions of users".
This package models a *crowd* of clients as numpy struct-of-arrays columns
advanced in one vectorized ``tick()`` per scheduler period, emitting
**aggregated** RPC envelopes (batched submits, batched result
acknowledgements, heart-beat summaries) into the existing transport so real
coordinators and servers serve the crowd unmodified.

Layout:

* :mod:`repro.crowd.sharding` — the task-id-space partition across k
  coordinators with deterministic ring-successor handoff (pure Python);
* :mod:`repro.crowd.table`    — the numpy population table (imports numpy);
* :mod:`repro.crowd.component` — the ``tier.crowd`` platform component
  (numpy is only required once a crowd component is actually set up).
"""

from repro.crowd.sharding import ShardMap

__all__ = ["ShardMap"]
