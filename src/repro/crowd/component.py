"""The ``tier.crowd`` platform component: a statistical client population.

One :class:`CrowdComponent` drives a :class:`~repro.crowd.table.CrowdTable`
of 100k-1M statistical clients from a single kernel callback-lane timer
(:meth:`Environment.call_periodic`): every tick it promotes due clients,
claims them into per-shard batches and emits **aggregated** RPC envelopes —
``CROWD_SUBMIT_BATCH`` messages carrying counts and id ranges — to the
coordinator owning each shard (see :class:`~repro.crowd.sharding.ShardMap`).
Real coordinators expand a batch into one task record and real servers
execute it unmodified; completions come back as ``CROWD_RESULT_BATCH``
pushes that are marked off vectorized.

Fault tolerance mirrors the full-protocol client: an unacknowledged or
unresulted batch is re-sent **under the same batch id** (so the coordinator
side de-duplicates on the task key and no client is ever committed twice);
after ``suspect_after`` consecutive timeouts the silent coordinator is
suspected and the shard's traffic hands off deterministically to its ring
successor, whose replicated state already carries the shard's tasks.

numpy is required only here (lazily, at ``setup``): grids without a crowd
component never import it, and a missing numpy surfaces as a clear
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from typing import Any

from repro.core.registry import CoordinatorRegistry
from repro.crowd.sharding import ShardMap
from repro.errors import ConfigurationError
from repro.net.message import Message, MessageType, default_pool
from repro.nodes.node import Host
from repro.platform.component import BaseComponent
from repro.platform.registry import component
from repro.sim.core import ProcessKilled
from repro.types import Address

__all__ = ["CrowdComponent"]

#: per-batch envelope payload bytes: fixed header plus one (lo, hi, count)
#: triple per contiguous id range — the honest cost of range encoding.
_BATCH_HEADER_BYTES = 64
_BATCH_RANGE_BYTES = 12


def _require_table():
    """Import the numpy-backed table, or explain what is missing."""
    try:
        from repro.crowd import table
    except ImportError as error:
        raise ConfigurationError(
            "crowd tier requires numpy: the struct-of-arrays population "
            "table is vectorized (pip install numpy, or drop the tier.crowd "
            f"component) [{error}]"
        ) from None
    return table


@component("tier.crowd")
class CrowdComponent(BaseComponent):
    """A crowd of ``n_clients`` statistical clients on one grid host."""

    #: marks this component as the aggregate tier for engines/reducers.
    tier = "crowd"

    def __init__(
        self,
        n_clients: int = 100_000,
        label: str = "crowd0",
        tick_period: float = 1.0,
        think_window: float = 600.0,
        surge_at: float | None = None,
        surge_factor: float = 1.0,
        exec_time_per_call: float = 0.001,
        result_bytes: int = 64,
        service: str = "crowd",
        retry_timeout: float = 15.0,
        result_patience: float = 60.0,
        suspect_after: int = 2,
        heartbeat_every: int = 5,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"tier.crowd:{label}")
        if tick_period <= 0:
            raise ConfigurationError("crowd tick_period must be positive")
        if retry_timeout <= 0 or result_patience <= 0:
            raise ConfigurationError("crowd retry deadlines must be positive")
        self.n_clients = int(n_clients)
        self.label = str(label)
        self.tick_period = float(tick_period)
        self.think_window = float(think_window)
        self.surge_at = None if surge_at is None else float(surge_at)
        self.surge_factor = float(surge_factor)
        self.exec_time_per_call = float(exec_time_per_call)
        self.result_bytes = int(result_bytes)
        self.service = str(service)
        self.retry_timeout = float(retry_timeout)
        self.result_patience = float(result_patience)
        self.suspect_after = max(1, int(suspect_after))
        self.heartbeat_every = int(heartbeat_every)

        # Populated by setup().
        self.env = None
        self.monitor = None
        self.host: Host | None = None
        self.table = None
        self.shards: ShardMap | None = None
        self.registry: CoordinatorRegistry | None = None

        #: batch id -> {"ids", "shard", "dest", "acked", "retry_at", "resends"}
        self._batches: dict[int, dict[str, Any]] = {}
        self._batch_seq = 0
        #: consecutive unanswered deadlines per coordinator.
        self._strikes: dict[Address, int] = {}
        #: shard -> reroute time, until the successor first answers.
        self._handoff_pending: dict[int, float] = {}
        self._tick_handle = None
        self.started = False

        # Counters (also surfaced by stats()).
        self.ticks = 0
        self.client_ticks = 0
        self.batches_sent = 0
        self.batch_resends = 0
        self.reroutes = 0
        self.suspicions = 0
        self.handoffs_completed = 0
        self.handoff_latency_max = 0.0
        self.stale_results = 0
        self.max_queue_depth = 0
        self.surged_clients = 0

    # ------------------------------------------------------------------ setup
    @property
    def address(self) -> Address:
        return Address("crowd", self.label)

    def setup(self, builder) -> None:
        table = _require_table()
        self.env = builder.env
        self.monitor = builder.monitor
        coordinators = [c.address for c in builder.grid.coordinators]
        if not coordinators:
            raise ConfigurationError("crowd tier needs at least one coordinator")
        address = self.address
        self.host = Host(
            builder.env,
            builder.network,
            address,
            rng=builder.rng.spawn(str(address)),
            monitor=builder.monitor,
        )
        builder.grid.hosts[address] = self.host
        self.shards = ShardMap.over(coordinators, self.n_clients)
        self.registry = CoordinatorRegistry(coordinators=list(self.shards.coordinators))
        # Per-client lanes come from a crn.-prefixed stream: paired-CRN sweep
        # arms (same crn_seed) give every client identical think times, so a
        # policy axis never perturbs the crowd's arrival schedule.
        self.table = table.CrowdTable(
            self.n_clients,
            builder.rng.stream(f"crn.crowd.{self.label}"),
            think_window=self.think_window,
            now=builder.env.now,
        )

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self.host is None:
            raise ConfigurationError(f"{self.name} started before setup")
        self.started = True
        self.host.spawn(self._recv_loop(), name=f"{self.name}:recv")
        self._tick_handle = self.env.call_periodic(
            self.tick_period, self._tick, first_delay=self.tick_period
        )
        if self.surge_at is not None and self.surge_factor > 1.0:
            self.env.call_at(self.surge_at, self._apply_surge)

    def stop(self) -> None:
        self.started = False
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    def _apply_surge(self, _arg=None) -> None:
        if not self.started:
            return
        accelerated = self.table.surge(self.env.now, self.surge_factor)
        self.surged_clients += accelerated
        self.monitor.incr("crowd.surged_clients", accelerated)

    # ------------------------------------------------------------------ tick
    def _tick(self, _arg=None) -> None:
        """One vectorized advance of the whole population (callback lane)."""
        if not self.started:
            return
        now = self.env.now
        table = self.table
        self.ticks += 1
        self.client_ticks += table.n_clients
        table.due(now)
        suspected = self.registry.suspected

        # Claim every due client, one batch per shard per tick.
        for shard in range(self.shards.shard_count):
            lo, hi = self.shards.shard_bounds(shard)
            if hi <= lo:
                continue
            batch_id = self._batch_seq
            ids = table.claim(lo, hi, batch_id, now, now + self.retry_timeout)
            if ids.size == 0:
                continue
            self._batch_seq += 1
            dest = self.shards.owner(shard, suspected)
            if dest is None:
                # Everyone suspected: forgive and retry the primary (the same
                # all-suspected reset rule the full client uses).
                suspected.clear()
                dest = self.shards.primary(shard)
            record = {
                "ids": ids,
                "shard": shard,
                "dest": dest,
                "acked": False,
                "retry_at": now + self.retry_timeout,
                "resends": 0,
            }
            self._batches[batch_id] = record
            self._send_batch(batch_id, record)

        # Re-send every overdue batch (same batch id: the coordinator side
        # de-duplicates on the task key, so duplicates are counted, not
        # double-committed) and strike the silent coordinator.
        for batch_id, record in list(self._batches.items()):
            if now < record["retry_at"]:
                continue
            self._strike(record["dest"])
            self._resend(batch_id, record, now)

        if self.heartbeat_every > 0 and self.ticks % self.heartbeat_every == 0:
            self._send_heartbeats()

        depth = table.queue_depth()
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self.monitor.sample(f"crowd.queue_depth.{self.label}", now, depth)

    # ------------------------------------------------------------- messaging
    def _send_batch(self, batch_id: int, record: dict[str, Any]) -> None:
        from repro.crowd.table import id_ranges

        ids = record["ids"]
        ranges = id_ranges(ids)
        count = int(ids.size)
        payload = {
            "crowd": self.label,
            "shard": record["shard"],
            "batch": batch_id,
            "count": count,
            "id_lo": int(ids[0]),
            "id_hi": int(ids[-1]),
            "ranges": ranges,
            "service": self.service,
            "exec_time": count * self.exec_time_per_call,
            "result_bytes": self.result_bytes,
        }
        self.host.send(
            Message(
                mtype=MessageType.CROWD_SUBMIT_BATCH,
                source=self.host.address,
                dest=record["dest"],
                payload=payload,
                size_bytes=_BATCH_HEADER_BYTES + _BATCH_RANGE_BYTES * ranges,
            )
        )
        self.batches_sent += 1
        self.monitor.incr("crowd.batches_sent")
        self.monitor.incr("crowd.calls_batched", count)

    def _resend(self, batch_id: int, record: dict[str, Any], now: float) -> None:
        record["resends"] += 1
        self.batch_resends += 1
        self.monitor.incr("crowd.batch_resends")
        dest = self.shards.owner(record["shard"], self.registry.suspected)
        if dest is None:
            self.registry.suspected.clear()
            dest = self.shards.primary(record["shard"])
        if dest != record["dest"]:
            # Deterministic handoff: the shard's traffic moves to the ring
            # successor of the suspected owner.
            record["dest"] = dest
            record["acked"] = False
            self.reroutes += 1
            self.monitor.incr("crowd.reroutes")
            self._handoff_pending.setdefault(record["shard"], now)
        deadline = self.result_patience if record["acked"] else self.retry_timeout
        record["retry_at"] = now + deadline * (1 + record["resends"])
        self.table.mark_retry(record["ids"], record["retry_at"])
        self._send_batch(batch_id, record)

    def _strike(self, dest: Address) -> None:
        strikes = self._strikes.get(dest, 0) + 1
        self._strikes[dest] = strikes
        if strikes >= self.suspect_after and dest not in self.registry.suspected:
            self.registry.suspect(dest)
            self.suspicions += 1
            self.monitor.incr("crowd.suspicions")

    def _send_heartbeats(self) -> None:
        """Aggregate heart-beat summaries (pooled envelopes, receiver releases)."""
        pool = default_pool()
        table = self.table
        for dest in self.registry.unsuspected():
            self.host.send(
                pool.acquire(
                    MessageType.CROWD_HEARTBEAT,
                    self.host.address,
                    dest,
                    payload={
                        "crowd": self.label,
                        "alive": table.n_clients,
                        "completed": table.completed,
                    },
                    size_bytes=24,
                )
            )
            self.monitor.incr("crowd.heartbeats")

    # ---------------------------------------------------------------- receive
    def _recv_loop(self):
        # Batched drain: one resume per tick however many acks/results land.
        try:
            while True:
                batch: list[Message] = yield self.host.recv_many()
                for message in batch:
                    self._dispatch(message)
        except ProcessKilled:  # pragma: no cover - host crash
            return

    def _dispatch(self, message: Message) -> None:
        source = message.source
        self.registry.rehabilitate(source)
        self._strikes.pop(source, None)
        mtype = message.mtype
        if mtype is MessageType.CROWD_SUBMIT_ACK:
            record = self._batches.get(int(message.payload.get("batch", -1)))
            if record is not None and source == record["dest"]:
                if not record["acked"]:
                    record["acked"] = True
                    record["retry_at"] = self.env.now + self.result_patience
                self._complete_handoff(record["shard"])
        elif mtype is MessageType.CROWD_RESULT_BATCH:
            record = self._batches.pop(int(message.payload.get("batch", -1)), None)
            if record is None:
                self.stale_results += 1
                self.monitor.incr("crowd.stale_results")
            else:
                new = self.table.mark_done(record["ids"])
                self.monitor.incr("crowd.completions", new)
                self._complete_handoff(record["shard"])
        message.release()

    def _complete_handoff(self, shard: int) -> None:
        started = self._handoff_pending.pop(shard, None)
        if started is None:
            return
        latency = self.env.now - started
        self.handoffs_completed += 1
        if latency > self.handoff_latency_max:
            self.handoff_latency_max = latency
        self.monitor.incr("crowd.handoffs")
        self.monitor.sample(f"crowd.handoff_latency.{self.label}", self.env.now, latency)

    # --------------------------------------------------------------- reporting
    def stats(self) -> dict[str, Any]:
        """Flat numeric snapshot (stamped into RunReport as ``crowd_*``)."""
        counts = self.table.counts() if self.table is not None else {}
        return {
            "clients": self.n_clients,
            "completed": self.table.completed if self.table is not None else 0,
            "duplicate_completions": (
                self.table.duplicate_completions if self.table is not None else 0
            ),
            "idle": counts.get("idle", 0),
            "pending": counts.get("pending", 0),
            "inflight": counts.get("inflight", 0),
            "ticks": self.ticks,
            "client_ticks": self.client_ticks,
            "batches_sent": self.batches_sent,
            "batch_resends": self.batch_resends,
            "reroutes": self.reroutes,
            "suspicions": self.suspicions,
            "handoffs": self.handoffs_completed,
            "handoff_latency_max": self.handoff_latency_max,
            "stale_results": self.stale_results,
            "surged_clients": self.surged_clients,
            "max_queue_depth": self.max_queue_depth,
        }
