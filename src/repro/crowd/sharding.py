"""Task-id-space sharding across coordinators, with ring-successor handoff.

The crowd partitions its client-id space into contiguous blocks, one per
coordinator, so each coordinator owns a bounded slice of the aggregate
submit traffic.  The coordinator order is the **same total order the
coordinators' own virtual ring uses** (:meth:`CoordinatorRegistry.ring_successor`
sorts the known list by string form), so "hand a dead shard to its ring
successor" means exactly what it means on the replication ring: the next
unsuspected coordinator in string order.  Handoff is therefore deterministic
— every component that knows the coordinator list and the suspicion set
computes the same owner, with no coordination round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Iterable

from repro.errors import ConfigurationError
from repro.types import Address

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Contiguous block partition of ``n_clients`` ids over the coordinators.

    Shard *i* is primarily owned by the *i*-th coordinator in ring (string)
    order; :meth:`owner` walks forward around the ring past suspected
    coordinators, which is the deterministic handoff rule.
    """

    #: coordinators in ring order (sorted by string form, like the
    #: replication ring of :class:`~repro.core.registry.CoordinatorRegistry`).
    coordinators: tuple[Address, ...]
    n_clients: int

    @classmethod
    def over(cls, coordinators: Iterable[Address], n_clients: int) -> "ShardMap":
        """Build the map over ``coordinators`` (deduplicated, ring-ordered)."""
        ordered = tuple(sorted(set(coordinators), key=str))
        if not ordered:
            raise ConfigurationError("a shard map needs at least one coordinator")
        if n_clients < 0:
            raise ConfigurationError("n_clients must be non-negative")
        return cls(coordinators=ordered, n_clients=int(n_clients))

    @property
    def shard_count(self) -> int:
        """One shard per coordinator."""
        return len(self.coordinators)

    def shard_bounds(self, shard: int) -> tuple[int, int]:
        """Half-open id range ``[lo, hi)`` of ``shard``.

        Blocks differ in size by at most one; the first ``n_clients % k``
        shards take the extra id.
        """
        k = self.shard_count
        if not 0 <= shard < k:
            raise ConfigurationError(f"shard {shard} out of range (k={k})")
        size, extra = divmod(self.n_clients, k)
        lo = shard * size + min(shard, extra)
        hi = lo + size + (1 if shard < extra else 0)
        return lo, hi

    def shard_of(self, client_id: int) -> int:
        """The shard owning ``client_id``."""
        if not 0 <= client_id < self.n_clients:
            raise ConfigurationError(f"client id {client_id} out of range")
        k = self.shard_count
        size, extra = divmod(self.n_clients, k)
        boundary = (size + 1) * extra
        if client_id < boundary:
            return client_id // (size + 1)
        return extra + (client_id - boundary) // size

    def primary(self, shard: int) -> Address:
        """The shard's primary coordinator (ignoring suspicions)."""
        lo, hi = self.shard_bounds(shard)  # validates the index
        del lo, hi
        return self.coordinators[shard]

    def owner(
        self, shard: int, suspected: Collection[Address] = ()
    ) -> Address | None:
        """Current owner of ``shard``: the primary, or its ring successor.

        Walks forward around the ring from the primary, skipping suspected
        coordinators — the same rule the coordinators themselves use to pick
        a replication successor, so a shard whose primary is suspected lands
        exactly on the coordinator that holds the primary's replicated
        state.  ``None`` when every coordinator is suspected.
        """
        k = self.shard_count
        for step in range(k):
            candidate = self.coordinators[(shard + step) % k]
            if candidate not in suspected:
                return candidate
        return None
