"""The crowd population table: struct-of-arrays client state in numpy.

One :class:`CrowdTable` holds the session state of the whole crowd as
parallel columns (the vivarium population-table pattern): instead of one
Python object and one generator process per client, every per-tick decision
— who is due to submit, who joins the next batch, who completes — is a
vectorized operation over the columns.  That is what moves the per-client
ceiling from ~10k full-protocol nodes to 100k-1M statistical clients.

Columns
=======

``state``      int8   lifecycle: IDLE -> PENDING -> INFLIGHT -> DONE
``submit_at``  f64    virtual time the client's (single) call becomes due
``retry_at``   f64    deadline of the batch currently carrying the client
``backoff``    int16  how many times the client's batch has been re-sent
``batch``      int64  id of the batch carrying the client (-1 = none)
``lane``       uint64 per-client RNG lane, drawn once from the ``crn.crowd``
                      stream; every per-client random quantity is a pure
                      function of (lane, salt), so think times are identical
                      across paired-CRN sweep arms

The table is deliberately free of any messaging or scheduling logic: the
:class:`~repro.crowd.component.CrowdComponent` decides *when* to call these
methods and *where* the resulting batches go.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CrowdTable", "IDLE", "PENDING", "INFLIGHT", "DONE", "id_ranges"]

#: lifecycle states of the ``state`` column.
IDLE, PENDING, INFLIGHT, DONE = 0, 1, 2, 3

#: splitmix64 mixing constants (public domain; the standard finalizer).
_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MIX2 = np.uint64(0x94D049BB133111EB)


def id_ranges(ids: np.ndarray) -> int:
    """Number of maximal contiguous runs in the (sorted, unique) ``ids``.

    Batched envelopes carry their member ids as ranges; this is the honest
    wire-size term (``12 bytes * ranges``) of one batch.
    """
    if ids.size == 0:
        return 0
    return int(np.count_nonzero(np.diff(ids) > 1)) + 1


class CrowdTable:
    """Struct-of-arrays state of ``n_clients`` statistical clients."""

    def __init__(
        self,
        n_clients: int,
        lane_source: np.random.Generator,
        think_window: float,
        now: float = 0.0,
    ) -> None:
        n = int(n_clients)
        if n <= 0:
            raise ValueError("a crowd needs at least one client")
        if think_window <= 0:
            raise ValueError("think_window must be positive")
        self.n_clients = n
        self.think_window = float(think_window)
        self.state = np.zeros(n, dtype=np.int8)
        self.submit_at = np.empty(n, dtype=np.float64)
        self.retry_at = np.full(n, np.inf, dtype=np.float64)
        self.backoff = np.zeros(n, dtype=np.int16)
        self.batch = np.full(n, -1, dtype=np.int64)
        #: one uint64 lane per client — the only draw the table ever takes
        #: from its source stream, so paired-CRN arms stay in lockstep.
        self.lane = lane_source.integers(
            0, np.iinfo(np.uint64).max, size=n, dtype=np.uint64, endpoint=False
        )
        self.submit_at[:] = now + self.think_window * self._lane_uniform(1)
        #: clients completed exactly once (transitions into DONE).
        self.completed = 0
        #: completion notifications for already-DONE clients.
        self.duplicate_completions = 0

    # ------------------------------------------------------------------ RNG
    def _lane_uniform(self, salt: int) -> np.ndarray:
        """Uniform [0, 1) per client, a pure function of (lane, salt)."""
        with np.errstate(over="ignore"):
            z = self.lane + np.uint64(salt) * _SM_GAMMA
            z = (z ^ (z >> np.uint64(30))) * _SM_MIX1
            z = (z ^ (z >> np.uint64(27))) * _SM_MIX2
            z = z ^ (z >> np.uint64(31))
        return (z >> np.uint64(11)).astype(np.float64) * 2.0**-53

    # ------------------------------------------------------------ lifecycle
    def due(self, now: float) -> int:
        """Promote every IDLE client whose submit time has passed to PENDING."""
        mask = (self.state == IDLE) & (self.submit_at <= now)
        count = int(np.count_nonzero(mask))
        if count:
            self.state[mask] = PENDING
        return count

    def claim(
        self, lo: int, hi: int, batch_id: int, now: float, deadline: float
    ) -> np.ndarray:
        """Move every PENDING client in ``[lo, hi)`` into one in-flight batch.

        Returns the claimed client ids (sorted ascending; possibly empty).
        """
        ids = np.flatnonzero(self.state[lo:hi] == PENDING)
        if ids.size:
            ids = ids + lo
            self.state[ids] = INFLIGHT
            self.batch[ids] = batch_id
            self.retry_at[ids] = deadline
        return ids

    def mark_retry(self, ids: np.ndarray, deadline: float) -> None:
        """Record one re-send of the batch carrying ``ids``."""
        if ids.size:
            self.backoff[ids] += 1
            self.retry_at[ids] = deadline

    def mark_done(self, ids: np.ndarray) -> int:
        """Complete ``ids``; returns how many were *newly* completed."""
        if not ids.size:
            return 0
        new = int(np.count_nonzero(self.state[ids] != DONE))
        self.state[ids] = DONE
        self.retry_at[ids] = np.inf
        self.batch[ids] = -1
        self.completed += new
        self.duplicate_completions += int(ids.size) - new
        return new

    def surge(self, now: float, factor: float) -> int:
        """Compress every future submit time toward ``now`` by ``factor``.

        The flash-crowd event: clients that would have trickled in over the
        remaining window all become due within ``remaining / factor`` — a
        sudden ``factor``-times submit-rate spike with the *same* relative
        arrival order (so paired sweep arms stay comparable).  Returns how
        many clients were accelerated.
        """
        if factor <= 1.0:
            return 0
        mask = (self.state == IDLE) & (self.submit_at > now)
        count = int(np.count_nonzero(mask))
        if count:
            self.submit_at[mask] = now + (self.submit_at[mask] - now) / factor
        return count

    # ----------------------------------------------------------- reporting
    def counts(self) -> dict[str, int]:
        """Population per lifecycle state."""
        histogram = np.bincount(self.state, minlength=4)
        return {
            "idle": int(histogram[IDLE]),
            "pending": int(histogram[PENDING]),
            "inflight": int(histogram[INFLIGHT]),
            "done": int(histogram[DONE]),
        }

    def queue_depth(self) -> int:
        """Clients submitted (or due) but not yet completed."""
        return int(np.count_nonzero(
            (self.state == PENDING) | (self.state == INFLIGHT)
        ))

    @property
    def all_done(self) -> bool:
        """Whether every client completed."""
        return self.completed >= self.n_clients
