"""Common identifiers, enumerations and small value types.

The paper identifies every RPC execution by the triple *(user ID, session ID,
RPC ID)*; a session corresponds to one login of the user into the system and
ends on logout.  Those identifiers — not network addresses — are what clients
use to retrieve results after a disconnection, which is why they live in their
own module shared by every tier.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ComponentKind",
    "TaskState",
    "RPCStatus",
    "LoggingStrategy",
    "Address",
    "UserId",
    "SessionId",
    "RPCId",
    "CallIdentity",
    "new_address_factory",
]


class ComponentKind(enum.Enum):
    """The three tiers of the RPC-V architecture."""

    CLIENT = "client"
    COORDINATOR = "coordinator"
    SERVER = "server"


class TaskState(enum.Enum):
    """Coordinator-side state of one task (one scheduled instance of a call).

    The paper's replica de-duplication policy is phrased exactly in these
    terms: *finished* tasks are never rescheduled by a replica, *ongoing*
    tasks only when the predecessor coordinator is suspected, *pending* tasks
    always.
    """

    PENDING = "pending"
    ONGOING = "ongoing"
    FINISHED = "finished"


class RPCStatus(enum.Enum):
    """Client-visible status of one RPC call."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    COMPLETED = "completed"
    UNKNOWN = "unknown"


class LoggingStrategy(enum.Enum):
    """The three client-side message-logging strategies compared in Fig. 4."""

    OPTIMISTIC = "optimistic"
    PESSIMISTIC_BLOCKING = "pessimistic-blocking"
    PESSIMISTIC_NON_BLOCKING = "pessimistic-non-blocking"


@dataclass(frozen=True, order=True)
class Address:
    """Logical address of a component endpoint on the simulated network."""

    kind: str
    name: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.name}"


def new_address_factory(kind: ComponentKind) -> "itertools.count[int]":
    """A fresh per-kind counter for generating addresses in builders."""
    return itertools.count()


# Identifier newtypes.  Plain ints/strs wrapped in frozen dataclasses so that
# mixing them up is a type error in tests, while staying hashable and cheap.


@dataclass(frozen=True, order=True)
class UserId:
    """Unique identifier of a user of the system."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class SessionId:
    """Unique identifier of one login session of a user."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class RPCId:
    """Unique identifier of one RPC submission within a session.

    The integer part doubles as the client's submission *timestamp* (the
    paper tags every client message with a unique counter value used by the
    synchronization protocol).
    """

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, order=True)
class CallIdentity:
    """The full (user, session, rpc) triple identifying one call system-wide."""

    user: UserId
    session: SessionId
    rpc: RPCId

    def __str__(self) -> str:
        return f"{self.user}/{self.session}/{self.rpc}"


@dataclass
class SizedPayload:
    """A payload whose only simulated property is its size in bytes.

    Real argument marshalling is irrelevant to the protocol; what matters to
    every experiment is *how many bytes* cross the network, the disk and the
    database.  An optional ``data`` field carries real Python values for the
    live threaded runtime and the examples.
    """

    size_bytes: int
    data: Any = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("payload size must be non-negative")
