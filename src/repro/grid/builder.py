"""Scenario builder: from a :class:`DeploymentSpec` to live components.

The :class:`Grid` object owns the simulation environment, the network, every
host and every protocol component of one scenario, plus the monitor that the
experiments read their curves from.  Builders wire the preferred-coordinator
assignments the way the paper's experiments do (the client submits to the
first coordinator — Lille in the real-life runs — and servers are spread over
the coordinators round-robin on the cluster, or attached to their site's
coordinator on the Internet testbed).

Since the platform redesign the grid is assembled on the component platform
(:mod:`repro.platform`): every protocol component is registered with a
:class:`~repro.platform.manager.ComponentManager` that owns setup, start and
stop ordering (coordinators, then servers, then clients — teardown in
reverse), and extra components — injectors, partition schedules, custom
policies — join by instance, registered name or dotted path through
``build_grid(components=...)`` or :meth:`Grid.add_component`, with **zero
edits to this module** (see ``examples/custom_component.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Mapping, Sequence

import networkx as nx

from repro.config import ProtocolConfig
from repro.core.client import ClientComponent
from repro.core.coordinator import CoordinatorComponent
from repro.core.registry import CoordinatorRegistry
from repro.core.server import ServerComponent
from repro.core.services import ServiceRegistry, default_registry
from repro.core.session import Session
from repro.errors import ConfigurationError
from repro.grid.deployment import DeploymentSpec, confined_cluster_spec, internet_testbed_spec
from repro.net.partition import PartitionManager
from repro.net.transport import Network
from repro.nodes.node import Host
from repro.platform import Builder, Component, ComponentManager, create_component
from repro.sim.core import Environment, Process
from repro.sim.monitor import Monitor
from repro.sim.rng import RandomStreams
from repro.types import Address, ComponentKind

__all__ = ["Grid", "build_confined_cluster", "build_internet_testbed", "build_grid"]


@dataclass
class Grid:
    """One fully-wired scenario, assembled on the component platform."""

    spec: DeploymentSpec
    env: Environment
    rng: RandomStreams
    monitor: Monitor
    network: Network
    partitions: PartitionManager
    services: ServiceRegistry
    manager: ComponentManager
    builder: Builder
    clients: list[ClientComponent] = field(default_factory=list)
    coordinators: list[CoordinatorComponent] = field(default_factory=list)
    servers: list[ServerComponent] = field(default_factory=list)
    hosts: dict[Address, Host] = field(default_factory=dict)

    # ------------------------------------------------------------------ access
    @property
    def started(self) -> bool:
        """Whether the scenario's components are running."""
        return self.manager.started

    @property
    def client(self) -> ClientComponent:
        """The first (usually only) client."""
        return self.clients[0]

    def component(self, name: str) -> Component:
        """One registered component by name (protocol tiers included)."""
        return self.manager.get(name)

    def coordinator_by_name(self, name: str) -> CoordinatorComponent:
        """Coordinator whose address name (e.g. ``'lille'``) matches ``name``."""
        for coordinator in self.coordinators:
            if coordinator.address.name == name:
                return coordinator
        raise ConfigurationError(f"no coordinator named {name!r}")

    def host_of(self, component) -> Host:
        """Host of a client/coordinator/server component."""
        return self.hosts[component.address]

    def coordinator_hosts(self) -> list[Host]:
        """Hosts of every coordinator."""
        return [self.hosts[c.address] for c in self.coordinators]

    def server_hosts(self) -> list[Host]:
        """Hosts of every server."""
        return [self.hosts[s.address] for s in self.servers]

    def client_hosts(self) -> list[Host]:
        """Hosts of every client."""
        return [self.hosts[c.address] for c in self.clients]

    # ------------------------------------------------------------------ control
    def start(self) -> None:
        """Start every component in registration order (idempotent).

        The manager preserves the historical tier order: coordinators come
        up first, then servers, then clients, then any extra components.
        """
        self.manager.start_all()

    def stop(self) -> None:
        """Stop every component, in reverse start order (idempotent)."""
        self.manager.stop_all()

    def add_component(
        self,
        entry: "Component | str | tuple | Mapping[str, Any]",
        params: Mapping[str, Any] | None = None,
    ) -> Component:
        """Register one more component (instance, name, or name + params).

        Accepted shapes: a live :class:`~repro.platform.component.Component`,
        a registered name / dotted path (optionally with ``params``), a
        ``(name, params)`` pair, or a ``{"name": ..., "params": {...}}``
        mapping — the declarative form scenario specs use.  A component added
        to a running grid is set up and started immediately, so
        workload-relative injectors can join without disturbing anything
        already scheduled.
        """
        component = _resolve_entry(entry, params)
        self.manager.add(component)
        return component

    def run(self, until: float | None = None) -> None:
        """Advance the simulation (forever / until a time / until an event)."""
        self.env.run(until=until)

    def run_process(self, generator: Generator, on_client: int = 0, name: str | None = None) -> Process:
        """Spawn an application process on a client host (the workload)."""
        host = self.hosts[self.clients[on_client].address]
        return host.spawn(generator, name=name or "workload")

    def run_until(self, process: Process, timeout: float) -> bool:
        """Run until ``process`` terminates or ``timeout`` virtual seconds pass.

        Returns True when the process finished in time.  The race runs
        through :meth:`Environment.wait_any` (in a small watcher process), so
        the losing side — the expiry timer, or the stale wait on a process
        that outlived the deadline — is always cancelled and detached.
        """
        deadline = self.env.now + timeout
        watcher = self.env.process(
            self.env.wait_any([process], timeout=timeout), name="run-until"
        )
        self.env.run(until=watcher)
        return not process.is_alive and self.env.now <= deadline

    # ------------------------------------------------------------- observations
    def completed_series(self, coordinator_name: str):
        """Completed-task time series as seen by one coordinator (Figs 9-11)."""
        return self.monitor.timeseries(f"coordinator.completed.{coordinator_name}")

    def total_finished(self) -> int:
        """Number of distinct calls finished somewhere in the system."""
        identities = set()
        for coordinator in self.coordinators:
            for key, task in coordinator.tasks.items():
                if task.state.value == "finished":
                    identities.add(key)
        return len(identities)

    def progress_condition_holds(self) -> bool:
        """Check the paper's progress condition on the current system state.

        True when at least one *live* client can reach a *live* coordinator
        that a *live* server can also reach, taking the partition rules into
        account (coordinator-to-coordinator forwarding counts as a path).
        """
        live = [a for a, h in self.hosts.items() if h.up]
        graph = self.partitions.reachability_graph(live)
        live_set = set(live)
        coordinators = [c.address for c in self.coordinators if c.address in live_set]
        clients = [c.address for c in self.clients if c.address in live_set]
        servers = [s.address for s in self.servers if s.address in live_set]
        if not (coordinators and clients and servers):
            return False
        undirected = nx.Graph()
        undirected.add_nodes_from(graph.nodes)
        undirected.add_edges_from(graph.edges)
        for client in clients:
            for server in servers:
                for start in coordinators:
                    if not undirected.has_edge(client, start):
                        continue
                    # The server must reach some coordinator connected to the
                    # client's coordinator through the coordinator overlay.
                    for end in coordinators:
                        if not undirected.has_edge(server, end):
                            continue
                        if start == end:
                            return True
                        coord_graph = undirected.subgraph(coordinators)
                        if nx.has_path(coord_graph, start, end):
                            return True
        return False

    def kernel_stats(self) -> dict:
        """Kernel load snapshot: event-queue occupancy plus envelope pooling.

        Combines the environment's :meth:`queue_stats` (heap/wheel occupancy,
        wheel flushes, events processed) with the process-global message-pool
        hit rate, so benchmark rows can record kernel load alongside protocol
        counters.  Pool numbers are cumulative per *process* — comparable
        within a run, not across parallel workers.
        """
        from repro.net.message import default_pool

        stats = dict(self.env.queue_stats())
        pool = default_pool().stats()
        stats["pool_hit_rate"] = pool.get("hit_rate", 0.0)
        stats["pool_hits"] = pool.get("hits", 0)
        stats["pool_releases"] = pool.get("releases", 0)
        return stats

    def stats(self) -> dict:
        """Aggregated scenario statistics."""
        return {
            "now": self.env.now,
            "finished": self.total_finished(),
            "kernel": self.kernel_stats(),
            "client": self.clients[0].stats() if self.clients else {},
            "coordinators": {c.address.name: c.stats() for c in self.coordinators},
            "network": self.network.stats(),
            "faults": {
                kind.value: self.monitor.count(f"faults.{kind.value}")
                for kind in ComponentKind
            },
            # Component-level observability: what is registered, and what the
            # policy layer has been doing (every policy.* monitor counter).
            "components": self.manager.names(),
            "policies": {
                name: value
                for name, value in self.monitor.counters.items()
                if name.startswith("policy.")
            },
        }


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _resolve_entry(
    entry: "Component | str | tuple | Mapping[str, Any]",
    params: Mapping[str, Any] | None = None,
) -> Component:
    """Normalise one ``components=`` entry into a live component instance."""
    if isinstance(entry, str):
        return create_component(entry, params)
    if isinstance(entry, tuple):
        name, entry_params = entry
        return create_component(name, {**dict(entry_params or {}), **dict(params or {})})
    if isinstance(entry, Mapping):
        return create_component(
            entry["name"], {**dict(entry.get("params") or {}), **dict(params or {})}
        )
    if params:
        raise ConfigurationError(
            "params only apply when the component is given by name"
        )
    return entry


def build_grid(
    spec: DeploymentSpec,
    services: ServiceRegistry | None = None,
    user: str = "user0",
    client_preferred: str | None = None,
    server_preferred: Callable[[int, str], str] | None = None,
    components: Sequence["Component | str | tuple | Mapping[str, Any]"] = (),
) -> Grid:
    """Instantiate every substrate and component described by ``spec``.

    ``client_preferred`` names the coordinator the client(s) initially submit
    to (defaults to the first coordinator).  ``server_preferred`` maps
    ``(server_index, server_site)`` to a coordinator name for the initial
    attachment (defaults to the coordinator at the same site when one exists,
    round-robin otherwise).  ``components`` are extra platform components
    (instances, registered names, ``(name, params)`` pairs or ``{"name":
    ..., "params": ...}`` mappings) registered after the protocol tiers and
    set up alongside them.
    """
    env = Environment()
    rng = RandomStreams(spec.seed)
    monitor = Monitor()
    partitions = PartitionManager()
    services = services or default_registry()
    manager = ComponentManager()

    # -- coordinator addresses come first: everybody needs the list ------------
    coordinator_names: list[str] = []
    site_of_coordinator: dict[str, str] = {}
    for index, site in enumerate(spec.coordinator_sites):
        name = site if spec.coordinator_sites.count(site) == 1 else f"{site}-k{index}"
        coordinator_names.append(name)
        site_of_coordinator[name] = site
    coordinator_addresses = [
        Address(ComponentKind.COORDINATOR.value, name) for name in coordinator_names
    ]

    # -- site placement ----------------------------------------------------------
    site_map = spec.site_map
    for address, name in zip(coordinator_addresses, coordinator_names):
        site_map.place(address, site_of_coordinator[name])

    server_addresses: list[Address] = []
    server_sites: list[str] = []
    index = 0
    for site, count in spec.servers_per_site.items():
        for _ in range(count):
            address = Address(ComponentKind.SERVER.value, f"s{index:03d}")
            server_addresses.append(address)
            server_sites.append(site)
            site_map.place(address, site)
            index += 1

    client_addresses = []
    for index, site in enumerate(spec.client_sites):
        address = Address(ComponentKind.CLIENT.value, f"c{index}")
        client_addresses.append(address)
        site_map.place(address, site)

    network = Network(
        env,
        link_model=site_map.link_model(),
        rng=rng,
        monitor=monitor,
        partitions=partitions,
    )

    builder = Builder(
        env=env,
        network=network,
        rng=rng,
        monitor=monitor,
        services=services,
        config=spec.protocol,
        partitions=partitions,
        spec=spec,
        manager=manager,
    )
    grid = Grid(
        spec=spec,
        env=env,
        rng=rng,
        monitor=monitor,
        network=network,
        partitions=partitions,
        services=services,
        manager=manager,
        builder=builder,
    )
    builder.attach_grid(grid)

    # -- coordinators ----------------------------------------------------------
    for address in coordinator_addresses:
        host = Host(
            env, network, address, disk=spec.coordinator_disk, rng=rng.spawn(str(address)),
            monitor=monitor,
        )
        registry = CoordinatorRegistry(coordinators=list(coordinator_addresses))
        component = CoordinatorComponent(
            host,
            registry,
            config=spec.protocol.coordinator,
            monitor=monitor,
            database_model=spec.coordinator_database,
            policies=spec.protocol.policy,
        )
        grid.hosts[address] = host
        grid.coordinators.append(component)
        manager.add(component)

    # -- servers ----------------------------------------------------------------
    for idx, (address, site) in enumerate(zip(server_addresses, server_sites)):
        host = Host(
            env, network, address, disk=spec.server_disk, rng=rng.spawn(str(address)),
            monitor=monitor,
        )
        registry = CoordinatorRegistry(coordinators=list(coordinator_addresses))
        # By default every server initially pulls work from the same
        # coordinator the client submits to (the paper's reference runs: "all
        # servers get their jobs and send their results at Lille"); scenarios
        # that want site-local or spread attachments pass ``server_preferred``.
        if server_preferred is not None:
            preferred_name = server_preferred(idx, site)
        else:
            preferred_name = client_preferred or coordinator_names[0]
        registry.set_preferred(
            Address(ComponentKind.COORDINATOR.value, preferred_name)
        )
        component = ServerComponent(
            host,
            registry,
            config=spec.protocol.server,
            services=services,
            monitor=monitor,
            policies=spec.protocol.policy,
        )
        grid.hosts[address] = host
        grid.servers.append(component)
        manager.add(component)

    # -- clients ----------------------------------------------------------------
    preferred_client_name = client_preferred or coordinator_names[0]
    for index, address in enumerate(client_addresses):
        host = Host(
            env, network, address, disk=spec.client_disk, rng=rng.spawn(str(address)),
            monitor=monitor,
        )
        registry = CoordinatorRegistry(coordinators=list(coordinator_addresses))
        registry.set_preferred(
            Address(ComponentKind.COORDINATOR.value, preferred_client_name)
        )
        # Deterministic per-grid label: the process-global session counter
        # would make session ids depend on how many grids were built earlier,
        # breaking run-to-run reproducibility of sweep cells.
        session = Session.open(
            user=f"{user}" if index == 0 else f"{user}-{index}", label=f"g{index}"
        )
        component = ClientComponent(
            host,
            session,
            registry,
            config=spec.protocol.client,
            monitor=monitor,
            policies=spec.protocol.policy,
        )
        grid.hosts[address] = host
        grid.clients.append(component)
        manager.add(component)

    # -- extra components ------------------------------------------------------
    for entry in components:
        grid.add_component(entry)

    manager.setup_all(builder)
    return grid


def build_confined_cluster(
    n_servers: int = 16,
    n_coordinators: int = 4,
    n_clients: int = 1,
    protocol: ProtocolConfig | None = None,
    seed: int = 0,
    services: ServiceRegistry | None = None,
    spread_servers: bool = True,
    components: Sequence["Component | str | tuple | Mapping[str, Any]"] = (),
) -> Grid:
    """Build the confined-cluster platform of §5.1 (started lazily).

    ``spread_servers`` attaches the 16 servers round-robin over the 4
    coordinators ("several server partitions are connected to different
    coordinators"), which is the §5.1 setup; the client always submits to the
    first coordinator.
    """
    spec = confined_cluster_spec(
        n_servers=n_servers,
        n_coordinators=n_coordinators,
        n_clients=n_clients,
        protocol=protocol,
        seed=seed,
    )
    coordinator_names = [
        site if spec.coordinator_sites.count(site) == 1 else f"{site}-k{i}"
        for i, site in enumerate(spec.coordinator_sites)
    ]
    server_preferred = None
    if spread_servers and len(coordinator_names) > 1:
        server_preferred = lambda idx, _site: coordinator_names[idx % len(coordinator_names)]
    return build_grid(
        spec,
        services=services,
        server_preferred=server_preferred,
        components=components,
    )


def build_internet_testbed(
    servers_per_site: dict[str, int] | None = None,
    coordinator_sites: tuple[str, ...] = ("lille", "orsay"),
    protocol: ProtocolConfig | None = None,
    seed: int = 0,
    services: ServiceRegistry | None = None,
    client_preferred: str = "lille",
    components: Sequence["Component | str | tuple | Mapping[str, Any]"] = (),
) -> Grid:
    """Build the Internet testbed of §5.2 (client submits to Lille by default)."""
    spec = internet_testbed_spec(
        servers_per_site=servers_per_site,
        coordinator_sites=coordinator_sites,
        protocol=protocol,
        seed=seed,
    )
    return build_grid(
        spec,
        services=services,
        client_preferred=client_preferred,
        components=components,
    )
