"""Grid assembly: turn a deployment description into a running scenario.

The builders reproduce the paper's two platforms (the confined cluster and
the Internet testbed) as parameter sets over the substrates, wire every
component together, and hand back a :class:`~repro.grid.builder.Grid` object
the experiments drive.
"""

from repro.grid.builder import Grid, build_confined_cluster, build_internet_testbed
from repro.grid.deployment import (
    DeploymentSpec,
    confined_cluster_spec,
    internet_testbed_spec,
)
from repro.grid.runner import RunReport, run_synthetic_benchmark

__all__ = [
    "DeploymentSpec",
    "Grid",
    "RunReport",
    "build_confined_cluster",
    "build_internet_testbed",
    "confined_cluster_spec",
    "internet_testbed_spec",
    "run_synthetic_benchmark",
]
