"""One-call benchmark helper (compatibility wrapper).

The execution core moved to :mod:`repro.scenarios.engine`, where the grid
topology, workload and fault plan are declarative pieces shared by every
scenario spec; this module keeps the historical flat-keyword entry point used
by the tests, the examples and early experiment code.
"""

from __future__ import annotations

from typing import Literal

from repro.config import ProtocolConfig
from repro.scenarios.report import RunReport

__all__ = ["RunReport", "run_synthetic_benchmark"]


def run_synthetic_benchmark(
    n_calls: int = 96,
    exec_time: float = 10.0,
    n_servers: int = 16,
    n_coordinators: int = 4,
    params_bytes: int = 1024,
    result_bytes: int = 64,
    faults_per_minute: float = 0.0,
    fault_target: Literal["servers", "coordinators", "none"] = "none",
    fault_restart_delay: float = 5.0,
    protocol: ProtocolConfig | None = None,
    seed: int = 0,
    horizon: float = 4000.0,
    spread_servers: bool = False,
) -> RunReport:
    """Run the §5.1 benchmark once and report its execution time.

    This is the Figure 7 engine: 96 RPCs of 10 s on 16 servers through 4
    coordinators, with a fault generator killing (and restarting after
    ``fault_restart_delay`` seconds) either the servers or the coordinators at
    ``faults_per_minute``.
    """
    # Imported lazily: repro.grid.__init__ pulls this module in, and the
    # engine imports the grid builders — a module-level import would cycle.
    from repro.scenarios.engine import (
        FaultPlan,
        GridTopology,
        WorkloadSpec,
        execute_benchmark,
    )

    faults = FaultPlan(
        kind="none" if fault_target == "none" else "rate",
        target=fault_target if fault_target != "none" else "servers",
        faults_per_minute=faults_per_minute,
        restart_delay=fault_restart_delay,
    )
    return execute_benchmark(
        topology=GridTopology(
            n_servers=n_servers,
            n_coordinators=n_coordinators,
            spread_servers=spread_servers,
        ),
        workload=WorkloadSpec(
            n_calls=n_calls,
            exec_time=exec_time,
            params_bytes=params_bytes,
            result_bytes=result_bytes,
        ),
        faults=faults,
        protocol=protocol,
        seed=seed,
        horizon=horizon,
    )
