"""Scenario runner: one-call helpers used by experiments and tests.

The runner encapsulates the repetitive part of every §5.1 experiment: build a
confined cluster, start it, launch the synthetic benchmark on the client,
optionally arm a fault generator over one class of components, run to
completion (with a safety horizon), and report the numbers the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.config import ProtocolConfig
from repro.grid.builder import Grid, build_confined_cluster
from repro.nodes.faultgen import FaultGenerator
from repro.workloads.synthetic import SyntheticWorkload

__all__ = ["RunReport", "run_synthetic_benchmark"]


@dataclass
class RunReport:
    """Outcome of one scenario run."""

    makespan: float
    submitted: int
    completed: int
    faults_injected: int = 0
    finished_in_time: bool = True
    overhead_vs_ideal: float = 0.0
    ideal_time: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def all_completed(self) -> bool:
        """Whether every submitted call got its result back."""
        return self.completed >= self.submitted


def run_synthetic_benchmark(
    n_calls: int = 96,
    exec_time: float = 10.0,
    n_servers: int = 16,
    n_coordinators: int = 4,
    params_bytes: int = 1024,
    result_bytes: int = 64,
    faults_per_minute: float = 0.0,
    fault_target: Literal["servers", "coordinators", "none"] = "none",
    fault_restart_delay: float = 5.0,
    protocol: ProtocolConfig | None = None,
    seed: int = 0,
    horizon: float = 4000.0,
    spread_servers: bool = False,
) -> RunReport:
    """Run the §5.1 benchmark once and report its execution time.

    This is the Figure 7 engine: 96 RPCs of 10 s on 16 servers through 4
    coordinators, with a fault generator killing (and restarting after
    ``fault_restart_delay`` seconds) either the servers or the coordinators at
    ``faults_per_minute``.
    """
    grid = build_confined_cluster(
        n_servers=n_servers,
        n_coordinators=n_coordinators,
        protocol=protocol,
        seed=seed,
        spread_servers=spread_servers,
    )
    grid.start()

    workload = SyntheticWorkload(
        n_calls=n_calls,
        exec_time=exec_time,
        params_bytes=params_bytes,
        result_bytes=result_bytes,
    )
    process = grid.run_process(workload.run(grid.client), name="synthetic-benchmark")

    generator: FaultGenerator | None = None
    if fault_target != "none" and faults_per_minute > 0:
        targets = (
            grid.server_hosts() if fault_target == "servers" else grid.coordinator_hosts()
        )
        generator = FaultGenerator(
            env=grid.env,
            hosts=targets,
            rng=grid.rng,
            faults_per_minute=faults_per_minute,
            restart_delay=fault_restart_delay,
            monitor=grid.monitor,
            name=f"faultgen-{fault_target}",
        )
        generator.start()

    finished = grid.run_until(process, timeout=horizon)
    if generator is not None:
        generator.stop()

    makespan = workload.makespan if finished else grid.env.now
    ideal = exec_time * n_calls / max(n_servers, 1)
    overhead = (makespan - ideal) / ideal if ideal > 0 else 0.0
    return RunReport(
        makespan=makespan,
        submitted=len(workload.handles),
        completed=workload.completed_count(),
        faults_injected=generator.injected if generator else 0,
        finished_in_time=finished,
        overhead_vs_ideal=overhead,
        ideal_time=ideal,
        counters=dict(grid.monitor.counters),
    )
