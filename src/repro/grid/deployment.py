"""Deployment presets.

Two presets mirror the paper's evaluation platforms:

* :func:`confined_cluster_spec` — 16 servers, 4 coordinators, 1 client on a
  100 Mbit/s switched LAN (Athlon XP nodes with IDE disks); heart-beat 5 s,
  suspicion after 30 s; fully controllable, used for Figures 4-7;
* :func:`internet_testbed_spec` — ~300 desktop PCs across Lille, Wisconsin and
  Orsay, two dedicated coordinators (Lille and LRI/Orsay, ~300 km apart) with
  faster database machines, 60 s replication period, best-effort Internet
  links; used for Figures 8-11.

A :class:`DeploymentSpec` is pure data; :mod:`repro.grid.builder` turns it
into live components.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.net.latency import InternetLinkModel, LanLinkModel
from repro.net.topology import Site, SiteMap
from repro.nodes.database import DatabaseModel
from repro.nodes.disk import DiskModel

__all__ = ["DeploymentSpec", "confined_cluster_spec", "internet_testbed_spec"]


@dataclass
class DeploymentSpec:
    """Everything the builder needs to instantiate a platform."""

    name: str
    #: site name -> number of servers placed there.
    servers_per_site: dict[str, int]
    #: site name of each coordinator, in coordinator index order.
    coordinator_sites: list[str]
    #: site name of each client, in client index order.
    client_sites: list[str]
    site_map: SiteMap
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    server_disk: DiskModel = field(default_factory=DiskModel)
    client_disk: DiskModel = field(default_factory=DiskModel)
    coordinator_disk: DiskModel = field(default_factory=DiskModel)
    coordinator_database: DatabaseModel = field(default_factory=DatabaseModel)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.coordinator_sites:
            raise ConfigurationError("at least one coordinator is required")
        if not self.client_sites:
            raise ConfigurationError("at least one client is required")
        if sum(self.servers_per_site.values()) < 1:
            raise ConfigurationError("at least one server is required")
        known_sites = set(self.site_map.sites)
        for site in (
            set(self.servers_per_site)
            | set(self.coordinator_sites)
            | set(self.client_sites)
        ):
            if site not in known_sites:
                raise ConfigurationError(f"site {site!r} missing from the site map")

    @property
    def n_servers(self) -> int:
        """Total number of servers."""
        return sum(self.servers_per_site.values())

    @property
    def n_coordinators(self) -> int:
        """Total number of coordinators."""
        return len(self.coordinator_sites)

    @property
    def n_clients(self) -> int:
        """Total number of clients."""
        return len(self.client_sites)

    def with_protocol(self, protocol: ProtocolConfig) -> "DeploymentSpec":
        """Copy of this spec with a different protocol configuration."""
        return replace(self, protocol=protocol)


def confined_cluster_spec(
    n_servers: int = 16,
    n_coordinators: int = 4,
    n_clients: int = 1,
    protocol: ProtocolConfig | None = None,
    seed: int = 0,
) -> DeploymentSpec:
    """The paper's confined cluster (§5.1)."""
    site_map = SiteMap.single_site("cluster", model=LanLinkModel())
    if protocol is None:
        protocol = ProtocolConfig()
        # On the cluster the replication piggy-backs on the heart-beat signal.
        protocol.coordinator.replication.period = 5.0
    protocol.validate()
    return DeploymentSpec(
        name="confined-cluster",
        servers_per_site={"cluster": n_servers},
        coordinator_sites=["cluster"] * n_coordinators,
        client_sites=["cluster"] * n_clients,
        site_map=site_map,
        protocol=protocol,
        # Athlon XP nodes with IDE disks and a 2004 MySQL.
        server_disk=DiskModel(),
        client_disk=DiskModel(),
        coordinator_disk=DiskModel(),
        coordinator_database=DatabaseModel(),
        seed=seed,
    )


def internet_testbed_spec(
    servers_per_site: dict[str, int] | None = None,
    coordinator_sites: tuple[str, ...] = ("lille", "orsay"),
    n_clients: int = 1,
    client_site: str = "orsay",
    protocol: ProtocolConfig | None = None,
    seed: int = 0,
) -> DeploymentSpec:
    """The paper's real-life Internet testbed (§5.2).

    Defaults scale the server count down to 120 (40 per site) so simulations
    stay fast; the full ~280-node population can be requested explicitly.
    """
    if servers_per_site is None:
        servers_per_site = {"lille": 40, "wisconsin": 40, "orsay": 40}
    site_map = SiteMap(
        intra_site_model=LanLinkModel(),
        inter_site_model=InternetLinkModel(),
    )
    site_map.add_site(Site(name="lille", location="Polytech Lille, France"))
    site_map.add_site(Site(name="orsay", location="LRI, Paris Sud, France"))
    site_map.add_site(
        Site(name="wisconsin", location="University of Wisconsin, USA",
             extra_wan_latency=0.05)
    )
    if protocol is None:
        protocol = ProtocolConfig()
        # "For all the following tests, the coordinator replication period is
        # set to 60 seconds."
        protocol.coordinator.replication.period = 60.0
    protocol.validate()
    return DeploymentSpec(
        name="internet-testbed",
        servers_per_site=dict(servers_per_site),
        coordinator_sites=list(coordinator_sites),
        client_sites=[client_site] * n_clients,
        site_map=site_map,
        protocol=protocol,
        server_disk=DiskModel(),
        client_disk=DiskModel(),
        # Dedicated Xeon coordinators: "better performance on database
        # operations" than the confined cluster's nodes.
        coordinator_disk=DiskModel(write_latency=0.005, write_bandwidth_bps=50e6),
        coordinator_database=DatabaseModel(write_op_latency=0.0015, read_op_latency=0.0008),
        seed=seed,
    )
