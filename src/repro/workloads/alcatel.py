"""Stand-in for the Alcatel commutation-network validation application (§5.2).

The real application "computes the signal lost and the bandwidth for network
configurations" and "allows the user to set the number of parallel tasks for a
given execution"; the paper runs it with 1000 tasks whose durations vary "in a
wide range" (Figure 8).  We model the duration distribution as a log-normal
body with a small heavy tail, which reproduces the figure's shape: a strong
mode at small durations, a long right tail, and a handful of very long tasks.

The substitution is documented in DESIGN.md: only the task-duration
distribution and the task count matter to Figures 8-11; the numerical content
of the computation is irrelevant to the protocol being evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.client import ClientComponent, RPCHandle

__all__ = ["AlcatelWorkload"]


@dataclass
class AlcatelWorkload:
    """1000 validation tasks with a wide, right-skewed duration distribution."""

    n_tasks: int = 1000
    #: median of the duration distribution, seconds.
    median_duration: float = 110.0
    #: sigma of the underlying normal (controls the spread).
    sigma: float = 0.55
    #: fraction of tasks drawn from the heavy tail.
    tail_fraction: float = 0.04
    #: multiplier applied to tail durations.
    tail_multiplier: float = 4.0
    #: input archive / parameter size per task, bytes.
    params_bytes: int = 20_000
    #: result archive size per task, bytes.
    result_bytes: int = 4_000
    service: str = "network-validation"
    seed: int = 42

    handles: list[RPCHandle] = field(default_factory=list)
    started_at: float | None = None
    completed_at: float | None = None

    # -- the duration distribution (Figure 8) -------------------------------------
    def durations(self) -> np.ndarray:
        """The simulated durations of every task (deterministic per seed)."""
        rng = np.random.default_rng(self.seed)
        base = rng.lognormal(mean=np.log(self.median_duration), sigma=self.sigma,
                             size=self.n_tasks)
        tail_mask = rng.random(self.n_tasks) < self.tail_fraction
        base[tail_mask] *= self.tail_multiplier
        return base

    def duration_histogram(self, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of task durations (the series Figure 8 plots)."""
        return np.histogram(self.durations(), bins=bins)

    def duration_stats(self) -> dict[str, float]:
        """Summary statistics of the duration distribution."""
        durations = self.durations()
        return {
            "count": float(len(durations)),
            "min": float(durations.min()),
            "median": float(np.median(durations)),
            "mean": float(durations.mean()),
            "p90": float(np.percentile(durations, 90)),
            "max": float(durations.max()),
            "total_cpu_seconds": float(durations.sum()),
        }

    # -- processes -------------------------------------------------------------------
    def submit_only(self, client: ClientComponent):
        """Process: submit every task without waiting for results."""
        self.started_at = client.env.now
        for duration in self.durations():
            handle = yield from client.call_async(
                self.service,
                params_bytes=self.params_bytes,
                result_bytes=self.result_bytes,
                exec_time=float(duration),
            )
            self.handles.append(handle)
        return self.handles

    def run(self, client: ClientComponent):
        """Process: submit every task, then wait for every result."""
        yield from self.submit_only(client)
        yield from client.wait_all(self.handles)
        self.completed_at = client.env.now
        return self.makespan

    # -- metrics -----------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Wall-clock duration of the campaign."""
        if self.started_at is None or self.completed_at is None:
            return float("nan")
        return self.completed_at - self.started_at

    def completed_count(self) -> int:
        """How many tasks the client has collected."""
        return sum(1 for handle in self.handles if handle.done)
