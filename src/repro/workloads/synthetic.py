"""The synthetic benchmark of §5.1.

"All experiments run a synthetic benchmark on the client side, executing a set
of non-blocking configurable RPC calls.  The configuration parameters are the
RPC execution time, its parameter and its result size."  The workload submits
``n_calls`` non-blocking calls back to back, records each submission time
(the Figure 4 metric), then waits for every result (the Figure 7 metric is the
total execution time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import ClientComponent, RPCHandle

__all__ = ["SubmissionRecord", "SyntheticWorkload"]


@dataclass
class SubmissionRecord:
    """Timing of one submission."""

    timestamp: int
    started_at: float
    acknowledged_at: float

    @property
    def duration(self) -> float:
        """Submission time as measured by the client."""
        return self.acknowledged_at - self.started_at


@dataclass
class SyntheticWorkload:
    """A batch of non-blocking RPC calls (identical by default).

    ``exec_time_spread`` makes the batch heterogeneous: call *i* runs for
    ``exec_time * (1 + spread * f_i)`` with a deterministic, irregular
    ``f_i`` in [0, 1] (a Knuth-hash sawtooth — no RNG stream is consumed, so
    enabling the spread perturbs nothing else).  Scheduling-policy ablations
    need this: with identical durations every order of a uniform backlog
    finishes at the same instant.
    """

    n_calls: int = 16
    exec_time: float = 1.0
    params_bytes: int = 1024
    result_bytes: int = 64
    service: str = "sleep"
    #: 0.0 keeps every call at exactly ``exec_time`` (the paper's benchmark).
    exec_time_spread: float = 0.0
    #: filled as the workload runs.
    submissions: list[SubmissionRecord] = field(default_factory=list)
    handles: list[RPCHandle] = field(default_factory=list)
    started_at: float | None = None
    submitted_all_at: float | None = None
    completed_at: float | None = None

    # -- derived metrics ------------------------------------------------------------
    @property
    def submission_time(self) -> float:
        """Total time to submit every call (left/right panels of Fig. 4)."""
        if self.started_at is None or self.submitted_all_at is None:
            return float("nan")
        return self.submitted_all_at - self.started_at

    @property
    def makespan(self) -> float:
        """Total execution time: submission through last result (Fig. 7)."""
        if self.started_at is None or self.completed_at is None:
            return float("nan")
        return self.completed_at - self.started_at

    def completed_count(self) -> int:
        """How many calls have their result."""
        return sum(1 for handle in self.handles if handle.done)

    def exec_time_for(self, index: int) -> float:
        """Declared execution time of call ``index``."""
        if not self.exec_time_spread:
            return self.exec_time
        fraction = ((index * 2654435761) % 97) / 96
        return self.exec_time * (1.0 + self.exec_time_spread * fraction)

    @property
    def total_work(self) -> float:
        """Serial execution time of the whole batch (ideal-time numerator)."""
        if not self.exec_time_spread:
            return self.exec_time * self.n_calls
        return sum(self.exec_time_for(i) for i in range(self.n_calls))

    # -- process ---------------------------------------------------------------------
    def submit_only(self, client: ClientComponent):
        """Process: submit every call without waiting for results."""
        self.started_at = client.env.now
        for index in range(self.n_calls):
            start = client.env.now
            handle = yield from client.call_async(
                self.service,
                params_bytes=self.params_bytes,
                result_bytes=self.result_bytes,
                exec_time=self.exec_time_for(index),
            )
            self.handles.append(handle)
            self.submissions.append(
                SubmissionRecord(
                    timestamp=handle.timestamp,
                    started_at=start,
                    acknowledged_at=client.env.now,
                )
            )
        self.submitted_all_at = client.env.now
        return self.handles

    def run(self, client: ClientComponent):
        """Process: submit every call, then wait for every result."""
        yield from self.submit_only(client)
        yield from client.wait_all(self.handles)
        self.completed_at = client.env.now
        return self.makespan
