"""Workload generators.

* :mod:`repro.workloads.synthetic` — the configurable non-blocking RPC
  benchmark of §5.1 (parameter size, result size, execution time, number of
  calls are the experiment knobs);
* :mod:`repro.workloads.alcatel` — a stand-in for the Alcatel commutation
  network validation application of §5.2 (1000 tasks whose durations follow
  the wide, right-skewed distribution of Figure 8);
* :mod:`repro.workloads.sweep` — helpers to enumerate the parameter sweeps of
  the figures.
"""

from repro.workloads.alcatel import AlcatelWorkload
from repro.workloads.sweep import geometric_sizes, geometric_counts
from repro.workloads.synthetic import SyntheticWorkload, SubmissionRecord

__all__ = [
    "AlcatelWorkload",
    "SubmissionRecord",
    "SyntheticWorkload",
    "geometric_counts",
    "geometric_sizes",
]
