"""Parameter-sweep helpers shared by the figure experiments.

The paper sweeps its x-axes geometrically: parameter sizes "from some bytes up
to 100 MBytes" (Figs 4-6, left panels) and call counts "1 to 1000" (right
panels), both plotted on log scales.  These helpers produce those grids so
every experiment and benchmark uses the same points.
"""

from __future__ import annotations

import numpy as np

__all__ = ["geometric_sizes", "geometric_counts", "fault_frequencies"]


def geometric_sizes(
    minimum: int = 100, maximum: int = 100_000_000, points_per_decade: int = 1
) -> list[int]:
    """Geometrically spaced data sizes in bytes (default: one per decade)."""
    if minimum <= 0 or maximum < minimum:
        raise ValueError("invalid size range")
    decades = int(np.ceil(np.log10(maximum / minimum)))
    n_points = max(decades * points_per_decade + 1, 2)
    values = np.geomspace(minimum, maximum, num=n_points)
    return sorted({int(round(v)) for v in values})


def geometric_counts(minimum: int = 1, maximum: int = 1000, points_per_decade: int = 1) -> list[int]:
    """Geometrically spaced call counts (default 1, 10, 100, 1000)."""
    if minimum <= 0 or maximum < minimum:
        raise ValueError("invalid count range")
    decades = int(np.ceil(np.log10(maximum / minimum))) if maximum > minimum else 1
    n_points = max(decades * points_per_decade + 1, 2)
    values = np.geomspace(minimum, maximum, num=n_points)
    return sorted({int(round(v)) for v in values})


def fault_frequencies(maximum: float = 10.0, step: float = 1.0) -> list[float]:
    """Fault frequencies (faults per minute) swept by Figure 7: 0..10."""
    if maximum < 0 or step <= 0:
        raise ValueError("invalid fault frequency range")
    values = np.arange(0.0, maximum + step / 2, step)
    return [float(v) for v in values]
