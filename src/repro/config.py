"""Protocol and platform parameter sets.

All tunables of the system are grouped into small frozen-ish dataclasses so a
scenario is fully described by values (no hidden globals), mirroring how the
paper states its experimental settings:

* heart-beat period 5 s, suspicion after 30 s of silence (confined cluster);
* coordinator replication period 60 s (Internet testbed);
* 16 servers, 4 coordinators, 1 client on the confined cluster;
* logging strategy selectable among the three of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.types import LoggingStrategy

__all__ = [
    "FaultDetectionConfig",
    "LoggingConfig",
    "PolicyConfig",
    "ReplicationConfig",
    "SchedulerConfig",
    "ClientConfig",
    "CoordinatorConfig",
    "ServerConfig",
    "ProtocolConfig",
]


@dataclass
class FaultDetectionConfig:
    """Heart-beat based unreliable failure detection parameters."""

    #: period between two heart-beat signals (seconds); 5 s in the paper.
    heartbeat_period: float = 5.0
    #: silence after which a component is suspected (seconds); 30 s in the paper.
    suspicion_timeout: float = 30.0
    #: initial grace period before the first suspicion can be raised.
    startup_grace: float = 0.0

    def validate(self) -> None:
        if self.heartbeat_period <= 0:
            raise ConfigurationError("heartbeat_period must be positive")
        if self.suspicion_timeout <= self.heartbeat_period:
            raise ConfigurationError(
                "suspicion_timeout must exceed heartbeat_period "
                f"({self.suspicion_timeout} <= {self.heartbeat_period})"
            )
        if self.startup_grace < 0:
            raise ConfigurationError("startup_grace must be non-negative")


@dataclass
class LoggingConfig:
    """Client-side sender-based message logging parameters."""

    strategy: LoggingStrategy = LoggingStrategy.PESSIMISTIC_NON_BLOCKING
    #: capacity of the local log in bytes before garbage collection triggers.
    capacity_bytes: int = 4 * 1024 * 1024 * 1024
    #: fraction of the capacity to free when garbage collection runs.
    gc_target_fraction: float = 0.5
    #: whether garbage collection may stall computation instead of flushing
    #: logs still potentially useful (the paper's alternative trade-off).
    prefer_stall_over_flush: bool = False

    def validate(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be positive")
        if not 0.0 < self.gc_target_fraction <= 1.0:
            raise ConfigurationError("gc_target_fraction must be in (0, 1]")


@dataclass
class ReplicationConfig:
    """Passive replication of coordinator state over the virtual ring."""

    #: period between two state propagations to the ring successor (seconds);
    #: 60 s for the Internet testbed, one heart-beat period on the cluster.
    period: float = 60.0
    #: whether replication is enabled at all (ablation switch).
    enabled: bool = True
    #: replicate task descriptions one by one (paper's implementation) or as
    #: a single batch message (the optimization the paper argues is useless
    #: because database time dominates).
    batch: bool = False

    def validate(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("replication period must be positive")


@dataclass
class SchedulerConfig:
    """Coordinator-side scheduling policy parameters."""

    #: scheduling policy; only "fcfs" is provided, as in the paper.
    policy: str = "fcfs"
    #: re-schedule all tasks of a suspected server ("on suspicion" replication).
    reschedule_on_suspicion: bool = True
    #: proactively replicate each RPC on this many servers (paper: 1, i.e. no
    #: anticipation; the flag it says "could be added easily").
    proactive_replicas: int = 1
    #: maximum concurrent tasks per server.
    server_slots: int = 1

    def validate(self) -> None:
        if self.policy not in {"fcfs"}:
            raise ConfigurationError(f"unknown scheduling policy {self.policy!r}")
        if self.proactive_replicas < 1:
            raise ConfigurationError("proactive_replicas must be >= 1")
        if self.server_slots < 1:
            raise ConfigurationError("server_slots must be >= 1")


@dataclass
class ClientConfig:
    """Client component parameters."""

    logging: LoggingConfig = field(default_factory=LoggingConfig)
    detection: FaultDetectionConfig = field(default_factory=FaultDetectionConfig)
    #: period at which the client pulls the coordinator for results (seconds).
    result_poll_period: float = 1.0
    #: per-RPC computation the client performs between two submissions
    #: (seconds); the "inter-RPC application computation time" of Fig. 4's
    #: discussion.
    inter_rpc_compute: float = 0.0
    #: how long the client waits for a coordinator reply before re-sending the
    #: request (the coordinator is only *switched* once the suspicion timeout
    #: elapses without hearing anything from it).
    request_retry: float = 10.0

    def validate(self) -> None:
        self.logging.validate()
        self.detection.validate()
        if self.result_poll_period <= 0:
            raise ConfigurationError("result_poll_period must be positive")
        if self.inter_rpc_compute < 0:
            raise ConfigurationError("inter_rpc_compute must be non-negative")
        if self.request_retry <= 0:
            raise ConfigurationError("request_retry must be positive")


@dataclass
class CoordinatorConfig:
    """Coordinator component parameters."""

    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    detection: FaultDetectionConfig = field(default_factory=FaultDetectionConfig)
    #: fixed middleware processing time charged per handled request (job
    #: translation, HTTP/serialisation layers of XtremWeb), on top of the
    #: database costs.  This is what produces the paper's ~17 % infrastructure
    #: overhead on the 96x10 s benchmark.
    request_processing_overhead: float = 0.08
    #: maintain the incremental :class:`~repro.core.taskindex.TaskIndex` over
    #: the task table (O(log n) scheduling, O(dirty) replication builds, O(1)
    #: state counts).  Off restores the legacy scan-everything data plane —
    #: behaviorally identical, kept for equivalence tests and as the
    #: benchmark's head-to-head baseline.
    use_task_index: bool = True

    def validate(self) -> None:
        self.replication.validate()
        self.scheduler.validate()
        self.detection.validate()
        if self.request_processing_overhead < 0:
            raise ConfigurationError(
                "request_processing_overhead must be non-negative"
            )


@dataclass
class ServerConfig:
    """Server (worker) component parameters."""

    detection: FaultDetectionConfig = field(default_factory=FaultDetectionConfig)
    #: whether the server keeps computing while disconnected from every
    #: coordinator (off-line computing, a feature of the paper's design).
    offline_computing: bool = True
    #: number of concurrent task slots.
    slots: int = 1
    #: how long the server waits after a NO_WORK answer before asking again.
    work_poll_period: float = 2.0
    #: how long the server waits for a coordinator reply before re-sending.
    request_retry: float = 10.0

    def validate(self) -> None:
        self.detection.validate()
        if self.slots < 1:
            raise ConfigurationError("slots must be >= 1")
        if self.work_poll_period <= 0:
            raise ConfigurationError("work_poll_period must be positive")
        if self.request_retry <= 0:
            raise ConfigurationError("request_retry must be positive")


@dataclass
class PolicyConfig:
    """Registry-resolved strategy selection (the ``policy.*`` component keys).

    Each entry is ``None`` (derive the equivalent built-in from the legacy
    tier-config flags), a registry key / dotted-path string such as
    ``"policy.sched.random"``, or a ``{"name": ..., "params": {...}}``
    mapping.  Resolution lives in :mod:`repro.policies.resolve`; this class
    only carries the selection, so it stays importable without the policy
    implementations.
    """

    #: coordinator scheduling policy (``policy.sched.*``).
    scheduler: Any = None
    #: coordinator replication policy (``policy.repl.*``).
    replication: Any = None
    #: client logging policy (``policy.log.*``).
    logging: Any = None
    #: failure-detection policy (``policy.detect.*``), shared by the
    #: coordinator's server/ring detectors and the server's coordinator
    #: detector.
    detection: Any = None

    def entries(self) -> dict[str, Any]:
        """The explicitly-set entries, by field name."""
        return {
            name: value
            for name, value in (
                ("scheduler", self.scheduler),
                ("replication", self.replication),
                ("logging", self.logging),
                ("detection", self.detection),
            )
            if value is not None
        }

    @staticmethod
    def _check(label: str, entry: Any) -> None:
        if entry is None:
            return
        if isinstance(entry, str):
            if not entry:
                raise ConfigurationError(f"policy.{label} must be a non-empty name")
            return
        if isinstance(entry, Mapping):
            if not entry.get("name"):
                raise ConfigurationError(
                    f"policy.{label} mapping needs a 'name' key"
                )
            return
        raise ConfigurationError(
            f"policy.{label} must be a name or a {{'name', 'params'}} mapping, "
            f"got {entry!r}"
        )

    def validate(self) -> None:
        for label, entry in (
            ("scheduler", self.scheduler),
            ("replication", self.replication),
            ("logging", self.logging),
            ("detection", self.detection),
        ):
            self._check(label, entry)


@dataclass
class ProtocolConfig:
    """The full protocol parameter set shared by a scenario."""

    client: ClientConfig = field(default_factory=ClientConfig)
    coordinator: CoordinatorConfig = field(default_factory=CoordinatorConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    #: explicit ``policy.*`` selections; ``None`` entries fall back to the
    #: equivalent built-ins derived from the flags above.
    policy: PolicyConfig = field(default_factory=PolicyConfig)

    def validate(self) -> "ProtocolConfig":
        self.client.validate()
        self.coordinator.validate()
        self.server.validate()
        self.policy.validate()
        return self

    def with_logging_strategy(self, strategy: LoggingStrategy) -> "ProtocolConfig":
        """A copy of this configuration with a different logging strategy."""
        client = replace(
            self.client, logging=replace(self.client.logging, strategy=strategy)
        )
        return replace(self, client=client)

    def describe(self) -> dict[str, Any]:
        """A flat, printable description used by experiment reports."""
        scheduler_entry = self.policy.scheduler
        if isinstance(scheduler_entry, dict):
            scheduler_policy = scheduler_entry.get("name")
        else:
            # A set entry names the effective ordering; the legacy flag only
            # ever holds "fcfs".
            scheduler_policy = scheduler_entry or self.coordinator.scheduler.policy
        description = {
            "logging_strategy": self.client.logging.strategy.value,
            "heartbeat_period": self.coordinator.detection.heartbeat_period,
            "suspicion_timeout": self.coordinator.detection.suspicion_timeout,
            "replication_period": self.coordinator.replication.period,
            "replication_enabled": self.coordinator.replication.enabled,
            "scheduler_policy": scheduler_policy,
            "result_poll_period": self.client.result_poll_period,
        }
        for label, entry in self.policy.entries().items():
            description[f"policy.{label}"] = (
                entry if isinstance(entry, str) else dict(entry)
            )
        return description
