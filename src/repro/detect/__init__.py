"""Unreliable failure detection ("fault suspicion").

On an asynchronous network a fault detector can only *suspect* — the paper is
careful to use "fault suspicion" instead of "fault detection".  RPC-V places a
detector on every component: users suspect clients, every component suspects
the coordinators, and the coordinators suspect the servers.  Detection is
driven by periodic heart-beat signals; a component silent for longer than the
suspicion timeout is (maybe wrongly) assumed to have failed.
"""

from repro.detect.detector import FailureDetector, SuspicionEvent
from repro.detect.heartbeat import HeartbeatEmitter

__all__ = ["FailureDetector", "HeartbeatEmitter", "SuspicionEvent"]
