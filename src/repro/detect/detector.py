"""Timeout-based unreliable failure detector.

The detector keeps, per monitored address, the last time anything was heard
from it; an address is *suspected* once that silence exceeds the suspicion
timeout (30 s in the paper's confined experiments, against a 5 s heart-beat).
Because the network is asynchronous the suspicion can be wrong in both
directions; the detector therefore also supports accounting of wrong
suspicions against ground truth when the caller provides it (used by the
detector-ablation experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.config import FaultDetectionConfig
from repro.types import Address

__all__ = ["SuspicionEvent", "FailureDetector"]


@dataclass(frozen=True)
class SuspicionEvent:
    """One transition of the detector's opinion about an address."""

    time: float
    subject: Address
    suspected: bool
    #: whether the subject was actually down at that time (None if unknown).
    correct: bool | None = None


@dataclass
class FailureDetector:
    """Per-component unreliable failure detector."""

    config: FaultDetectionConfig = field(default_factory=FaultDetectionConfig)
    #: optional ground-truth oracle, address -> is-up (metrics only; the
    #: protocol itself never consults it).
    ground_truth: Callable[[Address], bool] | None = None
    #: optional ``policy.detect.*`` strategy (duck-typed to avoid importing
    #: :mod:`repro.policies` here): ``observe(subject, gap)``,
    #: ``forget(subject)`` and ``suspects(subject, silence, config)``.
    #: ``None`` keeps the historical fixed-timeout rule byte-for-byte.
    policy: Any = None
    #: optional monitor whose ``<scope>.*`` counters mirror suspicion
    #: transitions (counters survive the owning component's restarts, while
    #: this detector instance does not).
    monitor: Any = None
    scope: str = "detect"

    last_heard: dict[Address, float] = field(default_factory=dict)
    #: per-subject highest incarnation seen (only for subjects whose
    #: messages carry one).
    incarnations: dict[Address, int] = field(default_factory=dict)
    _suspected: set[Address] = field(default_factory=set)
    history: list[SuspicionEvent] = field(default_factory=list)
    wrong_suspicions: int = 0
    missed_failures_checks: int = 0

    # -- observations -------------------------------------------------------------
    def watch(self, subject: Address, now: float) -> None:
        """Start monitoring ``subject`` (counts as hearing from it now)."""
        self.last_heard.setdefault(subject, now)

    def unwatch(self, subject: Address) -> None:
        """Stop monitoring ``subject`` entirely."""
        self.last_heard.pop(subject, None)
        self.incarnations.pop(subject, None)
        self._suspected.discard(subject)
        if self.policy is not None:
            self.policy.forget(subject)

    def heard_from(
        self, subject: Address, now: float, incarnation: int | None = None
    ) -> None:
        """Record that any message (heart-beat or not) arrived from ``subject``.

        Hearing from a suspected component rehabilitates it: on an
        asynchronous network a suspicion is only ever an opinion.

        When the message carries an ``incarnation`` higher than the last one
        seen, the subject restarted: its silence window belongs to the dead
        incarnation, so the gap across the restart must neither feed the
        policy's inter-arrival statistics nor be inherited as last-heard
        state by the fresh incarnation.
        """
        previous = self.last_heard.get(subject)
        restarted = False
        if incarnation is not None:
            known = self.incarnations.get(subject)
            if known is None or incarnation > known:
                self.incarnations[subject] = incarnation
                restarted = known is not None
        if self.policy is not None:
            if restarted:
                self.policy.forget(subject)
            elif previous is not None and now > previous:
                self.policy.observe(subject, now - previous)
        self.last_heard[subject] = now
        if subject in self._suspected:
            self._suspected.discard(subject)
            self._record(now, subject, suspected=False)

    # -- queries --------------------------------------------------------------------
    def silence(self, subject: Address, now: float) -> float:
        """Seconds since anything was heard from ``subject`` (inf if never)."""
        last = self.last_heard.get(subject)
        return float("inf") if last is None else now - last

    def is_suspected(self, subject: Address, now: float) -> bool:
        """Evaluate (and latch) the suspicion status of ``subject``."""
        if subject not in self.last_heard:
            return False
        if now < self.config.startup_grace:
            return False
        silence = self.silence(subject, now)
        if self.policy is not None:
            suspected = bool(self.policy.suspects(subject, silence, self.config))
        else:
            suspected = silence > self.config.suspicion_timeout
        if suspected and subject not in self._suspected:
            self._suspected.add(subject)
            self._record(now, subject, suspected=True)
        elif not suspected and subject in self._suspected:
            self._suspected.discard(subject)
            self._record(now, subject, suspected=False)
        return suspected

    def suspected_set(self, now: float) -> set[Address]:
        """All currently suspected addresses (re-evaluated at ``now``)."""
        return {a for a in list(self.last_heard) if self.is_suspected(a, now)}

    def unsuspected(self, candidates: Iterable[Address], now: float) -> list[Address]:
        """Filter ``candidates`` down to those not currently suspected."""
        return [a for a in candidates if not self.is_suspected(a, now)]

    def monitored(self) -> list[Address]:
        """All addresses currently being monitored."""
        return list(self.last_heard)

    # -- accounting -------------------------------------------------------------------
    def _record(self, now: float, subject: Address, suspected: bool) -> None:
        correct: bool | None = None
        if self.ground_truth is not None:
            actually_up = self.ground_truth(subject)
            correct = (suspected and not actually_up) or (not suspected and actually_up)
            if suspected and actually_up:
                self.wrong_suspicions += 1
        if self.monitor is not None:
            self.monitor.incr(
                f"{self.scope}.suspicions" if suspected
                else f"{self.scope}.rehabilitations"
            )
            if suspected and correct is False:
                self.monitor.incr(f"{self.scope}.wrong_suspicions")
        self.history.append(
            SuspicionEvent(time=now, subject=subject, suspected=suspected, correct=correct)
        )

    def suspicion_transitions(self) -> int:
        """Number of opinion changes so far."""
        return len(self.history)
