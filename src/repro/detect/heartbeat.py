"""Heart-beat emission.

Connection-less interactions preclude using broken connections as a fault
signal, so RPC-V relies on periodic "heart beat" messages.  The emitter is a
small process fragment a component attaches to its host; the target list is a
callable so that it always reflects the component's *current* preferred
coordinator (which changes on suspicion) and so that piggy-backed payloads
(coordinator list merges, state abstracts) are computed fresh at each beat.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.config import FaultDetectionConfig
from repro.net.message import Message, MessageType
from repro.nodes.node import Host
from repro.sim.core import Process, ProcessKilled

__all__ = ["HeartbeatEmitter"]


class HeartbeatEmitter:
    """Periodically sends heart-beat messages from a host to dynamic targets."""

    def __init__(
        self,
        host: Host,
        config: FaultDetectionConfig,
        mtype: MessageType,
        targets: Callable[[], Iterable],
        payload: Callable[[], dict] | None = None,
        jitter_fraction: float = 0.1,
    ) -> None:
        self.host = host
        self.config = config
        self.mtype = mtype
        self.targets = targets
        self.payload = payload or (lambda: {})
        self.jitter_fraction = jitter_fraction
        self.sent = 0
        self._process: Process | None = None

    def start(self) -> Process:
        """Spawn the emission loop on the host (killed with the host)."""
        self._process = self.host.spawn(self._run(), name=f"{self.host.address}:heartbeat")
        return self._process

    def _run(self):
        rng = self.host.rng.stream(f"heartbeat.{self.host.address}")
        period = self.config.heartbeat_period
        # Desynchronise emitters so every component does not beat in lockstep.
        initial = float(rng.uniform(0.0, period))
        try:
            yield self.host.sleep(initial)
            while True:
                self.beat_now()
                jitter = float(rng.uniform(1.0 - self.jitter_fraction, 1.0 + self.jitter_fraction))
                yield self.host.sleep(period * jitter)
        except ProcessKilled:  # pragma: no cover - host crash
            return

    def beat_now(self) -> int:
        """Send one round of heart-beats immediately; returns how many."""
        count = 0
        payload = dict(self.payload())
        for target in self.targets():
            if target is None or target == self.host.address:
                continue
            self.host.send(
                Message(
                    mtype=self.mtype,
                    source=self.host.address,
                    dest=target,
                    payload=dict(payload),
                    size_bytes=64,
                )
            )
            count += 1
        self.sent += count
        return count
