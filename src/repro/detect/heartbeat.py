"""Heart-beat emission.

Connection-less interactions preclude using broken connections as a fault
signal, so RPC-V relies on periodic "heart beat" messages.  The emitter is a
small timer-driven helper a component attaches to its host; the target list
is a callable so that it always reflects the component's *current* preferred
coordinator (which changes on suspicion) and so that piggy-backed payloads
(coordinator list merges, state abstracts) are computed fresh at each beat.

Three scale-minded properties of the emitter:

* **one periodic handle per emitter** — the beat loop rides the kernel's
  :meth:`~repro.sim.core.Environment.call_periodic` lane: a single
  :class:`~repro.sim.core.PeriodicHandle` re-arms itself in place after
  every beat, staging each next tick on the O(1) timer wheel instead of a
  process + Timeout event (or even a fresh cancel token) per beat.  Every
  target of a beat shares that single handle; the per-target work is just
  the message sends;
* **nothing left behind** — :meth:`HeartbeatEmitter.stop` cancels the
  handle, and a host crash does the same through the host's crash hooks, so
  retired emitters leave no entry in the kernel schedule;
* **one payload per beat** — the payload callable is evaluated once per beat
  and snapshotted so nested mutables (coordinator lists, state abstracts) are
  frozen in time instead of aliasing the sender's live state across every
  target and across the wire.  Already-immutable payloads (None, scalars,
  frozen mappings) skip the deep copy entirely — it is pure overhead on the
  hot beat path.
"""

from __future__ import annotations

import copy
from types import MappingProxyType
from typing import Any, Callable, Iterable

from repro.config import FaultDetectionConfig
from repro.errors import ConfigurationError
from repro.net.message import Message, MessagePool, MessageType, default_pool
from repro.nodes.node import Host
from repro.sim.core import PeriodicHandle

__all__ = ["HeartbeatEmitter"]

#: payload types that are immutable all the way down: safe to share across
#: targets and beats without a defensive deep copy.
_IMMUTABLE_SCALARS = (type(None), bool, int, float, complex, str, bytes, frozenset)


def _snapshot_payload(value: Any) -> Any:
    """Freeze one beat's payload: deep-copy only when mutation is possible.

    None and scalar types are immutable, and a :class:`types.MappingProxyType`
    is treated as frozen by contract (whoever wraps a mapping in a proxy for
    the wire is promising not to mutate the underlying values).  An empty dict
    (the default payload) is replaced by a fresh one instead of deep-copied.
    """
    if isinstance(value, _IMMUTABLE_SCALARS) or isinstance(value, MappingProxyType):
        return value
    if type(value) is dict and not value:
        return {}
    return copy.deepcopy(value)


class HeartbeatEmitter:
    """Periodically sends heart-beat messages from a host to dynamic targets."""

    def __init__(
        self,
        host: Host,
        config: FaultDetectionConfig,
        mtype: MessageType,
        targets: Callable[[], Iterable],
        payload: Callable[[], Any] | None = None,
        jitter_fraction: float = 0.1,
        pool: MessagePool | None = None,
    ) -> None:
        self.host = host
        self.config = config
        self.mtype = mtype
        self.targets = targets
        self.payload = payload or (lambda: {})
        self.jitter_fraction = jitter_fraction
        #: heart-beat traffic is protocol-internal (receivers handle it in
        #: place and never retain it), so its envelopes are pooled by default.
        self.pool = default_pool() if pool is None else pool
        self.sent = 0
        self.stopped = False
        self._handle: PeriodicHandle | None = None
        self._rng = host.rng.stream(f"heartbeat.{host.address}")

    # -- component protocol -------------------------------------------------
    @property
    def name(self) -> str:
        """Component name: message type at host (e.g. ``ping@server:s003``)."""
        return f"{self.mtype.value}@{self.host.address}"

    def setup(self, builder) -> None:
        """Component lifecycle hook: the emitter binds at construction."""

    def start(self) -> None:
        """Arm the periodic beat handle on the timer wheel (host must be up)."""
        if not self.host.up:
            raise ConfigurationError(
                f"cannot start heartbeat on crashed host {self.host.address}"
            )
        self.stopped = False
        # Desynchronise emitters so every component does not beat in lockstep;
        # each subsequent beat draws its jittered period from _next_interval.
        initial = float(self._rng.uniform(0.0, self.config.heartbeat_period))
        self._handle = self.host.env.call_periodic(
            None, self._tick, first_delay=initial, interval_fn=self._next_interval
        )
        # A crash must reclaim the pending tick the same way it kills the
        # host's processes; the hook removes itself through stop().
        self.host.add_crash_hook(self._on_host_crash)

    def stop(self) -> None:
        """Retire the emitter: cancel the pending beat tick.

        Idempotent; safe to call on an emitter whose host already crashed
        (the crash hook then already reclaimed the tick).
        """
        if self.stopped:
            return
        self.stopped = True
        self.host.remove_crash_hook(self._on_host_crash)
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.cancel()

    def _on_host_crash(self, _host: Host) -> None:
        self.stop()

    @property
    def pending_timer(self) -> PeriodicHandle | None:
        """The periodic beat handle currently armed, if any (tests)."""
        return self._handle

    def _next_interval(self) -> float:
        """Next-beat delay: the configured period with multiplicative jitter.

        Evaluated by the kernel after each beat runs — the same position in
        the RNG stream a hand-rolled re-arming callback would draw at.
        """
        jitter = float(
            self._rng.uniform(1.0 - self.jitter_fraction, 1.0 + self.jitter_fraction)
        )
        return self.config.heartbeat_period * jitter

    def _tick(self, _arg: Any = None) -> None:
        if self.stopped or not self.host.up:
            handle = self._handle
            if handle is not None:
                # Retire in place: cancelling mid-fire just stops the re-arm.
                self._handle = None
                handle.cancel()
            return
        self.beat_now()

    def beat_now(self) -> int:
        """Send one round of heart-beats immediately; returns how many.

        The payload is snapshotted once for the whole round: all targets
        share one frozen-in-time payload instead of aliasing the emitter's
        live nested state (immutable payloads skip the copy).
        """
        count = 0
        payload = _snapshot_payload(self.payload())
        if type(payload) is dict:
            # Stamp the sender's incarnation so receivers can tell a fresh
            # restart from a continuation of the silent incarnation (the
            # detector resets last-heard state on an incarnation bump).
            payload["incarnation"] = self.host.incarnation
        acquire = self.pool.acquire
        for target in self.targets():
            if target is None or target == self.host.address:
                continue
            self.host.send(
                acquire(
                    mtype=self.mtype,
                    source=self.host.address,
                    dest=target,
                    payload=payload,
                    size_bytes=64,
                )
            )
            count += 1
        self.sent += count
        return count
