"""Heart-beat emission.

Connection-less interactions preclude using broken connections as a fault
signal, so RPC-V relies on periodic "heart beat" messages.  The emitter is a
small process fragment a component attaches to its host; the target list is a
callable so that it always reflects the component's *current* preferred
coordinator (which changes on suspicion) and so that piggy-backed payloads
(coordinator list merges, state abstracts) are computed fresh at each beat.

Two scale-minded properties of the emitter:

* **one timer per emitter** — every target of a beat shares the single
  cancellable beat timer; the per-target work is just the message sends.
  :meth:`HeartbeatEmitter.stop` (or a host crash) cancels the pending timer
  so retired emitters leave nothing behind in the kernel heap;
* **one payload per beat** — the payload callable is evaluated and
  deep-copied once per beat, so nested mutables (coordinator lists, state
  abstracts) are snapshotted instead of aliasing the sender's live state
  across every target and across the wire.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable

from repro.config import FaultDetectionConfig
from repro.net.message import Message, MessageType
from repro.nodes.node import Host
from repro.sim.core import Interrupt, Process, ProcessKilled, Timeout

__all__ = ["HeartbeatEmitter"]


class HeartbeatEmitter:
    """Periodically sends heart-beat messages from a host to dynamic targets."""

    def __init__(
        self,
        host: Host,
        config: FaultDetectionConfig,
        mtype: MessageType,
        targets: Callable[[], Iterable],
        payload: Callable[[], dict] | None = None,
        jitter_fraction: float = 0.1,
    ) -> None:
        self.host = host
        self.config = config
        self.mtype = mtype
        self.targets = targets
        self.payload = payload or (lambda: {})
        self.jitter_fraction = jitter_fraction
        self.sent = 0
        self.stopped = False
        self._process: Process | None = None
        self._timer: Timeout | None = None

    def start(self) -> Process:
        """Spawn the emission loop on the host (killed with the host)."""
        self.stopped = False
        self._process = self.host.spawn(self._run(), name=f"{self.host.address}:heartbeat")
        return self._process

    def stop(self) -> None:
        """Retire the emitter: cancel the pending beat timer and its process.

        Idempotent; safe to call on an emitter whose host already crashed
        (the kill then already cancelled the timer through the loop's
        ``finally``).
        """
        if self.stopped:
            return
        self.stopped = True
        if self._process is not None and self._process.is_alive:
            self._process.kill("heartbeat-stop")
        elif self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def pending_timer(self) -> Timeout | None:
        """The beat timer currently armed, if any (observability / tests)."""
        return self._timer

    def _run(self):
        rng = self.host.rng.stream(f"heartbeat.{self.host.address}")
        period = self.config.heartbeat_period
        # Desynchronise emitters so every component does not beat in lockstep.
        initial = float(rng.uniform(0.0, period))
        try:
            self._timer = self.host.sleep(initial)
            yield self._timer
            while not self.stopped:
                self.beat_now()
                jitter = float(rng.uniform(1.0 - self.jitter_fraction, 1.0 + self.jitter_fraction))
                self._timer = self.host.sleep(period * jitter)
                yield self._timer
        except (Interrupt, ProcessKilled):
            return
        finally:
            timer, self._timer = self._timer, None
            if timer is not None and not timer.processed:
                timer.cancel()

    def beat_now(self) -> int:
        """Send one round of heart-beats immediately; returns how many.

        The payload is snapshotted (deep copy) once for the whole round: all
        targets share one frozen-in-time payload instead of aliasing the
        emitter's live nested state.
        """
        count = 0
        payload = copy.deepcopy(self.payload())
        for target in self.targets():
            if target is None or target == self.host.address:
                continue
            self.host.send(
                Message(
                    mtype=self.mtype,
                    source=self.host.address,
                    dest=target,
                    payload=payload,
                    size_bytes=64,
                )
            )
            count += 1
        self.sent += count
        return count
