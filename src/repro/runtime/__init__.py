"""Real-time execution of the same scenarios.

The protocol components are engine-agnostic: they only ever interact with the
simulation :class:`~repro.sim.core.Environment`.  The
:class:`~repro.runtime.realtime.RealTimeDriver` drives that environment in
step with the wall clock, which turns any scenario built by
:mod:`repro.grid` into a live, interactive run (used by the
``examples/live_threaded_grid.py`` example and by latency-insensitive demos).
"""

from repro.runtime.realtime import RealTimeDriver

__all__ = ["RealTimeDriver"]
