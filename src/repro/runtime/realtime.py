"""Wall-clock pacing of a simulation environment.

The driver processes the environment's event queue but sleeps (real time)
until each event's virtual due time, optionally scaled: ``speedup=10`` runs a
60-second scenario in six wall-clock seconds, ``speedup=1`` runs it live.
Because the protocol components never touch the wall clock themselves, the
exact same client/coordinator/server code runs under both the batch simulator
and this driver — the property DESIGN.md calls the "engine-agnostic" design.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ConfigurationError
from repro.sim.core import Environment

__all__ = ["RealTimeDriver"]


class RealTimeDriver:
    """Runs an :class:`Environment` in (scaled) real time."""

    def __init__(
        self,
        env: Environment,
        speedup: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if speedup <= 0:
            raise ConfigurationError("speedup must be positive")
        self.env = env
        self.speedup = speedup
        self._sleep = sleep
        self._clock = clock
        self.events_processed = 0

    def run(self, until: float, tick: Callable[[float], None] | None = None) -> int:
        """Run until virtual time ``until``, pacing against the wall clock.

        ``tick`` (if given) is called after every processed event with the
        current virtual time — handy for printing live progress.  Returns the
        number of events processed.
        """
        start_wall = self._clock()
        start_virtual = self.env.now
        while True:
            next_at = self.env.peek()
            if next_at == float("inf") or next_at > until:
                # Nothing left before the deadline: wait out the remainder.
                self._pace(start_wall, start_virtual, until)
                if until > self.env.now:
                    self.env.run(until=until)
                return self.events_processed
            self._pace(start_wall, start_virtual, next_at)
            self.env.step()
            self.events_processed += 1
            if tick is not None:
                tick(self.env.now)

    def _pace(self, start_wall: float, start_virtual: float, target_virtual: float) -> None:
        """Sleep until the wall clock catches up with ``target_virtual``."""
        due_wall = start_wall + (target_virtual - start_virtual) / self.speedup
        remaining = due_wall - self._clock()
        if remaining > 0:
            self._sleep(remaining)
