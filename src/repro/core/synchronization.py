"""Timestamp-based synchronization.

"Synchronization with a coordinator determines received and lost messages,
which are resent."  Three flavours exist, differing by what local information
each side holds:

* **client ↔ coordinator** — the client tags every submission with its RPC
  counter; the coordinator tracks the maximum timestamp it registered per
  session.  Synchronisation compares the two and replays what one side is
  missing.  Figure 6 measures the asymmetry: rebuilding the coordinator from
  the *client's* logs only needs a local log-list read before pushing, while
  rebuilding the client from the *coordinator's* logs costs an extra round
  trip to fetch the list first.
* **coordinator ↔ coordinator** — exchanged inside the replica state: the max
  timestamp per known client.
* **server ↔ coordinator** — servers hold non-contiguous timestamps (only the
  calls they executed), so the comparison is a peer-wise set difference of
  log keys.

The functions here compute the *plans* (what must be resent) as pure data;
the components execute the plans and pay the corresponding costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "ClientSyncPlan",
    "ServerSyncPlan",
    "plan_client_sync",
    "plan_server_sync",
    "merge_max_timestamps",
]


@dataclass
class ClientSyncPlan:
    """Outcome of comparing a client's durable log with a coordinator's view."""

    #: timestamps the client holds durably but the coordinator never registered
    #: (the client must re-send these submissions from its log).
    client_must_resend: list[int] = field(default_factory=list)
    #: timestamps the coordinator registered that the client lost (optimistic
    #: logging crash window): the client application must roll back to just
    #: after the last registered call and must *not* reuse these timestamps.
    client_lost: list[int] = field(default_factory=list)
    #: timestamps whose results the coordinator already holds (the client can
    #: collect them immediately instead of waiting for the poll loop).
    results_available: list[int] = field(default_factory=list)
    #: max timestamp registered on the coordinator side.
    coordinator_max_timestamp: int = 0

    @property
    def in_sync(self) -> bool:
        """True when neither side is missing anything."""
        return not self.client_must_resend and not self.client_lost


def plan_client_sync(
    client_durable_keys: Iterable[int],
    coordinator_known_keys: Iterable[int],
    coordinator_finished_keys: Iterable[int],
) -> ClientSyncPlan:
    """Compare client-side durable timestamps with the coordinator's registry."""
    client_keys = {int(k) for k in client_durable_keys}
    coord_keys = {int(k) for k in coordinator_known_keys}
    finished = {int(k) for k in coordinator_finished_keys}
    return ClientSyncPlan(
        client_must_resend=sorted(client_keys - coord_keys),
        client_lost=sorted(coord_keys - client_keys),
        results_available=sorted(finished & (client_keys | coord_keys)),
        coordinator_max_timestamp=max(coord_keys, default=0),
    )


@dataclass
class ServerSyncPlan:
    """Outcome of comparing a server's result log with a coordinator's tasks."""

    #: result keys the server holds that the coordinator has not registered as
    #: finished: the server must (re)send these results.
    server_must_resend: list[Any] = field(default_factory=list)
    #: result keys the coordinator already knows as finished: the server can
    #: mark them acknowledged and garbage collect them.
    already_finished: list[Any] = field(default_factory=list)
    #: task keys the coordinator believes are assigned to this server but the
    #: server does not hold (lost on crash): the coordinator should re-queue
    #: them.
    coordinator_must_requeue: list[Any] = field(default_factory=list)


def plan_server_sync(
    server_result_keys: Iterable[Any],
    coordinator_finished_keys: Iterable[Any],
    coordinator_assigned_keys: Iterable[Any],
) -> ServerSyncPlan:
    """Peer-wise comparison of the server's log with the coordinator's view."""
    server_keys = set(server_result_keys)
    finished = set(coordinator_finished_keys)
    assigned = set(coordinator_assigned_keys)
    return ServerSyncPlan(
        server_must_resend=sorted(server_keys - finished, key=repr),
        already_finished=sorted(server_keys & finished, key=repr),
        coordinator_must_requeue=sorted(assigned - server_keys - finished, key=repr),
    )


def merge_max_timestamps(
    mine: dict[tuple[str, str], int], theirs: dict[tuple[str, str], int]
) -> int:
    """Advance ``mine`` with any larger timestamps from ``theirs``.

    Returns the number of sessions whose timestamp advanced.  Timestamps only
    ever move forward — the monotonicity invariant the property tests check.
    """
    advanced = 0
    for key, value in theirs.items():
        if value > mine.get(key, 0):
            mine[key] = value
            advanced += 1
    return advanced
