"""Known-coordinator lists.

Every component is given "a finite list of known coordinators", downloaded at
initialisation from known repositories, updated locally on fault suspicions
and merged periodically at heart-beat receptions.  The registry implements
that list plus the *preferred coordinator* selection rule used by clients and
servers: keep talking to the current preferred coordinator until it is
suspected, then move to the next unsuspected one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigurationError
from repro.types import Address

__all__ = ["CoordinatorRegistry"]


@dataclass
class CoordinatorRegistry:
    """A component's local view of the coordinator population."""

    coordinators: list[Address] = field(default_factory=list)
    #: coordinators this component currently considers suspect.
    suspected: set[Address] = field(default_factory=set)
    #: index of the preferred coordinator within ``coordinators``.
    _preferred_index: int = 0

    def __post_init__(self) -> None:
        seen = set()
        unique = []
        for address in self.coordinators:
            if address not in seen:
                unique.append(address)
                seen.add(address)
        self.coordinators = unique

    # -- list management ---------------------------------------------------------
    def merge(self, others: Iterable[Address]) -> int:
        """Merge coordinator addresses learned from a peer; returns how many were new."""
        added = 0
        for address in others:
            if address not in self.coordinators:
                self.coordinators.append(address)
                added += 1
        return added

    def remove(self, address: Address) -> None:
        """Drop a coordinator from the list entirely (user update)."""
        if address in self.coordinators:
            index = self.coordinators.index(address)
            self.coordinators.remove(address)
            self.suspected.discard(address)
            if index <= self._preferred_index and self._preferred_index > 0:
                self._preferred_index -= 1

    def known(self) -> list[Address]:
        """The current list (copy)."""
        return list(self.coordinators)

    def __len__(self) -> int:
        return len(self.coordinators)

    def __contains__(self, address: Address) -> bool:
        return address in self.coordinators

    # -- suspicion ---------------------------------------------------------------
    def suspect(self, address: Address) -> None:
        """Locally mark a coordinator as suspect."""
        if address in self.coordinators:
            self.suspected.add(address)

    def rehabilitate(self, address: Address) -> None:
        """Clear a suspicion (we heard from it again)."""
        self.suspected.discard(address)

    def unsuspected(self) -> list[Address]:
        """Coordinators not currently suspected, in list order."""
        return [a for a in self.coordinators if a not in self.suspected]

    # -- preferred coordinator -----------------------------------------------------
    def preferred(self) -> Address | None:
        """The current preferred coordinator (None when every one is suspected)."""
        if not self.coordinators:
            return None
        candidates = self.unsuspected()
        if not candidates:
            return None
        current = self.coordinators[self._preferred_index % len(self.coordinators)]
        if current in candidates:
            return current
        return candidates[0]

    def switch_preferred(self, away_from: Address | None = None) -> Address | None:
        """Select another, unsuspected coordinator as the preferred one.

        ``away_from`` (typically the just-suspected coordinator) is marked
        suspect first.  When every coordinator is suspected, suspicion is
        reset (better to retry someone than to stall forever on an
        asynchronous network) and the next coordinator in round-robin order
        is chosen.
        """
        if away_from is not None:
            self.suspect(away_from)
        if not self.coordinators:
            return None
        candidates = self.unsuspected()
        if not candidates:
            # All suspected: forgive and retry round-robin.
            self.suspected.clear()
            self._preferred_index = (self._preferred_index + 1) % len(self.coordinators)
            return self.coordinators[self._preferred_index]
        current = self.coordinators[self._preferred_index % len(self.coordinators)]
        if away_from is None and current in candidates:
            return current
        # Pick the first unsuspected coordinator after the current index.
        n = len(self.coordinators)
        for step in range(1, n + 1):
            candidate = self.coordinators[(self._preferred_index + step) % n]
            if candidate in candidates:
                self._preferred_index = (self._preferred_index + step) % n
                return candidate
        return candidates[0]

    def set_preferred(self, address: Address) -> None:
        """Force the preferred coordinator (builder / scenario control)."""
        if address not in self.coordinators:
            raise ConfigurationError(f"{address} is not in the coordinator list")
        self._preferred_index = self.coordinators.index(address)
        self.suspected.discard(address)

    # -- ring topology (used by coordinators themselves) -----------------------------
    def ring_successor(self, me: Address) -> Address | None:
        """Successor of ``me`` on the virtual ring of unsuspected coordinators.

        Coordinators order the known list by a common total order (their
        string form) and each one propagates its state to the next unsuspected
        entry after itself; the ring is therefore virtual and recomputed at
        every heart-beat.
        """
        ordered = sorted(set(self.coordinators) | {me}, key=str)
        if len(ordered) <= 1:
            return None
        start = ordered.index(me)
        n = len(ordered)
        for step in range(1, n):
            candidate = ordered[(start + step) % n]
            if candidate == me:
                continue
            if candidate not in self.suspected:
                return candidate
        return None

    def ring_successors(self, me: Address, k: int) -> list[Address]:
        """Up to ``k`` unsuspected successors of ``me``, in ring order.

        The quorum replication policy pushes state to every returned address;
        ``ring_successors(me, 1)`` is exactly ``[ring_successor(me)]``.
        """
        ordered = sorted(set(self.coordinators) | {me}, key=str)
        if len(ordered) <= 1 or k < 1:
            return []
        start = ordered.index(me)
        n = len(ordered)
        successors: list[Address] = []
        for step in range(1, n):
            candidate = ordered[(start + step) % n]
            if candidate == me:
                continue
            if candidate not in self.suspected:
                successors.append(candidate)
                if len(successors) == k:
                    break
        return successors
