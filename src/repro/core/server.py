"""The RPC-V server (worker) component.

Servers pull work from their preferred coordinator, execute it, archive the
result on local disk (the archive *is* the server log, so server-side logging
is "necessarily pessimistic"), then upload the archive and wait for the
acknowledgement.  The connection-less protocol means the same server "may
disconnect the coordinator, continue the execution and re-connect the
coordinator later for sending RPC results" — off-line computing — which the
component implements by resynchronising its unacknowledged results whenever it
(re)connects or switches coordinator.
"""

from __future__ import annotations

from typing import Any

from repro.config import PolicyConfig, ServerConfig
from repro.core.protocol import CallDescription, ResultRecord, identity_to_key
from repro.core.registry import CoordinatorRegistry
from repro.core.services import ServiceRegistry, default_registry
from repro.detect import FailureDetector, HeartbeatEmitter
from repro.policies.resolve import detection_policy_from
from repro.msglog import MessageLog
from repro.net.message import Message, MessageType
from repro.nodes.node import Host
from repro.sim.core import Event, ProcessKilled
from repro.sim.monitor import Monitor
from repro.types import Address

__all__ = ["ServerComponent"]


class ServerComponent:
    """One worker of the desktop grid."""

    def __init__(
        self,
        host: Host,
        registry: CoordinatorRegistry,
        config: ServerConfig | None = None,
        services: ServiceRegistry | None = None,
        monitor: Monitor | None = None,
        policies: PolicyConfig | None = None,
    ) -> None:
        self.host = host
        self.env = host.env
        self.registry = registry
        self.config = config or ServerConfig()
        self.config.validate()
        self.services = services or default_registry()
        self.monitor = monitor or host.monitor
        self.name = str(host.address)
        #: explicit ``policy.*`` selections; only the detection entry matters
        #: for a server (scheduling and replication are coordinator-side).
        self.policies = policies or PolicyConfig()

        # Volatile state (rebuilt by start()).
        self.result_log: MessageLog
        self.detector: FailureDetector
        self.executed_count = 0
        self.current_task: CallDescription | None = None
        self._reply_waiters: list[tuple[set[MessageType], Event]] = []
        self.started = False
        self._heartbeat: HeartbeatEmitter | None = None

        host.on_restart(lambda _host: self.start())

    # ------------------------------------------------------------------ setup
    def setup(self, builder) -> None:
        """Component lifecycle hook: the grid tier wiring already bound
        everything this server needs."""

    def _make_detector(self) -> FailureDetector:
        """Fresh coordinator detector for one incarnation (policy bound)."""
        policy = detection_policy_from(self.config.detection, self.policies.detection)
        policy.bind(owner=self.name, rng=self.host.rng, monitor=self.monitor)
        return FailureDetector(self.config.detection, policy=policy)

    def start(self) -> None:
        """(Re)start the server loops; unacknowledged results are resynced."""
        self.result_log = MessageLog(self.host, f"server:{self.host.address.name}")
        self.detector = self._make_detector()
        self.current_task = None
        self._reply_waiters = []
        self.started = True
        if self._heartbeat is not None:
            self._heartbeat.stop()
        for coordinator in self.registry.known():
            self.detector.watch(coordinator, self.env.now)
        self.host.spawn(self._recv_loop(), name=f"{self.name}:recv")
        self.host.spawn(self._work_loop(), name=f"{self.name}:work")
        self._heartbeat = HeartbeatEmitter(
            host=self.host,
            config=self.config.detection,
            mtype=MessageType.SERVER_HEARTBEAT,
            targets=lambda: [self.preferred_coordinator()],
            # The heart-beat reports which task (if any) the server is working
            # on: the coordinator uses it to re-queue tasks whose execution was
            # lost in a crash/restart it never got to observe directly.
            payload=lambda: {
                "working_on": (
                    list(identity_to_key(self.current_task.identity))
                    if self.current_task is not None
                    else None
                )
            },
        )
        self._heartbeat.start()

    def stop(self) -> None:
        """Retire the server: cancel the heart-beat timer (idempotent)."""
        self.started = False
        if self._heartbeat is not None:
            self._heartbeat.stop()

    @property
    def address(self) -> Address:
        """Network address of this server."""
        return self.host.address

    def preferred_coordinator(self) -> Address | None:
        """The coordinator this server currently pulls work from."""
        return self.registry.preferred()

    # ------------------------------------------------------------------ messaging
    def _recv_loop(self):
        # Batched drain: one resume per tick however many messages landed
        # (recv_many), instead of one resume per message.
        try:
            while True:
                batch: list[Message] = yield self.host.recv_many()
                for message in batch:
                    self._dispatch(message)
        except ProcessKilled:  # pragma: no cover - host crash
            return

    def _dispatch(self, message: Message) -> None:
        self.detector.heard_from(message.source, self.env.now)
        self.registry.rehabilitate(message.source)
        if message.mtype is MessageType.TASK_RESULT_ACK:
            key = tuple(message.payload.get("identity", ()))
            self.result_log.mark_acked(key)
        # Wake up whichever request is waiting for this kind of reply.
        for index, (expected, waiter) in enumerate(list(self._reply_waiters)):
            if message.mtype in expected and not waiter.triggered:
                self._reply_waiters.pop(index)
                waiter.succeed(message)
                break

    def _request(self, message: Message, expected: set[MessageType], timeout: float):
        """Send ``message`` and wait for one of ``expected`` (or time out).

        Generator returning the reply message or ``None`` on timeout.
        """
        waiter = self.env.event()
        self._reply_waiters.append((expected, waiter))
        self.host.send(message)
        yield from self.env.wait_any([waiter], timeout=timeout)
        if waiter.triggered:
            return waiter.value
        if (expected, waiter) in self._reply_waiters:
            self._reply_waiters.remove((expected, waiter))
        return None

    def _after_timeout(self, coordinator: Address) -> None:
        """Switch coordinator when the detection policy suspects it.

        Under the default fixed-timeout policy this is exactly the
        historical rule: silence beyond ``suspicion_timeout`` seconds.
        """
        if self.detector.is_suspected(coordinator, self.env.now):
            previous = coordinator
            new = self.registry.switch_preferred(away_from=coordinator)
            if new is not None and new != previous:
                self.monitor.incr("server.coordinator_switches")
                self.monitor.trace(
                    self.env.now,
                    "server-switch",
                    server=self.name,
                    from_coordinator=str(previous),
                    to_coordinator=str(new),
                )
                self.host.spawn(
                    self._sync_with(new), name=f"{self.name}:sync"
                )

    # ------------------------------------------------------------------ work loop
    def _work_loop(self):
        try:
            # Resynchronise with the coordinator on every (re)connection: the
            # peer-wise log comparison tells it which results we still hold
            # and lets it re-queue tasks it believed we were running.
            yield from self._sync_with(self.preferred_coordinator())
            while True:
                coordinator = self.preferred_coordinator()
                if coordinator is None:
                    yield self.host.sleep(self.config.work_poll_period)
                    continue
                reply = yield from self._request(
                    Message(
                        mtype=MessageType.WORK_REQUEST,
                        source=self.address,
                        dest=coordinator,
                        payload={"slots": self.config.slots},
                        size_bytes=64,
                    ),
                    expected={MessageType.TASK_ASSIGN, MessageType.NO_WORK},
                    timeout=self.config.request_retry,
                )
                if reply is None:
                    self.monitor.incr("server.request_timeouts")
                    self._after_timeout(coordinator)
                    continue
                if reply.mtype is MessageType.NO_WORK:
                    yield self.host.sleep(self.config.work_poll_period)
                    continue
                call = CallDescription.from_payload(reply.payload["call"])
                yield from self._execute(call)
        except ProcessKilled:  # pragma: no cover - host crash
            return

    def _execute(self, call: CallDescription):
        """Run one task, archive its result, upload it until acknowledged."""
        self.current_task = call
        spec = self.services.get(call.service) if self.services.has(call.service) else None
        exec_time = call.exec_time
        if exec_time is None:
            exec_time = spec.default_exec_time if spec else 1.0
        result_bytes = call.result_bytes or (spec.default_result_bytes if spec else 128)

        value: Any = None
        started = self.env.now
        if exec_time > 0:
            yield self.host.sleep(exec_time)
        if spec is not None and spec.fn is not None:
            value = spec.execute(call.args)

        result = ResultRecord(
            identity=call.identity,
            size_bytes=result_bytes,
            produced_by=self.address,
            produced_at=self.env.now,
            value=value,
            meta={"exec_time": self.env.now - started},
        )
        key = identity_to_key(call.identity)
        # The archive of new/modified files is the server's log: write it to
        # disk synchronously (pessimistic by construction) before uploading.
        if key not in self.result_log:
            self.result_log.append(key, result.to_payload(), result_bytes)
        yield from self.host.disk_write(result_bytes)
        if not self.result_log.get(key).durable:
            self.result_log.mark_durable(key)

        self.executed_count += 1
        self.monitor.incr("server.tasks_executed")
        self.current_task = None
        yield from self._upload_result(result)

    def _upload_result(self, result: ResultRecord):
        """Send a result until some coordinator acknowledges it."""
        key = identity_to_key(result.identity)
        while True:
            record = self.result_log.get(key)
            if record is not None and record.acked:
                return
            coordinator = self.preferred_coordinator()
            if coordinator is None:
                yield self.host.sleep(self.config.work_poll_period)
                continue
            reply = yield from self._request(
                Message(
                    mtype=MessageType.TASK_RESULT,
                    source=self.address,
                    dest=coordinator,
                    payload={"result": result.to_payload()},
                    size_bytes=result.size_bytes,
                ),
                expected={MessageType.TASK_RESULT_ACK},
                timeout=self.config.request_retry,
            )
            if reply is not None:
                self.result_log.mark_acked(key)
                self.monitor.incr("server.results_uploaded")
                return
            self.monitor.incr("server.result_upload_retries")
            self._after_timeout(coordinator)

    # ------------------------------------------------------------------ sync
    def _sync_with(self, coordinator: Address | None):
        """Peer-wise log comparison with ``coordinator``; resend what it lacks."""
        if coordinator is None:
            return None
        unacked = self.result_log.unacked_durable()
        yield from self.host.disk_read(max(sum(r.size_bytes for r in unacked), 64))
        reply = yield from self._request(
            Message(
                mtype=MessageType.SERVER_SYNC,
                source=self.address,
                dest=coordinator,
                payload={"result_keys": [list(r.key) for r in unacked]},
                size_bytes=64 + 16 * len(unacked),
            ),
            expected={MessageType.COORD_SYNC_REPLY},
            timeout=self.config.request_retry,
        )
        if reply is None:
            self.monitor.incr("server.sync_timeouts")
            return None
        self.monitor.incr("server.syncs")
        for key in reply.payload.get("already_finished", []):
            self.result_log.mark_acked(tuple(key))
        for key in reply.payload.get("server_must_resend", []):
            record = self.result_log.get(tuple(key))
            if record is None:
                continue
            result = ResultRecord.from_payload(record.payload)
            yield from self._upload_result(result)
        return reply.payload

    # ------------------------------------------------------------------ reporting
    def stats(self) -> dict[str, Any]:
        """Snapshot of server counters (experiments / tests)."""
        return {
            "executed": self.executed_count,
            "unacked_results": len(self.result_log.unacked_durable()),
            "log_records": len(self.result_log),
            "busy": self.current_task is not None,
            "preferred_coordinator": str(self.preferred_coordinator()),
        }
