"""Passive replication of coordinator state over the virtual ring.

Each coordinator periodically sends "an abstract of its state to the successor
in the list"; if the successor does not acknowledge, it is suspected, the
local list is updated and the next coordinator is contacted.  The state
abstract contains job/task descriptions (including the call parameters needed
to re-execute them) and the maximum known client timestamps — but **not** the
result file archives, which are never replicated.

This module is pure data manipulation (building and merging state abstracts);
the sending/acknowledging machinery lives in the coordinator component so the
timing behaviour is visible to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.protocol import TASK_DESCRIPTION_BYTES, TaskRecord
from repro.types import TaskState

__all__ = ["ReplicaState", "MergeOutcome", "build_state", "merge_state", "state_precedence"]

#: ordering used when merging conflicting task states.
_PRECEDENCE = {TaskState.PENDING: 0, TaskState.ONGOING: 1, TaskState.FINISHED: 2}


def state_precedence(state: TaskState) -> int:
    """Merge precedence of a task state (finished beats ongoing beats pending)."""
    return _PRECEDENCE[state]


@dataclass
class ReplicaState:
    """One state abstract, as propagated to the ring successor."""

    origin: str
    entries: list[dict[str, Any]] = field(default_factory=list)
    #: max known client timestamp per (user, session).
    client_timestamps: dict[tuple[str, str], int] = field(default_factory=dict)
    #: coordinator list piggy-backed for registry merging.
    known_coordinators: list[tuple[str, str]] = field(default_factory=list)
    sent_at: float = 0.0
    #: wire bytes of ``entries``, accumulated while building (``None`` means
    #: unknown — e.g. a hand-assembled or payload-reconstructed state — and
    #: :attr:`size_bytes` falls back to walking the entries).
    entries_bytes: int | None = None
    #: True for states assembled by :func:`build_state` whose entry dicts are
    #: never aliased by the builder afterwards; lets :meth:`to_payload` skip
    #: the defensive per-entry copy (every payload consumer —
    #: :meth:`from_payload` — copies before mutating anything).
    fresh: bool = False

    @property
    def size_bytes(self) -> int:
        """Bytes of the abstract on the wire.

        Every task contributes its description; tasks that still need to be
        (re)executable at the backup also carry their parameters.  Results are
        never included.
        """
        if self.entries_bytes is not None:
            total = self.entries_bytes
        else:
            total = 0
            for entry in self.entries:
                total += TASK_DESCRIPTION_BYTES
                if entry["state"] != TaskState.FINISHED.value:
                    total += int(entry["call"]["params_bytes"])
        total += 64 * len(self.client_timestamps)
        total += 32 * len(self.known_coordinators)
        return total

    def to_payload(self) -> dict[str, Any]:
        """Dictionary form carried in REPLICA_STATE messages."""
        return {
            "origin": self.origin,
            "entries": (
                list(self.entries)
                if self.fresh
                else [dict(e) for e in self.entries]
            ),
            "client_timestamps": {
                f"{u}//{s}": ts for (u, s), ts in self.client_timestamps.items()
            },
            "known_coordinators": list(self.known_coordinators),
            "sent_at": self.sent_at,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ReplicaState":
        """Rebuild a state abstract from its dictionary form."""
        timestamps: dict[tuple[str, str], int] = {}
        for key, value in payload.get("client_timestamps", {}).items():
            user, session = key.split("//", 1)
            timestamps[(user, session)] = int(value)
        return cls(
            origin=payload["origin"],
            entries=[dict(e) for e in payload.get("entries", [])],
            client_timestamps=timestamps,
            known_coordinators=[tuple(c) for c in payload.get("known_coordinators", [])],
            sent_at=float(payload.get("sent_at", 0.0)),
        )

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class MergeOutcome:
    """What applying one state abstract changed at the receiving coordinator."""

    new_tasks: int = 0
    updated_tasks: int = 0
    newly_finished: list = field(default_factory=list)
    #: identities of every task added or whose state advanced (these must be
    #: propagated further around the ring by the receiver).
    changed: list = field(default_factory=list)
    timestamps_advanced: int = 0


def build_state(
    origin: str,
    tasks: dict[Any, TaskRecord],
    client_timestamps: dict[tuple[str, str], int],
    known_coordinators: list[tuple[str, str]],
    only_keys: Iterable[Any] | None = None,
    now: float = 0.0,
    entry_for: Callable[[Any, TaskRecord], tuple[dict[str, Any], int]] | None = None,
) -> ReplicaState:
    """Build the state abstract for the given tasks.

    ``only_keys`` restricts the abstract to an incremental set (the dirty
    tasks since the last acknowledged propagation); ``None`` means full
    state.  The dirty keys are iterated **directly** — an incremental round
    with 3 dirty tasks in a 100k-task table serializes 3 records, not a
    filtered table walk — in the caller-given order (the coordinator passes
    them in table order, so delta and full abstracts list entries
    identically).  Keys no longer in the table are skipped.

    ``entry_for`` maps ``(key, record)`` to a ``(entry dict, wire bytes)``
    pair — the coordinator passes its :class:`~repro.core.taskindex.TaskIndex`
    entry cache so unchanged records are serialized once per transition, not
    once per round.  Wire size is accumulated during the build either way,
    so :attr:`ReplicaState.size_bytes` never re-walks the entries.
    """
    if only_keys is None:
        records: Iterable[tuple[Any, TaskRecord]] = tasks.items()
    else:
        records = ((key, tasks[key]) for key in only_keys if key in tasks)
    entries = []
    entries_bytes = 0
    if entry_for is None:
        for _key, record in records:
            entry = record.to_replica_entry()
            entries.append(entry)
            entries_bytes += TASK_DESCRIPTION_BYTES
            if entry["state"] != TaskState.FINISHED.value:
                entries_bytes += int(entry["call"]["params_bytes"])
    else:
        for key, record in records:
            entry, nbytes = entry_for(key, record)
            entries.append(entry)
            entries_bytes += nbytes
    return ReplicaState(
        origin=origin,
        entries=entries,
        client_timestamps=dict(client_timestamps),
        known_coordinators=list(known_coordinators),
        sent_at=now,
        entries_bytes=entries_bytes,
        fresh=True,
    )


def merge_state(
    tasks: dict[Any, TaskRecord],
    client_timestamps: dict[tuple[str, str], int],
    state: ReplicaState,
    key_of: Any,
) -> MergeOutcome:
    """Merge an incoming state abstract into the local task table.

    ``key_of`` maps a :class:`TaskRecord` to its table key (the identity
    tuple).  Conflicts are resolved by state precedence: a finished task never
    goes back to ongoing/pending, an ongoing task never goes back to pending.
    Returns what changed, including the identities that became finished (used
    by the completed-task curves of Figures 9-11).
    """
    outcome = MergeOutcome()
    for entry in state.entries:
        incoming = TaskRecord.from_replica_entry(entry)
        key = key_of(incoming)
        existing = tasks.get(key)
        if existing is None:
            tasks[key] = incoming
            outcome.new_tasks += 1
            outcome.changed.append(incoming.identity)
            if incoming.state is TaskState.FINISHED:
                outcome.newly_finished.append(incoming.identity)
            continue
        if state_precedence(incoming.state) > state_precedence(existing.state):
            became_finished = (
                incoming.state is TaskState.FINISHED
                and existing.state is not TaskState.FINISHED
            )
            existing.state = incoming.state
            existing.owner = incoming.owner
            existing.assigned_server = incoming.assigned_server
            existing.attempts = max(existing.attempts, incoming.attempts)
            existing.finished_at = incoming.finished_at
            if incoming.archive_holder:
                existing.archive_holder = incoming.archive_holder
            outcome.updated_tasks += 1
            outcome.changed.append(existing.identity)
            if became_finished:
                outcome.newly_finished.append(existing.identity)
    for key, timestamp in state.client_timestamps.items():
        if timestamp > client_timestamps.get(key, 0):
            client_timestamps[key] = timestamp
            outcome.timestamps_advanced += 1
    return outcome
