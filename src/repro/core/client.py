"""The RPC-V client component.

The client is the piece the application links against.  It:

* allocates call identities (timestamps) through its :class:`~repro.core.session.Session`;
* logs every submission locally with the configured strategy
  (:class:`~repro.msglog.strategies.LoggingEngine`) before/around sending it;
* talks exclusively to its *preferred coordinator*, switching to another one
  from its registry when the current one is suspected, and resynchronising
  from its durable log after any switch or restart;
* pulls results periodically (connection-less interactions: the coordinator
  only ever answers requests);
* emits heart-beats so the coordinator can tell it is still there.

Every public operation that takes simulated time is a generator meant to be
driven inside a host process (``yield from client.call_async(...)``); the
GridRPC-style façade in :mod:`repro.core.api` wraps these for application
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.config import ClientConfig, PolicyConfig
from repro.core.protocol import (
    CallDescription,
    ResultRecord,
    TASK_DESCRIPTION_BYTES,
    identity_to_key,
)
from repro.core.registry import CoordinatorRegistry
from repro.core.session import Session
from repro.core.synchronization import ClientSyncPlan
from repro.detect import FailureDetector, HeartbeatEmitter
from repro.errors import RPCTimeout, SessionError
from repro.msglog import GarbageCollector, LoggingEngine, MessageLog
from repro.net.message import Message, MessageType
from repro.nodes.node import Host
from repro.policies.resolve import logging_policy_from
from repro.sim.core import Event, ProcessKilled
from repro.sim.monitor import Monitor
from repro.types import Address, CallIdentity, RPCStatus

__all__ = ["RPCHandle", "ClientComponent"]


@dataclass
class RPCHandle:
    """Client-side handle on one submitted RPC."""

    description: CallDescription
    submitted_event: Event
    completed_event: Event
    status: RPCStatus = RPCStatus.SUBMITTED
    result: ResultRecord | None = None
    submitted_at: float = 0.0
    completed_at: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def identity(self) -> CallIdentity:
        """Identity of the underlying call."""
        return self.description.identity

    @property
    def timestamp(self) -> int:
        """The client timestamp (RPC counter) of this call."""
        return self.description.identity.rpc.value

    @property
    def done(self) -> bool:
        """Whether the result has been collected."""
        return self.status is RPCStatus.COMPLETED


class ClientComponent:
    """One RPC-V client running on a volatile host."""

    def __init__(
        self,
        host: Host,
        session: Session,
        registry: CoordinatorRegistry,
        config: ClientConfig | None = None,
        monitor: Monitor | None = None,
        policies: PolicyConfig | None = None,
    ) -> None:
        self.host = host
        self.env = host.env
        self.session = session
        self.registry = registry
        self.config = config or ClientConfig()
        self.config.validate()
        self.monitor = monitor or host.monitor
        #: explicit ``policy.*`` selections; ``None`` entries derive the
        #: built-in equivalent from the logging strategy flag.
        self.policies = policies or PolicyConfig()

        # Volatile protocol state (rebuilt by start()).
        self.log: MessageLog
        self.logging: LoggingEngine
        self.gc: GarbageCollector
        self.detector: FailureDetector
        self.handles: dict[int, RPCHandle] = {}
        self._ack_waiters: dict[int, Event] = {}
        self._sync_waiters: list[Event] = []
        self.completed_count = 0
        self.started = False
        self._heartbeat: HeartbeatEmitter | None = None

        host.on_restart(lambda _host: self.start())
        self._init_volatile()

    # ------------------------------------------------------------------ setup
    def _init_volatile(self) -> None:
        self.log = MessageLog(self.host, f"client:{self.session.session_id}")
        policy = logging_policy_from(self.config.logging, self.policies.logging)
        policy.bind(
            owner=str(self.host.address), rng=self.host.rng, monitor=self.monitor
        )
        self.logging = LoggingEngine(
            self.host, self.log, self.config.logging, policy=policy
        )
        self.gc = GarbageCollector(self.log, self.config.logging)
        self.detector = FailureDetector(self.config.detection)
        self.handles = {}
        self._ack_waiters = {}
        self._sync_waiters = []
        # Never reuse a timestamp: continue strictly after the durable log.
        max_durable = self.log.max_durable_key(default=0) or 0
        self.session.restore_counter(int(max_durable))

    def setup(self, builder) -> None:
        """Component lifecycle hook: the grid tier wiring already bound
        everything this client needs, so there is nothing left to pull off
        the :class:`~repro.platform.builder.Builder`."""

    def start(self) -> None:
        """(Re)start the client's background processes on its host.

        Called once by the component manager, and again by the host on every
        restart.
        """
        self._init_volatile()
        self.started = True
        if self._heartbeat is not None:
            self._heartbeat.stop()
        for coordinator in self.registry.known():
            self.detector.watch(coordinator, self.env.now)
        self.host.spawn(self._recv_loop(), name=f"{self.address}:recv")
        self.host.spawn(self._poll_loop(), name=f"{self.address}:poll")
        self.host.spawn(self._coordinator_watch_loop(), name=f"{self.address}:watch")
        self._heartbeat = HeartbeatEmitter(
            host=self.host,
            config=self.config.detection,
            mtype=MessageType.CLIENT_HEARTBEAT,
            targets=lambda: [self.preferred_coordinator()],
            payload=lambda: {
                "session": (self.session.user.value, self.session.session_id.value)
            },
        )
        self._heartbeat.start()

    def stop(self) -> None:
        """Retire the client: cancel the heart-beat timer (idempotent).

        The host's simulation processes are not killed — that would be a
        crash, not a shutdown — they simply stop mattering once the
        environment stops advancing.
        """
        self.started = False
        if self._heartbeat is not None:
            self._heartbeat.stop()

    @property
    def name(self) -> str:
        """Component name (the client's address string)."""
        return str(self.host.address)

    @property
    def address(self) -> Address:
        """Network address of this client."""
        return self.host.address

    def preferred_coordinator(self) -> Address | None:
        """The coordinator this client currently talks to."""
        return self.registry.preferred()

    # ------------------------------------------------------------- public API
    def call_async(
        self,
        service: str,
        *,
        params_bytes: int = 1024,
        result_bytes: int = 128,
        exec_time: float | None = None,
        args: Any = None,
    ):
        """Submit one non-blocking RPC.  Generator returning an :class:`RPCHandle`.

        The generator completes when the submission has been registered on the
        coordinator (acknowledged) — the quantity Figure 4 calls the "RPC
        submission time".
        """
        if not self.started:
            raise SessionError("client not started")
        identity = self.session.allocate()
        description = CallDescription(
            identity=identity,
            service=service,
            params_bytes=params_bytes,
            result_bytes=result_bytes,
            exec_time=exec_time,
            args=args,
        )
        handle = yield from self._submit(description)
        return handle

    def call(
        self,
        service: str,
        *,
        params_bytes: int = 1024,
        result_bytes: int = 128,
        exec_time: float | None = None,
        args: Any = None,
        timeout: float | None = None,
    ):
        """Blocking RPC: submit, then wait for the result.  Returns the result record."""
        handle = yield from self.call_async(
            service,
            params_bytes=params_bytes,
            result_bytes=result_bytes,
            exec_time=exec_time,
            args=args,
        )
        result = yield from self.wait(handle, timeout=timeout)
        return result

    def wait(self, handle: RPCHandle, timeout: float | None = None):
        """Wait until ``handle`` completes; returns its :class:`ResultRecord`."""
        if handle.done:
            return handle.result
        if timeout is None:
            yield handle.completed_event
            return handle.result
        yield from self.env.wait_any([handle.completed_event], timeout=timeout)
        if not handle.done:
            raise RPCTimeout(f"RPC {handle.identity} not completed within {timeout}s")
        return handle.result

    def wait_all(self, handles, timeout: float | None = None):
        """Wait for every handle; returns their results in the same order."""
        results = []
        for handle in handles:
            result = yield from self.wait(handle, timeout=timeout)
            results.append(result)
        return results

    def probe(self, handle: RPCHandle) -> RPCStatus:
        """Non-blocking status query."""
        return handle.status

    def pending_handles(self) -> list[RPCHandle]:
        """Handles submitted in this incarnation and not yet completed."""
        return [h for h in self.handles.values() if not h.done]

    # ----------------------------------------------------------- submission path
    def _submit(self, description: CallDescription):
        timestamp = description.identity.rpc.value
        handle = RPCHandle(
            description=description,
            submitted_event=self.env.event(),
            completed_event=self.env.event(),
            submitted_at=self.env.now,
        )
        self.handles[timestamp] = handle

        payload = description.to_payload()
        token = yield from self.logging.before_send(
            timestamp, payload, description.wire_bytes
        )

        # Retry until some coordinator acknowledges the submission.
        while True:
            coordinator = self.preferred_coordinator()
            if coordinator is None:
                yield self.host.sleep(self.config.request_retry)
                continue
            ack_event = self.env.event()
            self._ack_waiters[timestamp] = ack_event
            self.host.send(
                Message(
                    mtype=MessageType.RPC_SUBMIT,
                    source=self.address,
                    dest=coordinator,
                    payload={"call": payload, "timestamp": timestamp},
                    size_bytes=description.wire_bytes,
                )
            )
            self.monitor.incr("client.submissions_sent")
            yield from self.env.wait_any(
                [ack_event], timeout=self.config.request_retry
            )
            if ack_event.triggered:
                break
            # Timed out: withdraw the stale waiter before the retry installs
            # a fresh one (a late ack must not resume an abandoned round).
            if self._ack_waiters.get(timestamp) is ack_event:
                self._ack_waiters.pop(timestamp)
            self.monitor.incr("client.submission_retries")
            self._after_request_timeout(coordinator)

        self._ack_waiters.pop(timestamp, None)
        yield from self.logging.after_send(token)
        self.logging.ack(timestamp)
        self.gc.maybe_collect()
        if not handle.submitted_event.triggered:
            handle.submitted_event.succeed(handle)
        if self.config.inter_rpc_compute:
            yield self.host.sleep(self.config.inter_rpc_compute)
        return handle

    def _after_request_timeout(self, coordinator: Address) -> None:
        """Decide whether a request timeout warrants switching coordinator."""
        silence = self.detector.silence(coordinator, self.env.now)
        if silence > self.config.detection.suspicion_timeout:
            self.switch_coordinator(away_from=coordinator)

    def switch_coordinator(self, away_from: Address | None = None) -> Address | None:
        """Suspect the current coordinator and move to another one."""
        previous = self.preferred_coordinator()
        new = self.registry.switch_preferred(away_from=away_from or previous)
        if new is not None and new != previous:
            self.monitor.incr("client.coordinator_switches")
            self.monitor.trace(
                self.env.now,
                "client-switch",
                client=str(self.address),
                from_coordinator=str(previous) if previous else None,
                to_coordinator=str(new),
            )
            self.host.spawn(self._sync_after_switch(new), name=f"{self.address}:sync")
        return new

    def _sync_after_switch(self, coordinator: Address):
        try:
            yield from self.synchronize(coordinator)
        except ProcessKilled:  # pragma: no cover - host crash
            raise

    # ----------------------------------------------------------- synchronization
    def synchronize(self, coordinator: Address | None = None):
        """Synchronise with a coordinator from the local durable log.

        Generator returning the :class:`ClientSyncPlan` (or ``None`` when no
        coordinator replied).  Missing submissions are re-sent from the log;
        results already known by the coordinator are collected immediately at
        the next poll.
        """
        coordinator = coordinator or self.preferred_coordinator()
        if coordinator is None:
            return None
        durable_keys = sorted(int(k) for k in self.log.durable_keys())
        # Reading the local log list costs a disk read before anything is sent.
        yield from self.host.disk_read(
            max(64 * len(durable_keys), 64) if durable_keys else 64
        )
        reply_event = self.env.event()
        self._sync_waiters.append(reply_event)
        self.host.send(
            Message(
                mtype=MessageType.CLIENT_SYNC,
                source=self.address,
                dest=coordinator,
                payload={
                    "session": (self.session.user.value, self.session.session_id.value),
                    "durable_keys": durable_keys,
                    "max_timestamp": max(durable_keys, default=0),
                },
                size_bytes=64 + 8 * len(durable_keys),
            )
        )
        yield from self.env.wait_any([reply_event], timeout=self.config.request_retry)
        if reply_event in self._sync_waiters:
            self._sync_waiters.remove(reply_event)
        if not reply_event.triggered:
            self.monitor.incr("client.sync_timeouts")
            return None
        payload = reply_event.value
        plan = ClientSyncPlan(
            client_must_resend=list(payload.get("client_must_resend", [])),
            client_lost=list(payload.get("client_lost", [])),
            results_available=list(payload.get("results_available", [])),
            coordinator_max_timestamp=int(payload.get("coordinator_max_timestamp", 0)),
        )
        self.session.restore_counter(plan.coordinator_max_timestamp)
        # Re-send what the coordinator is missing, straight from the log: one
        # bulk read of the needed records, then the pushes.
        resend_records = [self.log.get(key) for key in plan.client_must_resend]
        resend_bytes = sum(r.size_bytes for r in resend_records if r is not None)
        if resend_bytes:
            yield from self.host.disk_read(resend_bytes)
        for key in plan.client_must_resend:
            record = self.log.get(key)
            if record is None:
                continue
            self.host.send(
                Message(
                    mtype=MessageType.RPC_SUBMIT,
                    source=self.address,
                    dest=coordinator,
                    payload={"call": dict(record.payload), "timestamp": key},
                    size_bytes=record.size_bytes,
                )
            )
            self.monitor.incr("client.sync_resends")
        self.monitor.incr("client.syncs")
        return plan

    def recover(self):
        """After a restart: resynchronise with the preferred coordinator.

        Returns the sync plan so the re-launched application can decide what
        still needs to be submitted (calls never registered anywhere) and what
        to simply collect.
        """
        plan = yield from self.synchronize()
        return plan

    # ----------------------------------------------------------------- loops
    def _recv_loop(self):
        # Batched drain (recv_many): fan-in replies — submit acks, pulled
        # results — landing in the same tick resume the session once, not
        # once per message.
        try:
            while True:
                batch: list[Message] = yield self.host.recv_many()
                for message in batch:
                    self._dispatch(message)
        except ProcessKilled:  # pragma: no cover - host crash
            return

    def _dispatch(self, message: Message) -> None:
        self.detector.heard_from(message.source, self.env.now)
        self.registry.rehabilitate(message.source)
        mtype = message.mtype
        if mtype is MessageType.SUBMIT_ACK:
            timestamp = int(message.payload.get("timestamp", 0))
            self.logging.ack(timestamp)
            waiter = self._ack_waiters.pop(timestamp, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(message.payload)
            handle = self.handles.get(timestamp)
            if handle and not handle.submitted_event.triggered:
                handle.submitted_event.succeed(handle)
        elif mtype is MessageType.RESULT_REPLY:
            for result_payload in message.payload.get("results", []):
                self._complete(ResultRecord.from_payload(result_payload))
        elif mtype is MessageType.COORD_SYNC_REPLY:
            if self._sync_waiters:
                waiter = self._sync_waiters.pop(0)
                if not waiter.triggered:
                    waiter.succeed(message.payload)
        # Heart-beat style messages carry no action for the client.

    def _complete(self, result: ResultRecord) -> None:
        timestamp = result.identity.rpc.value
        handle = self.handles.get(timestamp)
        if handle is None or handle.done:
            return
        handle.result = result
        handle.status = RPCStatus.COMPLETED
        handle.completed_at = self.env.now
        self.completed_count += 1
        self.monitor.incr("client.results_received")
        self.monitor.sample("client.completed", self.env.now, self.completed_count)
        if not handle.completed_event.triggered:
            handle.completed_event.succeed(result)

    def _poll_loop(self):
        try:
            while True:
                yield self.host.sleep(self.config.result_poll_period)
                coordinator = self.preferred_coordinator()
                if coordinator is None:
                    continue
                pending = [h.timestamp for h in self.pending_handles()]
                self.host.send(
                    Message(
                        mtype=MessageType.RESULT_PULL,
                        source=self.address,
                        dest=coordinator,
                        payload={
                            "session": (
                                self.session.user.value,
                                self.session.session_id.value,
                            ),
                            "pending": pending,
                        },
                        size_bytes=64 + 8 * len(pending),
                    )
                )
        except ProcessKilled:  # pragma: no cover - host crash
            return

    def _coordinator_watch_loop(self):
        try:
            while True:
                yield self.host.sleep(self.config.detection.heartbeat_period)
                coordinator = self.preferred_coordinator()
                if coordinator is None:
                    self.registry.switch_preferred()
                    continue
                if self.detector.is_suspected(coordinator, self.env.now):
                    self.monitor.incr("client.coordinator_suspicions")
                    self.switch_coordinator(away_from=coordinator)
        except ProcessKilled:  # pragma: no cover - host crash
            return

    # ------------------------------------------------------------------ reporting
    def stats(self) -> dict[str, Any]:
        """Snapshot of client-side counters (used by experiments and tests)."""
        return {
            "submitted": self.session.issued_count(),
            "completed": self.completed_count,
            "pending": len(self.pending_handles()),
            "log_records": len(self.log),
            "log_bytes": self.log.total_bytes(),
            "logging_overhead": self.logging.blocking_overhead,
            "logging_policy": self.logging.policy.key,
            "preferred_coordinator": str(self.preferred_coordinator()),
        }
