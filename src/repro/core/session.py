"""Sessions and call-identity allocation.

"Any client RPC call execution in the system is identified by: the user
unique ID, a session unique ID and a RPC unique ID.  A session corresponds to
the logging of the user into the system."  The session object allocates the
monotonically increasing RPC counter that doubles as the client's message
timestamp — the backbone of the synchronization protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import SessionError
from repro.types import CallIdentity, RPCId, SessionId, UserId

__all__ = ["Session"]

_SESSION_SEQ = itertools.count(1)


@dataclass
class Session:
    """One login of a user into the system."""

    user: UserId
    session_id: SessionId
    #: next RPC counter value; restored from the durable log on client restart.
    next_counter: int = 1
    closed: bool = False
    _issued: list[int] = field(default_factory=list, repr=False)

    @classmethod
    def open(cls, user: str | UserId, label: str | None = None) -> "Session":
        """Open a fresh session for ``user``."""
        user_id = user if isinstance(user, UserId) else UserId(str(user))
        suffix = label or f"s{next(_SESSION_SEQ)}"
        return cls(user=user_id, session_id=SessionId(f"{user_id.value}-{suffix}"))

    def close(self) -> None:
        """End the session (logout); further allocations are errors."""
        self.closed = True

    # -- identity allocation --------------------------------------------------------
    def allocate(self) -> CallIdentity:
        """Allocate the identity (and timestamp) of the next RPC call."""
        if self.closed:
            raise SessionError(f"session {self.session_id} is closed")
        counter = self.next_counter
        self.next_counter += 1
        self._issued.append(counter)
        return CallIdentity(user=self.user, session=self.session_id, rpc=RPCId(counter))

    def last_timestamp(self) -> int:
        """Highest timestamp issued so far (0 when none)."""
        return self._issued[-1] if self._issued else 0

    def restore_counter(self, max_known_timestamp: int) -> None:
        """After a restart, continue numbering strictly after what is known.

        ``max_known_timestamp`` is the maximum of the client's durable log and
        the coordinator's registered timestamp for this session, so identities
        are never reused even if the client lost volatile state.
        """
        if max_known_timestamp + 1 > self.next_counter:
            self.next_counter = max_known_timestamp + 1

    def issued_count(self) -> int:
        """Number of identities allocated in this incarnation."""
        return len(self._issued)
