"""GridRPC-compatible programming façade.

The RPC-V API "is compliant with GridRPC except the functions for Remote
Function Handle Management", which the coordinator's virtualization makes
unnecessary (the client never connects to a server directly).  This module
exposes that surface on top of :class:`~repro.core.client.ClientComponent`:

================  =====================================================
GridRPC function   RPC-V equivalent
================  =====================================================
grpc_initialize    :meth:`GridRpc.initialize`
grpc_finalize      :meth:`GridRpc.finalize`
grpc_call          :meth:`GridRpc.call` (blocking)
grpc_call_async    :meth:`GridRpc.call_async` (returns a session/handle id)
grpc_probe         :meth:`GridRpc.probe`
grpc_wait          :meth:`GridRpc.wait`
grpc_wait_all      :meth:`GridRpc.wait_all`
grpc_wait_any      :meth:`GridRpc.wait_any`
grpc_cancel        :meth:`GridRpc.cancel` (best effort — at-least-once
                   semantics mean an executing call may still complete)
function handles   *absent by design* — the coordinator forwards calls
================  =====================================================

All blocking operations are generators: application code runs inside a host
process and drives them with ``yield from``, exactly like the paper's client
application runs alongside the XtremWeb client.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.client import ClientComponent, RPCHandle
from repro.errors import RPCError, SessionError
from repro.types import RPCStatus

__all__ = ["GridRpc"]


class GridRpc:
    """GridRPC-style façade over one RPC-V client."""

    def __init__(self, client: ClientComponent) -> None:
        self._client = client
        self._initialized = False
        self._handles: dict[int, RPCHandle] = {}

    # -- lifecycle -------------------------------------------------------------
    def initialize(self) -> None:
        """grpc_initialize: bind to the (already started) RPC-V client."""
        if not self._client.started:
            raise SessionError("the underlying RPC-V client is not started")
        self._initialized = True

    def finalize(self) -> None:
        """grpc_finalize: forget every handle (the session itself stays open)."""
        self._handles.clear()
        self._initialized = False

    @property
    def initialized(self) -> bool:
        """Whether :meth:`initialize` has been called."""
        return self._initialized

    def _require_init(self) -> None:
        if not self._initialized:
            raise SessionError("call initialize() before issuing RPCs")

    # -- calls ----------------------------------------------------------------
    def call_async(
        self,
        service: str,
        *,
        params_bytes: int = 1024,
        result_bytes: int = 128,
        exec_time: float | None = None,
        args: Any = None,
    ):
        """grpc_call_async: submit and return the handle id (generator)."""
        self._require_init()
        handle = yield from self._client.call_async(
            service,
            params_bytes=params_bytes,
            result_bytes=result_bytes,
            exec_time=exec_time,
            args=args,
        )
        self._handles[handle.timestamp] = handle
        return handle.timestamp

    def call(
        self,
        service: str,
        *,
        params_bytes: int = 1024,
        result_bytes: int = 128,
        exec_time: float | None = None,
        args: Any = None,
        timeout: float | None = None,
    ):
        """grpc_call: blocking call returning the result record (generator)."""
        self._require_init()
        result = yield from self._client.call(
            service,
            params_bytes=params_bytes,
            result_bytes=result_bytes,
            exec_time=exec_time,
            args=args,
            timeout=timeout,
        )
        return result

    # -- waiting / probing ---------------------------------------------------------
    def _handle(self, handle_id: int) -> RPCHandle:
        try:
            return self._handles[handle_id]
        except KeyError:
            raise RPCError(f"unknown handle id {handle_id!r}") from None

    def probe(self, handle_id: int) -> RPCStatus:
        """grpc_probe: non-blocking completion check."""
        return self._client.probe(self._handle(handle_id))

    def wait(self, handle_id: int, timeout: float | None = None):
        """grpc_wait: block until one call completes (generator)."""
        result = yield from self._client.wait(self._handle(handle_id), timeout=timeout)
        return result

    def wait_all(self, handle_ids: Iterable[int], timeout: float | None = None):
        """grpc_wait_all: block until every listed call completes (generator)."""
        handles = [self._handle(h) for h in handle_ids]
        results = yield from self._client.wait_all(handles, timeout=timeout)
        return results

    def wait_any(self, handle_ids: Iterable[int]):
        """grpc_wait_any: block until one of the calls completes (generator).

        Returns ``(handle_id, result)`` of the first completion.
        """
        ids = list(handle_ids)
        handles = [self._handle(h) for h in ids]
        for handle_id, handle in zip(ids, handles):
            if handle.done:
                return handle_id, handle.result
        events = [h.completed_event for h in handles]
        # wait_any detaches from the losing handles' completion events, so a
        # broad race does not leave stale callbacks on long-lived handles.
        yield from self._client.env.wait_any(events)
        for handle_id, handle in zip(ids, handles):
            if handle.done:
                return handle_id, handle.result
        raise RPCError("wait_any returned without any completed handle")

    def cancel(self, handle_id: int) -> None:
        """grpc_cancel: stop tracking the call locally (best effort).

        At-least-once semantics mean a server may still execute and upload
        the result; the client simply stops waiting for it.
        """
        self._handles.pop(handle_id, None)

    # -- introspection ---------------------------------------------------------------
    def handles(self) -> list[int]:
        """Ids of every handle issued through this façade."""
        return list(self._handles)

    def result_of(self, handle_id: int):
        """Result record of a completed handle (None when not completed)."""
        return self._handle(handle_id).result
