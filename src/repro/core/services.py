"""Stateless service registry.

Section 2 of the paper restricts the application scope of Internet connected
Desktop Grids to *stateless* services with at-least-once semantics: a service
is a pure function of its parameters, so re-executing it (after a suspicion,
a duplication or a lost result) is always safe.  The registry enforces that
discipline: a service is a name bound to a callable plus a cost model, with no
mutable state allowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError, ServiceNotRegistered

__all__ = ["ServiceSpec", "ServiceRegistry", "default_registry"]


@dataclass
class ServiceSpec:
    """Definition of one stateless service."""

    name: str
    #: the actual computation (used by the live runtime and the examples);
    #: simulations may leave it None and rely on ``exec_time`` instead.
    fn: Callable[..., Any] | None = None
    #: default simulated execution time (seconds) when a call does not
    #: specify one.
    default_exec_time: float = 1.0
    #: default simulated result size (bytes).
    default_result_bytes: int = 128
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("service name must be non-empty")
        if self.default_exec_time < 0:
            raise ConfigurationError("default_exec_time must be non-negative")

    def execute(self, args: Any) -> Any:
        """Run the real callable (live runtime); identity when none is bound."""
        if self.fn is None:
            return args
        if isinstance(args, dict):
            return self.fn(**args)
        if isinstance(args, (list, tuple)):
            return self.fn(*args)
        if args is None:
            return self.fn()
        return self.fn(args)


class ServiceRegistry:
    """Name -> :class:`ServiceSpec` mapping shared by servers of a scenario."""

    def __init__(self) -> None:
        self._services: dict[str, ServiceSpec] = {}

    def register(self, spec: ServiceSpec) -> ServiceSpec:
        """Register (or replace) a service definition."""
        self._services[spec.name] = spec
        return spec

    def register_function(
        self,
        name: str,
        fn: Callable[..., Any],
        default_exec_time: float = 1.0,
        default_result_bytes: int = 128,
        description: str = "",
    ) -> ServiceSpec:
        """Convenience wrapper building the :class:`ServiceSpec` for ``fn``."""
        return self.register(
            ServiceSpec(
                name=name,
                fn=fn,
                default_exec_time=default_exec_time,
                default_result_bytes=default_result_bytes,
                description=description,
            )
        )

    def get(self, name: str) -> ServiceSpec:
        """Look a service up; raises :class:`ServiceNotRegistered` if unknown."""
        try:
            return self._services[name]
        except KeyError:
            raise ServiceNotRegistered(f"service {name!r} is not registered") from None

    def has(self, name: str) -> bool:
        """Whether ``name`` is registered."""
        return name in self._services

    def names(self) -> list[str]:
        """All registered service names (sorted)."""
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)


def default_registry() -> ServiceRegistry:
    """A registry pre-loaded with the synthetic services used by experiments.

    * ``sleep`` — the synthetic benchmark service: does nothing for the
      requested time; every experiment of §5.1 uses it.
    * ``echo`` — returns its arguments unchanged (quickstart example).
    * ``network-validation`` — stands in for the Alcatel commutation-network
      validation tool of §5.2 (the duration distribution is the workload's
      business, not the service's).
    """
    registry = ServiceRegistry()
    registry.register(
        ServiceSpec(
            name="sleep",
            fn=None,
            default_exec_time=1.0,
            default_result_bytes=64,
            description="synthetic benchmark service (configurable duration)",
        )
    )
    registry.register(
        ServiceSpec(
            name="echo",
            fn=lambda *args, **kwargs: args[0] if args else kwargs or None,
            default_exec_time=0.0,
            default_result_bytes=64,
            description="returns its first argument",
        )
    )
    registry.register(
        ServiceSpec(
            name="network-validation",
            fn=None,
            default_exec_time=30.0,
            default_result_bytes=2048,
            description="stand-in for the Alcatel commutation-network validation tool",
        )
    )
    return registry
