"""The RPC-V protocol: clients, coordinators, servers and their glue.

This package is the paper's primary contribution — the fault-tolerant RPC
protocol combining a three-tier architecture, sender-based message logging on
every component, unreliable heart-beat fault detectors and passive replication
of the coordinators over a virtual ring.
"""

from repro.core.api import GridRpc
from repro.core.client import ClientComponent, RPCHandle
from repro.core.coordinator import CoordinatorComponent
from repro.core.protocol import (
    CallDescription,
    ResultRecord,
    TASK_DESCRIPTION_BYTES,
    TaskRecord,
    identity_to_key,
    key_to_identity,
)
from repro.core.registry import CoordinatorRegistry
from repro.core.replication import ReplicaState, build_state, merge_state
from repro.core.scheduler import FcfsScheduler, SchedulingDecision
from repro.core.taskindex import TaskIndex
from repro.core.server import ServerComponent
from repro.core.services import ServiceRegistry, ServiceSpec, default_registry
from repro.core.session import Session
from repro.core.synchronization import (
    ClientSyncPlan,
    ServerSyncPlan,
    merge_max_timestamps,
    plan_client_sync,
    plan_server_sync,
)

__all__ = [
    "CallDescription",
    "ClientComponent",
    "ClientSyncPlan",
    "CoordinatorComponent",
    "CoordinatorRegistry",
    "FcfsScheduler",
    "GridRpc",
    "ReplicaState",
    "ResultRecord",
    "RPCHandle",
    "SchedulingDecision",
    "ServerComponent",
    "ServerSyncPlan",
    "ServiceRegistry",
    "ServiceSpec",
    "Session",
    "TaskIndex",
    "TASK_DESCRIPTION_BYTES",
    "TaskRecord",
    "build_state",
    "default_registry",
    "identity_to_key",
    "key_to_identity",
    "merge_max_timestamps",
    "merge_state",
    "plan_client_sync",
    "plan_server_sync",
]
