"""The RPC-V coordinator (middle tier).

The Coordinator service virtualises the servers for the clients: clients never
talk to servers directly.  Each coordinator component:

* registers client submissions as tasks in its **database** (descriptions) and
  keeps result archives in its file store — both persistent across crashes;
* answers server *work requests* with the FCFS scheduler, applying the replica
  de-duplication policy (finished: never; ongoing: only if the owner is
  suspected; pending: yes);
* suspects servers through a heart-beat fault detector and reschedules their
  ongoing tasks ("on suspicion" replication);
* propagates a state abstract to its **ring successor** at every replication
  period (passive replication), suspecting the successor and recomputing the
  virtual ring when the acknowledgement does not come back;
* answers client result pulls and synchronisation requests, fetching result
  archives from the coordinator that holds them when it only learned of a
  completion through replication (archives themselves are never replicated).

Every request handled is charged the middleware processing overhead plus the
database costs, which is where the paper's infrastructure overhead and the
database-dominated replication times come from.
"""

from __future__ import annotations

from typing import Any

from repro.config import CoordinatorConfig, PolicyConfig
from repro.core.protocol import (
    CallDescription,
    ResultRecord,
    TASK_DESCRIPTION_BYTES,
    TaskRecord,
    identity_to_key,
    key_to_identity,
)
from repro.core.registry import CoordinatorRegistry
from repro.core.replication import ReplicaState, build_state, merge_state
from repro.core.synchronization import plan_client_sync, plan_server_sync
from repro.core.taskindex import TaskIndex
from repro.policies.resolve import (
    detection_policy_from,
    replication_policy_from,
    scheduler_policy_from,
)
from repro.detect import FailureDetector, HeartbeatEmitter
from repro.net.message import Message, MessageType
from repro.nodes.database import Database, DatabaseModel
from repro.nodes.node import Host
from repro.sim.core import Event, ProcessKilled
from repro.sim.monitor import Monitor
from repro.types import Address, TaskState

__all__ = ["CoordinatorComponent"]


class CoordinatorComponent:
    """One coordinator replica of the Coordinator service."""

    def __init__(
        self,
        host: Host,
        registry: CoordinatorRegistry,
        config: CoordinatorConfig | None = None,
        monitor: Monitor | None = None,
        database_model: DatabaseModel | None = None,
        policies: PolicyConfig | None = None,
    ) -> None:
        self.host = host
        self.env = host.env
        self.registry = registry
        self.config = config or CoordinatorConfig()
        self.config.validate()
        self.monitor = monitor or host.monitor
        self.name = str(host.address)
        #: explicit ``policy.*`` selections; ``None`` entries derive the
        #: built-in equivalent from the legacy config flags.
        self.policies = policies or PolicyConfig()

        # Persistent state (survives crashes).
        persistent = host.persistent
        self.tasks: dict[tuple, TaskRecord] = persistent.setdefault("coord:tasks", {})
        self.results: dict[tuple, ResultRecord] = persistent.setdefault("coord:results", {})
        self.client_timestamps: dict[tuple[str, str], int] = persistent.setdefault(
            "coord:timestamps", {}
        )
        self.database = persistent.setdefault(
            "coord:database", Database(model=database_model or DatabaseModel())
        )

        # Volatile state (rebuilt by start()).
        #: ground-truth oracle for suspicion accounting (installed by
        #: setup() once the builder's network exists; metrics only).
        self._ground_truth = None
        self.scheduler = self._make_scheduler()
        self.replication_policy = self._make_replication_policy()
        self.server_detector = self._make_detector()
        self.coordinator_detector = self._make_detector()
        self.known_servers: set[Address] = set()
        #: keys queued for the next state propagation.  Insertion-ordered
        #: (dict, not set): replication rounds re-order them by table
        #: sequence, and a deterministic iteration order keeps parallel and
        #: sequential sweeps byte-identical under hash randomization.
        self._dirty: dict[tuple, None] = {}
        #: incrementally maintained views of the task table (None = legacy
        #: scan-everything data plane, see CoordinatorConfig.use_task_index).
        self.index: TaskIndex | None = (
            TaskIndex(self.tasks) if self.config.use_task_index else None
        )
        self._replica_ack_waiters: dict[int, Event] = {}
        #: round id -> {"event", "acks", "needed"} for in-flight quorum rounds.
        self._quorum_waiters: dict[int, dict[str, Any]] = {}
        #: replica origin name -> freshest ``sent_at`` seen from it (used by
        #: quorum recovery to elect the freshest surviving replica).
        self._replica_freshness: dict[str, float] = {}
        #: key -> time of the last archive fetch attempt (retried if too old).
        self._archive_fetches_in_flight: dict[tuple, float] = {}
        self._archive_fetch_attempts: dict[tuple, int] = {}
        #: key -> last time the assigned server reported working on the task.
        self._task_activity: dict[tuple, float] = {}
        self._replication_rounds = 0
        self._coord_heartbeat: HeartbeatEmitter | None = None
        self.started = False

        # Pre-resolved handles for the request-path counters: one name
        # lookup here, plain attribute adds on every submission/assignment/
        # result/replication afterwards.
        monitor = self.monitor
        self._ctr_submissions = monitor.counter("coordinator.submissions")
        self._ctr_duplicate_submissions = monitor.counter(
            "coordinator.duplicate_submissions"
        )
        self._ctr_assignments = monitor.counter("coordinator.assignments")
        self._ctr_results = monitor.counter("coordinator.results")
        self._ctr_duplicate_results = monitor.counter("coordinator.duplicate_results")
        self._ctr_replications = monitor.counter("coordinator.replications")
        self._ctr_crowd_batches = monitor.counter("coordinator.crowd_batches")
        self._ctr_crowd_calls = monitor.counter("coordinator.crowd_calls")
        self._ctr_duplicate_crowd_batches = monitor.counter(
            "coordinator.duplicate_crowd_batches"
        )

        host.on_restart(lambda _host: self.start())

    # ------------------------------------------------------------------ setup
    def setup(self, builder) -> None:
        """Component lifecycle hook: install the ground-truth oracle.

        The builder's network knows whether an endpoint is actually up, so
        suspicion transitions can be scored right/wrong (metrics only — the
        protocol itself never consults ground truth).
        """
        network = builder.network

        def actually_up(address, _network=network):
            try:
                return bool(_network.endpoint(address).up)
            except Exception:
                # Unknown endpoint (e.g. merged from a stale coordinator
                # list): no verdict, err on the side of "up".
                return True

        self._ground_truth = actually_up
        self.server_detector.ground_truth = actually_up
        self.coordinator_detector.ground_truth = actually_up

    def _make_detector(self) -> FailureDetector:
        """Fresh failure detector for one incarnation (policy bound here).

        The detector instance is volatile — a restarted coordinator starts
        from a clean slate of opinions — but its suspicion accounting also
        lands in the grid monitor's ``detect.*`` counters, which survive
        restarts.
        """
        policy = detection_policy_from(self.config.detection, self.policies.detection)
        policy.bind(owner=self.name, rng=self.host.rng, monitor=self.monitor)
        return FailureDetector(
            self.config.detection,
            ground_truth=self._ground_truth,
            policy=policy,
            monitor=self.monitor,
        )

    def _make_scheduler(self):
        """Fresh scheduling policy for one incarnation (bound to this host)."""
        policy = scheduler_policy_from(self.config.scheduler, self.policies.scheduler)
        return policy.bind(owner=self.name, rng=self.host.rng, monitor=self.monitor)

    def _make_replication_policy(self):
        """Fresh replication policy for one incarnation (bound to this host)."""
        policy = replication_policy_from(
            self.config.replication, self.policies.replication
        )
        return policy.bind(owner=self.name, rng=self.host.rng, monitor=self.monitor)

    def start(self) -> None:
        """(Re)start the coordinator's loops; persistent state is already here."""
        self.scheduler = self._make_scheduler()
        self.replication_policy = self._make_replication_policy()
        self.server_detector = self._make_detector()
        self.coordinator_detector = self._make_detector()
        self.known_servers = set()
        self._dirty = dict.fromkeys(self.tasks)  # resync everything after a restart
        if self.index is not None:
            self.index.rebuild()
        self._replica_ack_waiters = {}
        self._quorum_waiters = {}
        self._archive_fetches_in_flight = {}
        self._archive_fetch_attempts = {}
        self._task_activity = {}
        self.started = True
        if self._coord_heartbeat is not None:
            self._coord_heartbeat.stop()
        self.host.spawn(self._recv_loop(), name=f"{self.name}:recv")
        self.host.spawn(self._server_watch_loop(), name=f"{self.name}:server-watch")
        self.replication_policy.install(self)
        # Periodic heart-beats to every other coordinator: this is how stale
        # suspicions get cleared ("the list is ... merged periodically, at
        # heart beat signal receptions") so the virtual ring heals after
        # crashes and restarts.
        self._coord_heartbeat = HeartbeatEmitter(
            host=self.host,
            config=self.config.detection,
            mtype=MessageType.COORD_HEARTBEAT,
            targets=self.other_coordinators,
        )
        self._coord_heartbeat.start()
        self._sample_completed()

    def stop(self) -> None:
        """Retire the coordinator: cancel the heart-beat timer (idempotent)."""
        self.started = False
        if self._coord_heartbeat is not None:
            self._coord_heartbeat.stop()

    @property
    def address(self) -> Address:
        """Network address of this coordinator."""
        return self.host.address

    # ------------------------------------------------------------------ helpers
    def _mark_dirty(self, key: tuple) -> None:
        """Queue ``key`` for the next state propagation (policy notified).

        This doubles as the task index's transition choke point: every
        mutation path already marks the record dirty, so routing the
        ``note`` through here keeps the index exact by construction.
        """
        if self.index is not None:
            record = self.tasks.get(key)
            if record is not None:
                self.index.note(record, key)
        self._dirty[key] = None
        self.replication_policy.on_dirty(self, key)

    def preload_tasks(
        self,
        calls: "list[CallDescription]",
        state: TaskState = TaskState.PENDING,
        mark_dirty: bool = True,
    ) -> list[tuple]:
        """Register task records directly, bypassing the submission protocol.

        Benchmarks and scenario drivers use this to seed a coordinator with
        pending work (e.g. the Figure 5 replication measurements) without
        simulating the client submissions.  Each call is recorded exactly as
        :meth:`_on_submit` would leave it: owned by this coordinator, marked
        for the next replication round, and charged to the database.  Returns
        the task keys, in call order.  ``mark_dirty=False`` seeds the backlog
        as already-propagated steady state (the protocol benchmark's ladder),
        skipping the initial full-table replication storm.
        """
        keys: list[tuple] = []
        for call in calls:
            key = identity_to_key(call.identity)
            record = TaskRecord(
                call=call,
                state=state,
                owner=self.name,
                submitted_at=self.env.now,
            )
            self.tasks[key] = record
            if mark_dirty:
                self._mark_dirty(key)
            elif self.index is not None:
                self.index.note(record, key)
            self.database.charge_write(key, {"state": state.value}, call.params_bytes)
            keys.append(key)
        return keys

    def finished_count(self) -> int:
        """Number of tasks this coordinator currently knows as finished."""
        if self.index is not None:
            return self.index.finished
        return sum(1 for t in self.tasks.values() if t.state is TaskState.FINISHED)

    def _sample_completed(self) -> None:
        self.monitor.sample(
            f"coordinator.completed.{self.host.address.name}",
            self.env.now,
            self.finished_count(),
        )

    def _charge(self, seconds: float):
        """Process fragment: pay a local processing cost."""
        if seconds > 0:
            yield self.host.sleep(seconds)

    def _owner_suspected(self, owner: str) -> bool:
        if not owner or owner == self.name:
            return False
        for coordinator in self.registry.known():
            if str(coordinator) == owner:
                return self.coordinator_detector.is_suspected(coordinator, self.env.now)
        # An owner we do not even know is treated as unreachable, hence suspect.
        return True

    def other_coordinators(self) -> list[Address]:
        """Every known coordinator except this one."""
        return [c for c in self.registry.known() if c != self.address]

    # ------------------------------------------------------------------ loops
    def _recv_loop(self):
        # Batched drain: one resume per tick however many messages landed
        # (recv_many), instead of one resume per message.
        try:
            while True:
                batch: list[Message] = yield self.host.recv_many()
                for message in batch:
                    yield from self._handle(message)
        except ProcessKilled:  # pragma: no cover - host crash
            return

    def _handle(self, message: Message):
        overhead = self.config.request_processing_overhead
        mtype = message.mtype
        if mtype is MessageType.RPC_SUBMIT:
            yield from self._charge(overhead)
            yield from self._on_submit(message)
        elif mtype is MessageType.WORK_REQUEST:
            yield from self._charge(overhead)
            yield from self._on_work_request(message)
        elif mtype is MessageType.TASK_RESULT:
            yield from self._charge(overhead)
            yield from self._on_task_result(message)
        elif mtype is MessageType.RESULT_PULL:
            yield from self._charge(overhead)
            yield from self._on_result_pull(message)
        elif mtype is MessageType.CLIENT_SYNC:
            yield from self._charge(overhead)
            yield from self._on_client_sync(message)
        elif mtype is MessageType.SERVER_SYNC:
            yield from self._charge(overhead)
            yield from self._on_server_sync(message)
        elif mtype is MessageType.REPLICA_STATE:
            yield from self._on_replica_state(message)
        elif mtype is MessageType.REPLICA_ACK:
            self._on_replica_ack(message)
        elif mtype is MessageType.REPLICA_PULL:
            yield from self._on_replica_pull(message)
        elif mtype is MessageType.SERVER_HEARTBEAT:
            self._on_server_heartbeat(message)
            # Heart-beats are handled entirely in place (values copied out
            # above), so their pooled envelopes go back to the free list.
            message.release()
        elif mtype is MessageType.CROWD_SUBMIT_BATCH:
            yield from self._charge(overhead)
            yield from self._on_crowd_submit(message)
        elif mtype is MessageType.CROWD_HEARTBEAT:
            # Aggregate liveness summaries need no per-client bookkeeping.
            message.release()
        elif mtype is MessageType.CLIENT_HEARTBEAT:
            message.release()  # nothing to do beyond receiving it
        elif mtype is MessageType.COORD_HEARTBEAT:
            self.coordinator_detector.heard_from(
                message.source,
                self.env.now,
                incarnation=message.payload.get("incarnation"),
            )
            self.registry.rehabilitate(message.source)
            message.release()
        elif mtype is MessageType.ARCHIVE_FETCH:
            yield from self._on_archive_fetch(message)
        elif mtype is MessageType.ARCHIVE_REPLY:
            yield from self._on_archive_reply(message)
        elif mtype is MessageType.PING:
            self.host.send(message.reply(MessageType.PONG))
        # Unknown types are ignored (forward compatibility).

    def _hear_server(self, server: Address, incarnation: int | None = None) -> None:
        self.known_servers.add(server)
        self.server_detector.watch(server, self.env.now)
        self.server_detector.heard_from(server, self.env.now, incarnation=incarnation)

    def _on_server_heartbeat(self, message: Message) -> None:
        self._hear_server(
            message.source, incarnation=message.payload.get("incarnation")
        )
        working_on = message.payload.get("working_on")
        if working_on is not None:
            self._task_activity[tuple(working_on)] = self.env.now

    # ------------------------------------------------------------ client requests
    def _on_submit(self, message: Message):
        call = CallDescription.from_payload(message.payload["call"])
        key = identity_to_key(call.identity)
        timestamp = int(message.payload.get("timestamp", call.identity.rpc.value))
        session_key = (call.identity.user.value, call.identity.session.value)
        if timestamp > self.client_timestamps.get(session_key, 0):
            self.client_timestamps[session_key] = timestamp

        if key not in self.tasks:
            record = TaskRecord(
                call=call,
                state=TaskState.PENDING,
                owner=self.name,
                submitted_at=self.env.now,
            )
            self.tasks[key] = record
            self._mark_dirty(key)
            cost = self.database.charge_write(
                key, {"state": record.state.value}, TASK_DESCRIPTION_BYTES + call.params_bytes
            )
            yield from self._charge(cost)
            self._ctr_submissions.value += 1
        else:
            self._ctr_duplicate_submissions.value += 1

        self.host.send(
            message.reply(
                MessageType.SUBMIT_ACK,
                payload={"timestamp": timestamp},
                size_bytes=32,
            )
        )

    # -------------------------------------------------------------- crowd tier
    def _on_crowd_submit(self, message: Message):
        """Expand one aggregated crowd envelope into one task record.

        A batch of ``count`` statistical clients becomes a single task whose
        execution time already aggregates the member calls; the batch id is
        stable across re-sends, so a duplicate envelope (retry, or re-route to
        this coordinator as the shard's ring successor) de-duplicates on the
        task key exactly like a duplicate ``RPC_SUBMIT`` — no client is ever
        committed twice.
        """
        payload = message.payload
        crowd = str(payload.get("crowd", "crowd"))
        shard = int(payload.get("shard", 0))
        batch = int(payload.get("batch", 0))
        count = int(payload.get("count", 0))
        key = (f"crowd:{crowd}", f"shard{shard}", batch)
        task = self.tasks.get(key)
        if task is None:
            source = message.source
            call = CallDescription(
                identity=key_to_identity(key),
                service=str(payload.get("service", "crowd")),
                params_bytes=message.size_bytes,
                result_bytes=int(payload.get("result_bytes", 64)),
                exec_time=payload.get("exec_time"),
                # The args replicate with the task record, so whichever
                # coordinator finishes the batch can push the result back.
                args={
                    "crowd": crowd,
                    "shard": shard,
                    "batch": batch,
                    "count": count,
                    "reply_to": [source.kind, source.name],
                },
            )
            record = TaskRecord(
                call=call,
                state=TaskState.PENDING,
                owner=self.name,
                submitted_at=self.env.now,
            )
            self.tasks[key] = record
            self._mark_dirty(key)
            cost = self.database.charge_write(
                key, {"state": record.state.value}, TASK_DESCRIPTION_BYTES + call.params_bytes
            )
            yield from self._charge(cost)
            self._ctr_crowd_batches.value += 1
            self._ctr_crowd_calls.value += count
        else:
            self._ctr_duplicate_crowd_batches.value += 1
            if not (isinstance(task.call.args, dict) and "crowd" in task.call.args):
                # The record pre-exists without crowd args (a TASK_RESULT for
                # a batch assigned by a now-dead coordinator arrived before
                # this envelope; result payloads carry no call description).
                # Adopt the envelope's routing so the batch can complete.
                source = message.source
                task.call.args = {
                    "crowd": crowd,
                    "shard": shard,
                    "batch": batch,
                    "count": count,
                    "reply_to": [source.kind, source.name],
                }
                if self.index is not None:
                    # Content change without a state transition: refresh the
                    # cached replica entry, without re-dirtying the record.
                    self.index.note(task, key)
            if task.state is TaskState.FINISHED:
                # The crowd is retrying a batch we already finished: the
                # result push was lost (or raced the retry) — push it again.
                self._notify_crowd(key, task)
        self.host.send(
            message.reply(
                MessageType.CROWD_SUBMIT_ACK,
                payload={"batch": batch, "shard": shard, "count": count},
                size_bytes=24,
            )
        )

    def _notify_crowd(self, key: tuple, task: TaskRecord) -> None:
        """Push a finished crowd batch back to the crowd component."""
        args = task.call.args
        if not (isinstance(args, dict) and "crowd" in args):
            return
        reply_to = args.get("reply_to")
        if not reply_to:
            return
        self.host.send(
            Message(
                mtype=MessageType.CROWD_RESULT_BATCH,
                source=self.address,
                dest=Address(str(reply_to[0]), str(reply_to[1])),
                payload={
                    "crowd": args.get("crowd"),
                    "shard": args.get("shard"),
                    "batch": args.get("batch"),
                    "count": args.get("count"),
                },
                size_bytes=32,
            )
        )
        self.monitor.incr("coordinator.crowd_results_pushed")

    def _on_result_pull(self, message: Message):
        user, session = message.payload.get("session", ("", ""))
        pending = message.payload.get("pending")
        wanted = {int(ts) for ts in pending} if pending is not None else None
        ready: list[dict[str, Any]] = []
        total_bytes = 0
        # A pull with an empty pending set can match nothing — skip the table
        # walks entirely (idle clients poll every second, and each walk is
        # O(table) on a deep coordinator).
        if wanted is None or wanted:
            for key, result in self.results.items():
                if key[0] != user or key[1] != session:
                    continue
                if wanted is not None and key[2] not in wanted:
                    continue
                ready.append(result.to_payload())
                total_bytes += result.size_bytes
            # Completions we only know through replication: fetch their
            # archives from the coordinator that produced/holds them, so a
            # later pull can deliver them (archives are never replicated
            # proactively).
            for key, task in self.tasks.items():
                if key[0] != user or key[1] != session:
                    continue
                if wanted is not None and key[2] not in wanted:
                    continue
                if task.state is TaskState.FINISHED and key not in self.results:
                    self._request_archive(key, task)
        yield from self._charge(self.database.charge_scan())
        if total_bytes:
            # Result archives live on the coordinator's file system: shipping
            # them back costs a read proportional to their size.
            yield from self.host.disk_read(total_bytes)
        self.host.send(
            message.reply(
                MessageType.RESULT_REPLY,
                payload={"results": ready},
                size_bytes=total_bytes,
            )
        )

    def _on_client_sync(self, message: Message):
        user, session = message.payload.get("session", ("", ""))
        durable_keys = [int(k) for k in message.payload.get("durable_keys", [])]
        known = [
            key[2]
            for key in self.tasks
            if key[0] == user and key[1] == session
        ]
        finished = [
            key[2]
            for key, task in self.tasks.items()
            if key[0] == user and key[1] == session and task.state is TaskState.FINISHED
        ]
        yield from self._charge(self.database.charge_scan())
        plan = plan_client_sync(durable_keys, known, finished)
        session_key = (user, session)
        max_ts = int(message.payload.get("max_timestamp", 0))
        if max_ts > self.client_timestamps.get(session_key, 0):
            self.client_timestamps[session_key] = max_ts
        self.host.send(
            message.reply(
                MessageType.COORD_SYNC_REPLY,
                payload={
                    "kind": "client",
                    "client_must_resend": plan.client_must_resend,
                    "client_lost": plan.client_lost,
                    "results_available": plan.results_available,
                    "coordinator_max_timestamp": max(
                        plan.coordinator_max_timestamp,
                        self.client_timestamps.get(session_key, 0),
                    ),
                },
                size_bytes=64
                + 8 * (len(plan.client_must_resend) + len(plan.client_lost)),
            )
        )
        self.monitor.incr("coordinator.client_syncs")

    # ------------------------------------------------------------- server requests
    def _on_work_request(self, message: Message):
        server = message.source
        self._hear_server(server)
        yield from self._charge(self.database.charge_scan())
        decision = self.scheduler.pick(
            self.tasks,
            server=server,
            my_name=self.name,
            owner_suspected=self._owner_suspected,
            now=self.env.now,
            index=self.index,
        )
        if decision.task is None:
            self.host.send(message.reply(MessageType.NO_WORK, payload={}, size_bytes=16))
            return
        task = decision.task
        key = identity_to_key(task.identity)
        self._mark_dirty(key)
        self._task_activity[key] = self.env.now
        cost = self.database.charge_write(
            key, {"state": task.state.value}, TASK_DESCRIPTION_BYTES
        )
        yield from self._charge(cost)
        self._ctr_assignments.value += 1
        self.host.send(
            message.reply(
                MessageType.TASK_ASSIGN,
                payload={"call": task.call.to_payload()},
                size_bytes=task.call.wire_bytes,
            )
        )

    def _on_task_result(self, message: Message):
        server = message.source
        self._hear_server(server)
        result = ResultRecord.from_payload(message.payload["result"])
        key = identity_to_key(result.identity)
        task = self.tasks.get(key)
        newly_finished = False
        if task is None:
            # A result for a call we never saw (e.g. assigned by another
            # coordinator before a partition): register it anyway.
            task = TaskRecord(
                call=CallDescription.from_payload(message.payload["call"])
                if "call" in message.payload
                else CallDescription(
                    identity=result.identity,
                    service=message.payload.get("service", "unknown"),
                    params_bytes=0,
                ),
                state=TaskState.FINISHED,
                owner=self.name,
                submitted_at=self.env.now,
            )
            self.tasks[key] = task
            newly_finished = True
        elif task.state is not TaskState.FINISHED:
            newly_finished = True
        task.state = TaskState.FINISHED
        task.finished_at = self.env.now
        task.has_archive = True
        task.archive_holder = self.name
        task.assigned_server = server
        if key not in self.results:
            self.results[key] = result
        self._mark_dirty(key)
        cost = self.database.charge_write(key, {"state": "finished"}, TASK_DESCRIPTION_BYTES)
        yield from self._charge(cost)
        # Storing the archive costs a disk write proportional to its size.
        yield from self.host.disk_write(result.size_bytes)
        if newly_finished:
            self._ctr_results.value += 1
            self._sample_completed()
            self._notify_crowd(key, task)
        else:
            self._ctr_duplicate_results.value += 1
        self.host.send(
            message.reply(
                MessageType.TASK_RESULT_ACK,
                payload={"identity": identity_to_key(result.identity)},
                size_bytes=32,
            )
        )

    def _on_server_sync(self, message: Message):
        server = message.source
        self._hear_server(server)
        server_keys = [tuple(k) for k in message.payload.get("result_keys", [])]
        finished = [k for k, t in self.tasks.items() if t.state is TaskState.FINISHED]
        assigned = [
            k
            for k, t in self.tasks.items()
            if t.state is TaskState.ONGOING and t.assigned_server == server
        ]
        yield from self._charge(self.database.charge_scan())
        plan = plan_server_sync(server_keys, finished, assigned)
        for key in plan.coordinator_must_requeue:
            task = self.tasks.get(tuple(key))
            if task is not None and task.state is TaskState.ONGOING:
                task.state = TaskState.PENDING
                task.assigned_server = None
                self._mark_dirty(tuple(key))
        self.host.send(
            message.reply(
                MessageType.COORD_SYNC_REPLY,
                payload={
                    "kind": "server",
                    "server_must_resend": [list(k) for k in plan.server_must_resend],
                    "already_finished": [list(k) for k in plan.already_finished],
                },
                size_bytes=64 + 16 * len(server_keys),
            )
        )
        self.monitor.incr("coordinator.server_syncs")

    # ----------------------------------------------------------- archives on demand
    def _request_archive(self, key: tuple, task: TaskRecord) -> None:
        last_attempt = self._archive_fetches_in_flight.get(key)
        retry_after = 2 * self.config.detection.heartbeat_period
        if last_attempt is not None and self.env.now - last_attempt < retry_after:
            return
        # Ask the coordinator that received the archive first, then the task's
        # owner, then anybody else; rotate on retries so a wrong or crashed
        # first choice cannot wedge the fetch forever.
        preferred_names = [task.archive_holder, task.owner]
        candidates = [
            c for name in preferred_names for c in self.other_coordinators() if str(c) == name
        ]
        candidates += [c for c in self.other_coordinators() if c not in candidates]
        if not candidates:
            return
        attempts = self._archive_fetch_attempts.get(key, 0)
        self._archive_fetch_attempts[key] = attempts + 1
        target = candidates[attempts % len(candidates)]
        self._archive_fetches_in_flight[key] = self.env.now
        self.host.send(
            Message(
                mtype=MessageType.ARCHIVE_FETCH,
                source=self.address,
                dest=target,
                payload={"identity": list(key)},
                size_bytes=32,
            )
        )
        self.monitor.incr("coordinator.archive_fetches")

    def _on_archive_fetch(self, message: Message):
        key = tuple(message.payload.get("identity", ()))
        result = self.results.get(key)
        if result is None:
            self.host.send(
                message.reply(
                    MessageType.ARCHIVE_REPLY,
                    payload={"identity": list(key), "missing": True},
                    size_bytes=16,
                )
            )
            return
        yield from self.host.disk_read(result.size_bytes)
        self.host.send(
            message.reply(
                MessageType.ARCHIVE_REPLY,
                payload={"identity": list(key), "result": result.to_payload()},
                size_bytes=result.size_bytes,
            )
        )

    def _on_archive_reply(self, message: Message):
        key = tuple(message.payload.get("identity", ()))
        self._archive_fetches_in_flight.pop(key, None)
        if message.payload.get("missing"):
            return
        result = ResultRecord.from_payload(message.payload["result"])
        if key not in self.results:
            self.results[key] = result
            yield from self.host.disk_write(result.size_bytes)
            task = self.tasks.get(key)
            if task is not None:
                task.has_archive = True

    # --------------------------------------------------------------- replication
    # The cadence (when rounds happen) lives in the replication policy
    # (policy.repl.*, installed by start()); this is the mechanism one round
    # runs through.
    def _dirty_keys_in_table_order(self) -> list[tuple]:
        """The dirty keys, ordered as a full table scan would list them.

        Delta abstracts must serialize entries in the same order as full
        ones (the legacy builder filtered a table walk), so downstream
        merge/table insertion order is independent of *when* records got
        dirty.  With the index this is O(d log d) in the dirty-set size;
        without it, the legacy filtered walk.
        """
        if self.index is not None:
            return self.index.table_ordered(self._dirty)
        dirty = self._dirty
        return [key for key in self.tasks if key in dirty]

    def _build_state(self, keys: list[tuple] | None) -> ReplicaState:
        """Build the (delta) state abstract for ``keys`` (None = full)."""
        return build_state(
            origin=self.name,
            tasks=self.tasks,
            client_timestamps=self.client_timestamps,
            known_coordinators=[(c.kind, c.name) for c in self.registry.known()],
            only_keys=keys,
            now=self.env.now,
            entry_for=self.index.replica_entry if self.index is not None else None,
        )

    def replicate_once(self, force_full: bool = False):
        """One replication round: push (dirty) state to the ring successor.

        Generator returning ``True`` when the successor acknowledged.  Also
        doubles as the coordinator-to-coordinator heart-beat.
        """
        successor = self.registry.ring_successor(self.address)
        if successor is None:
            return False
        keys = None if force_full else self._dirty_keys_in_table_order()
        state = self._build_state(keys)
        round_id = self._replication_rounds
        self._replication_rounds += 1
        ack_event = self.env.event()
        self._replica_ack_waiters[round_id] = ack_event
        self.host.send(
            Message(
                mtype=MessageType.REPLICA_STATE,
                source=self.address,
                dest=successor,
                payload={"state": state.to_payload(), "round": round_id},
                size_bytes=state.size_bytes,
            )
        )
        self._ctr_replications.value += 1
        yield from self.env.wait_any(
            [ack_event], timeout=self.config.detection.suspicion_timeout
        )
        self._replica_ack_waiters.pop(round_id, None)
        if ack_event.triggered:
            self.coordinator_detector.heard_from(successor, self.env.now)
            if keys is not None:
                for key in keys:
                    self._dirty.pop(key, None)
            else:
                self._dirty.clear()
            return True
        # No acknowledgement: suspect the successor and recompute the ring.
        self.suspect_coordinator(successor)
        return False

    def suspect_coordinator(self, coordinator: Address) -> None:
        """Suspect a silent peer coordinator and recompute the virtual ring."""
        self.registry.suspect(coordinator)
        self.coordinator_detector.watch(
            coordinator, self.env.now - 2 * self.config.detection.suspicion_timeout
        )
        self.monitor.incr("coordinator.replication_timeouts")

    def replicate_quorum_once(self, targets: list[Address], quorum: int):
        """One quorum round: push (dirty) state to ``targets`` in parallel.

        Generator returning ``(acks, committed)``: the set of successors that
        acknowledged within the suspicion timeout, and whether at least
        ``quorum`` of them did.  The dirty set is only cleared on commit —
        an under-acknowledged epoch is retried wholesale next round, so a
        majority of replicas always carries every committed update.
        """
        if not targets:
            return set(), False
        quorum = max(1, min(int(quorum), len(targets)))
        keys = self._dirty_keys_in_table_order()
        state = self._build_state(keys)
        round_id = self._replication_rounds
        self._replication_rounds += 1
        waiter: dict[str, Any] = {
            "event": self.env.event(),
            "acks": set(),
            "needed": quorum,
        }
        self._quorum_waiters[round_id] = waiter
        payload = {"state": state.to_payload(), "round": round_id}
        for target in targets:
            self.host.send(
                Message(
                    mtype=MessageType.REPLICA_STATE,
                    source=self.address,
                    dest=target,
                    payload=payload,
                    size_bytes=state.size_bytes,
                )
            )
        self._ctr_replications.value += 1
        yield from self.env.wait_any(
            [waiter["event"]], timeout=self.config.detection.suspicion_timeout
        )
        self._quorum_waiters.pop(round_id, None)
        acks = set(waiter["acks"])
        committed = len(acks) >= quorum
        if committed:
            for key in keys:
                self._dirty.pop(key, None)
            self.monitor.incr("coordinator.quorum_commits")
        else:
            self.monitor.incr("coordinator.quorum_aborts")
        return acks, committed

    def pull_replicas(self, targets: list[Address]) -> None:
        """Ask ``targets`` for their full state abstract (crash recovery)."""
        for target in targets:
            self.host.send(
                Message(
                    mtype=MessageType.REPLICA_PULL,
                    source=self.address,
                    dest=target,
                    payload={"requester": self.name},
                    size_bytes=16,
                )
            )
        self.monitor.incr("coordinator.replica_pulls", len(targets))

    def elect_freshest_origin(self) -> str | None:
        """The replica origin with the freshest abstract seen so far."""
        if not self._replica_freshness:
            return None
        return max(self._replica_freshness, key=lambda o: self._replica_freshness[o])

    def _on_replica_pull(self, message: Message):
        """Serve a recovering peer the full current state abstract."""
        state = self._build_state(None)
        yield from self._charge(self.database.charge_scan())
        self.host.send(
            message.reply(
                MessageType.REPLICA_STATE,
                payload={"state": state.to_payload(), "round": -1},
                size_bytes=state.size_bytes,
            )
        )
        self.monitor.incr("coordinator.replica_pulls_served")

    def _on_replica_state(self, message: Message):
        state = ReplicaState.from_payload(message.payload["state"])
        if state.origin != self.name:
            self._replica_freshness[state.origin] = max(
                self._replica_freshness.get(state.origin, float("-inf")),
                state.sent_at,
            )
        outcome = merge_state(
            self.tasks,
            self.client_timestamps,
            state,
            key_of=lambda record: identity_to_key(record.identity),
        )
        if self.index is not None:
            # Route the merged transitions through the index before the
            # database charges below yield control — sibling processes (the
            # watch loop, a replication round) must never see a stale view.
            for identity in outcome.changed:
                key = identity_to_key(identity)
                self.index.note(self.tasks[key], key)
        # The backup pays one database write per new or updated description —
        # this is what dominates Figure 5 for small records.
        for _ in range(outcome.new_tasks + outcome.updated_tasks):
            cost = self.database.charge_write(
                ("replica", self._replication_rounds, _), {}, TASK_DESCRIPTION_BYTES
            )
            yield from self._charge(cost)
        self.registry.merge([Address(kind, name) for kind, name in state.known_coordinators])
        self.coordinator_detector.heard_from(message.source, self.env.now)
        self.registry.rehabilitate(message.source)
        # Everything we learned must keep flowing around the ring, otherwise
        # coordinators two hops away from the origin would never hear of it.
        for key in [identity_to_key(i) for i in outcome.changed]:
            self._mark_dirty(key)
        if outcome.newly_finished:
            self.monitor.incr(
                "coordinator.replicated_completions", len(outcome.newly_finished)
            )
            self._sample_completed()
        self.host.send(
            message.reply(
                MessageType.REPLICA_ACK,
                payload={"round": message.payload.get("round", -1)},
                size_bytes=16,
            )
        )

    def _on_replica_ack(self, message: Message) -> None:
        round_id = int(message.payload.get("round", -1))
        waiter = self._replica_ack_waiters.pop(round_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(True)
        quorum = self._quorum_waiters.get(round_id)
        if quorum is not None:
            quorum["acks"].add(message.source)
            if (
                len(quorum["acks"]) >= quorum["needed"]
                and not quorum["event"].triggered
            ):
                quorum["event"].succeed(True)
        self.coordinator_detector.heard_from(message.source, self.env.now)

    # ----------------------------------------------------------- server suspicion
    def _server_watch_loop(self):
        try:
            while True:
                yield self.host.sleep(self.config.detection.heartbeat_period)
                now = self.env.now
                # "On suspicion" replication: re-queue every ongoing task of a
                # server that has gone silent.
                for server in list(self.known_servers):
                    if self.server_detector.is_suspected(server, now):
                        reset = self.scheduler.reschedule_for_suspected_server(
                            self.tasks, server, self.name, index=self.index
                        )
                        if reset:
                            for record in reset:
                                self._mark_dirty(identity_to_key(record.identity))
                            self.monitor.incr(
                                "coordinator.rescheduled_on_suspicion", len(reset)
                            )
                # Per-task activity timeout: a server that crashed and came
                # back keeps the heart-beat alive but stops reporting the lost
                # task, so suspicion alone would never recover it.
                timeout = self.config.detection.suspicion_timeout
                if self.index is not None:
                    # Only this coordinator's ongoing bucket, not the table.
                    candidates = self.index.ongoing_owned_by(self.name)
                else:
                    candidates = [
                        (key, task)
                        for key, task in self.tasks.items()
                        if task.state is TaskState.ONGOING and task.owner == self.name
                    ]
                for key, task in candidates:
                    last_activity = self._task_activity.get(
                        key, task.started_at if task.started_at is not None else now
                    )
                    if now - last_activity > timeout:
                        task.state = TaskState.PENDING
                        task.assigned_server = None
                        self._mark_dirty(key)
                        self.monitor.incr("coordinator.requeued_on_activity_timeout")
        except ProcessKilled:  # pragma: no cover - host crash
            return

    # ------------------------------------------------------------------ reporting
    def stats(self) -> dict[str, Any]:
        """Snapshot of coordinator counters (experiments / tests)."""
        if self.index is not None:
            states = self.index.state_counts()
        else:
            states = {state: 0 for state in TaskState}
            for task in self.tasks.values():
                states[task.state] += 1
        return {
            "tasks": len(self.tasks),
            "pending": states[TaskState.PENDING],
            "ongoing": states[TaskState.ONGOING],
            "finished": states[TaskState.FINISHED],
            "results_held": len(self.results),
            "known_servers": len(self.known_servers),
            "db_writes": self.database.writes,
            "db_time": self.database.time_charged,
            "dirty": len(self._dirty),
            "scheduler_policy": self.scheduler.key,
            "scheduler_assignments": self.scheduler.assignments,
            "scheduler_dedup_holds": self.scheduler.dedup_holds,
            "replication_policy": self.replication_policy.key,
            "detection_policy": getattr(self.server_detector.policy, "key", None),
            "wrong_suspicions": (
                self.server_detector.wrong_suspicions
                + self.coordinator_detector.wrong_suspicions
            ),
        }
