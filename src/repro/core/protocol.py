"""Wire-level records of the RPC-V protocol.

These dataclasses are the payloads carried inside
:class:`~repro.net.message.Message` envelopes and stored in coordinator
databases, client logs and server logs.  They are deliberately plain and
dictionary-convertible: components exchange *descriptions* (a job is "very
close to a remote execution call": command line plus an optional archive), not
live objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any

from repro.types import Address, CallIdentity, RPCId, SessionId, TaskState, UserId

__all__ = [
    "TASK_DESCRIPTION_BYTES",
    "CallDescription",
    "TaskRecord",
    "ResultRecord",
    "identity_to_key",
    "key_to_identity",
]

#: Size of one job/task *description* (identifiers, command line, states) on
#: the wire and in the database — the ~300-byte records of Figure 5.
TASK_DESCRIPTION_BYTES = 300


@dataclass
class CallDescription:
    """What the client submits: one RPC call."""

    identity: CallIdentity
    service: str
    #: size of the marshalled parameters / input archive, in bytes.
    params_bytes: int
    #: expected size of the result archive, in bytes (workload model).
    result_bytes: int = 128
    #: simulated execution time of the service, in seconds (None when a real
    #: callable is attached through the service registry).
    exec_time: float | None = None
    #: opaque application arguments (used by the live runtime and examples).
    args: Any = None

    def to_payload(self) -> dict[str, Any]:
        """Dictionary form carried inside protocol messages."""
        return {
            "identity": identity_to_key(self.identity),
            "service": self.service,
            "params_bytes": self.params_bytes,
            "result_bytes": self.result_bytes,
            "exec_time": self.exec_time,
            "args": self.args,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CallDescription":
        """Rebuild a description from its dictionary form."""
        return cls(
            identity=key_to_identity(payload["identity"]),
            service=payload["service"],
            params_bytes=int(payload["params_bytes"]),
            result_bytes=int(payload.get("result_bytes", 128)),
            exec_time=payload.get("exec_time"),
            args=payload.get("args"),
        )

    @property
    def wire_bytes(self) -> int:
        """Bytes this submission puts on the wire (description + parameters)."""
        return TASK_DESCRIPTION_BYTES + self.params_bytes


@dataclass
class TaskRecord:
    """Coordinator-side record of one task (one instance of a call)."""

    call: CallDescription
    state: TaskState = TaskState.PENDING
    #: coordinator that created / currently owns this task.
    owner: str = ""
    assigned_server: Address | None = None
    attempts: int = 0
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: whether this coordinator holds the result archive locally.
    has_archive: bool = False
    #: name of the coordinator that received the result archive (archives are
    #: never replicated, so other coordinators fetch it from there on demand).
    archive_holder: str = ""

    @property
    def identity(self) -> CallIdentity:
        """Identity of the underlying call."""
        return self.call.identity

    def description_bytes(self) -> int:
        """Bytes of the task description replicated / stored in the database."""
        return TASK_DESCRIPTION_BYTES

    def to_replica_entry(self) -> dict[str, Any]:
        """Dictionary form shipped inside REPLICA_STATE messages."""
        return {
            "call": self.call.to_payload(),
            "state": self.state.value,
            "owner": self.owner,
            "assigned_server": (
                (self.assigned_server.kind, self.assigned_server.name)
                if self.assigned_server
                else None
            ),
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "archive_holder": self.archive_holder,
        }

    @classmethod
    def from_replica_entry(cls, entry: dict[str, Any]) -> "TaskRecord":
        """Rebuild a task record from a replica-state entry."""
        server = entry.get("assigned_server")
        return cls(
            call=CallDescription.from_payload(entry["call"]),
            state=TaskState(entry["state"]),
            owner=entry.get("owner", ""),
            assigned_server=Address(*server) if server else None,
            attempts=int(entry.get("attempts", 0)),
            submitted_at=float(entry.get("submitted_at", 0.0)),
            finished_at=entry.get("finished_at"),
            archive_holder=entry.get("archive_holder", ""),
        )


@dataclass
class ResultRecord:
    """The result archive of one finished task."""

    identity: CallIdentity
    size_bytes: int
    produced_by: Address | None = None
    produced_at: float = 0.0
    #: opaque result value (live runtime / examples); simulations carry None.
    value: Any = None
    meta: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        """Dictionary form carried in RESULT_REPLY / TASK_RESULT messages."""
        data = asdict(self)
        data["identity"] = identity_to_key(self.identity)
        data["produced_by"] = (
            (self.produced_by.kind, self.produced_by.name) if self.produced_by else None
        )
        return data

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ResultRecord":
        """Rebuild a result record from its dictionary form."""
        produced_by = payload.get("produced_by")
        return cls(
            identity=key_to_identity(payload["identity"]),
            size_bytes=int(payload["size_bytes"]),
            produced_by=Address(*produced_by) if produced_by else None,
            produced_at=float(payload.get("produced_at", 0.0)),
            value=payload.get("value"),
            meta=dict(payload.get("meta", {})),
        )


# -- identity (de)serialisation -------------------------------------------------


def identity_to_key(identity: CallIdentity) -> tuple[str, str, int]:
    """Hashable, JSON-friendly form of a call identity."""
    return (identity.user.value, identity.session.value, identity.rpc.value)


def key_to_identity(key: tuple[str, str, int]) -> CallIdentity:
    """Inverse of :func:`identity_to_key`."""
    user, session, rpc = key
    return CallIdentity(user=UserId(user), session=SessionId(session), rpc=RPCId(int(rpc)))
