"""Incrementally maintained indexes over a coordinator's task table.

The coordinator keeps every task it has ever heard of in one persistent
``dict`` — the paper's database of job descriptions.  Until PR 10, every
consumer of that table rescanned it: each server work request sorted the
whole table to find the FCFS head, each monitor sample counted finished
tasks one by one, and suspecting a single server walked every record to
find its handful of ongoing tasks.  At paper-scale backlogs that turns the
busiest part of the protocol into quadratic aggregate work.

:class:`TaskIndex` is the **single choke point for task state
transitions**.  Every coordinator path that mutates a record (submission,
assignment, result commit, replica merge, crowd batch expansion,
reschedule) calls :meth:`TaskIndex.note` afterwards; the index diffs the
record against what it last saw and updates:

* a FCFS-ordered **pending heap** (lazy deletion: entries are skimmed when
  their key is no longer pending) so the FIFO scheduling head is O(log n);
* a second (exec_time, fcfs) heap, built lazily the first time the
  fastest-first policy asks, so SJF scheduling is O(log n) too;
* **per-state counters** so ``finished_count()`` and ``stats()`` are O(1);
* **per-server ongoing buckets** so rescheduling a suspected server
  touches only that server's tasks;
* **per-owner ongoing buckets** so the replica de-duplication rule
  ("ongoing tasks are only eligible when their owner is suspected") is
  answered per distinct owner instead of per task;
* a **replica-entry cache** so an unchanged record is serialized into a
  state abstract once, not once per replication round, with its wire-byte
  contribution precomputed.

The eligible order produced through the index is bit-identical to the
legacy sorted scan: FCFS keys are unique per task (submission time plus
call identity), so any stable source of the same candidate set sorts to
the same sequence.  The random and round-robin policies still materialize
the full eligible list (they index into it by position), which keeps their
per-pick cost at O(p log p) over the pending set — the win there is only
that finished and held-ongoing records stay out of the scan entirely.

The index is volatile: a restarted coordinator rebuilds it from the
persistent table in ``start()``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.protocol import TASK_DESCRIPTION_BYTES, TaskRecord, identity_to_key
from repro.policies.scheduling import _sjf_key, fcfs_key
from repro.types import TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.types import Address

__all__ = ["TaskIndex"]

_FINISHED_VALUE = TaskState.FINISHED.value


class TaskIndex:
    """Derived views of one coordinator's task table, updated per transition."""

    def __init__(self, tasks: dict[tuple, TaskRecord]) -> None:
        #: the coordinator's persistent table (shared reference, never copied).
        self.tasks = tasks
        self.rebuild()

    # ------------------------------------------------------------- lifecycle
    def rebuild(self) -> None:
        """Re-derive everything from the table (restart / first start)."""
        #: key -> (state, owner, assigned_server) as of the last note().
        self._meta: dict[tuple, tuple] = {}
        #: key -> table-insertion sequence number; replication rounds order
        #: their dirty keys by it so delta abstracts list entries exactly as
        #: a full table scan would (table keys are never deleted).
        self._seq: dict[tuple, int] = {}
        self._next_seq = 0
        self._counts: dict[TaskState, int] = {state: 0 for state in TaskState}
        #: live pending records (insertion-ordered; the heaps may hold stale
        #: duplicates, membership here is what makes a heap entry valid).
        self._pending: dict[tuple, TaskRecord] = {}
        self._pending_heap: list[tuple[tuple, tuple]] = []
        #: (exec_time, fcfs) heap for fastest-first; None until first used.
        self._fast_heap: list[tuple[tuple, tuple]] | None = None
        self._ongoing_by_owner: dict[str, dict[tuple, TaskRecord]] = {}
        self._ongoing_by_server: dict[Any, dict[tuple, TaskRecord]] = {}
        #: key -> (replica entry dict, wire bytes); dropped on every note.
        self._entry_cache: dict[tuple, tuple[dict, int]] = {}
        for key, record in self.tasks.items():
            self.note(record, key)

    # ------------------------------------------------------------ choke point
    def note(self, record: TaskRecord, key: tuple | None = None) -> tuple:
        """Record that ``record`` was added or mutated; update every view.

        This is the state-transition choke point: any code that changes a
        task record's state, owner, assignment, or replicated content must
        call it (component authors: mutate, then ``note``).  Returns the
        table key.
        """
        if key is None:
            key = identity_to_key(record.identity)
        # Any mutation can change the serialized form (finished_at, attempts,
        # adopted crowd args), so the cached replica entry always drops.
        self._entry_cache.pop(key, None)
        new_meta = (record.state, record.owner, record.assigned_server)
        prev = self._meta.get(key)
        if prev == new_meta:
            return key
        if prev is None:
            self._seq[key] = self._next_seq
            self._next_seq += 1
        else:
            self._counts[prev[0]] -= 1
            self._detach(key, prev)
        self._meta[key] = new_meta
        self._counts[new_meta[0]] += 1
        self._attach(key, record, new_meta)
        return key

    def _detach(self, key: tuple, meta: tuple) -> None:
        state, owner, server = meta
        if state is TaskState.PENDING:
            self._pending.pop(key, None)
            # Heap entries are skimmed lazily once the key is gone.
            return
        if state is TaskState.ONGOING:
            bucket = self._ongoing_by_owner.get(owner)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._ongoing_by_owner[owner]
            if server is not None:
                bucket = self._ongoing_by_server.get(server)
                if bucket is not None:
                    bucket.pop(key, None)
                    if not bucket:
                        del self._ongoing_by_server[server]

    def _attach(self, key: tuple, record: TaskRecord, meta: tuple) -> None:
        state, owner, server = meta
        if state is TaskState.PENDING:
            self._pending[key] = record
            heapq.heappush(self._pending_heap, (fcfs_key(record), key))
            if self._fast_heap is not None:
                heapq.heappush(self._fast_heap, (_sjf_key(record), key))
            return
        if state is TaskState.ONGOING:
            self._ongoing_by_owner.setdefault(owner, {})[key] = record
            if server is not None:
                self._ongoing_by_server.setdefault(server, {})[key] = record

    # -------------------------------------------------------------- counters
    @property
    def finished(self) -> int:
        """Tasks known finished — O(1), replaces the full-table count."""
        return self._counts[TaskState.FINISHED]

    @property
    def pending(self) -> int:
        return self._counts[TaskState.PENDING]

    @property
    def ongoing(self) -> int:
        return self._counts[TaskState.ONGOING]

    def state_counts(self) -> dict[TaskState, int]:
        """Per-state record counts (a copy; O(1) in the table size)."""
        return dict(self._counts)

    # ------------------------------------------------------------ scheduling
    def eligible_extras(
        self, my_name: str, owner_suspected: Callable[[str], bool]
    ) -> tuple[list[TaskRecord], int]:
        """Ongoing tasks of suspected other owners, plus the held count.

        The de-duplication rule withholds every other ongoing task; the
        legacy scan counted one hold per withheld record, so the held count
        here is total-ongoing minus the released extras.  ``owner_suspected``
        is consulted once per distinct owner with live ongoing tasks —
        exactly the owners the legacy scan would have asked about (the
        detector latches suspicion state, so asking once is equivalent to
        asking once per task).
        """
        extras: list[TaskRecord] = []
        for owner, bucket in self._ongoing_by_owner.items():
            if owner == my_name or not bucket:
                continue
            if owner_suspected(owner):
                extras.extend(bucket.values())
        return extras, self._counts[TaskState.ONGOING] - len(extras)

    def pending_head(self) -> TaskRecord | None:
        """The FCFS-first pending record, O(log n) amortized."""
        heap = self._pending_heap
        pending = self._pending
        while heap and heap[0][1] not in pending:
            heapq.heappop(heap)
        return pending[heap[0][1]] if heap else None

    def fastest_head(self) -> TaskRecord | None:
        """The SJF-first pending record (exec_time, then FCFS)."""
        heap = self._fast_heap
        if heap is None:
            heap = self._fast_heap = [
                (_sjf_key(record), key) for key, record in self._pending.items()
            ]
            heapq.heapify(heap)
        pending = self._pending
        while heap and heap[0][1] not in pending:
            heapq.heappop(heap)
        return pending[heap[0][1]] if heap else None

    def eligible_list(self, extras: list[TaskRecord]) -> list[TaskRecord]:
        """The full FCFS-sorted eligible list (pending plus ``extras``).

        FCFS keys are unique, so this equals the legacy sorted table scan
        bit for bit.  Positional policies (random, round-robin) need the
        materialized list; FIFO and fastest-first use the heap heads.
        """
        eligible = list(self._pending.values())
        if extras:
            eligible.extend(extras)
        eligible.sort(key=fcfs_key)
        return eligible

    def ongoing_on_server(self, server: "Address") -> list[tuple[tuple, TaskRecord]]:
        """Snapshot of (key, record) ongoing on ``server`` (any owner)."""
        bucket = self._ongoing_by_server.get(server)
        return list(bucket.items()) if bucket else []

    def ongoing_owned_by(self, owner: str) -> list[tuple[tuple, TaskRecord]]:
        """Snapshot of (key, record) ongoing and owned by ``owner``."""
        bucket = self._ongoing_by_owner.get(owner)
        return list(bucket.items()) if bucket else []

    # ----------------------------------------------------------- replication
    def table_ordered(self, keys: Iterable[tuple]) -> list[tuple]:
        """``keys`` sorted by table insertion order.

        A delta replication round ships only the dirty keys, but lists them
        in the order a full table scan would have produced, so incremental
        and full abstracts stay byte-compatible with the legacy builder.
        O(d log d) in the dirty-set size, independent of the table.
        """
        seq = self._seq
        return sorted(keys, key=seq.__getitem__)

    def replica_entry(self, key: tuple, record: TaskRecord) -> tuple[dict, int]:
        """The serialized replica entry for ``record`` and its wire bytes.

        Cached until the next :meth:`note` for the key, so steady-state
        replication rounds serialize each record once per transition rather
        than once per round.  The entry dict is treated as immutable by
        every consumer (``ReplicaState.from_payload`` copies before
        merging), so sharing it across rounds and payloads is safe.
        """
        cached = self._entry_cache.get(key)
        if cached is None:
            entry = record.to_replica_entry()
            nbytes = TASK_DESCRIPTION_BYTES
            if entry["state"] != _FINISHED_VALUE:
                nbytes += int(entry["call"]["params_bytes"])
            cached = self._entry_cache[key] = (entry, nbytes)
        return cached
