"""Coordinator-side scheduling — compatibility facade.

The scheduling implementations moved to :mod:`repro.policies.scheduling`
(the ``policy.sched.*`` component family); this module keeps the historical
import surface alive:

* :class:`SchedulingDecision` re-exports unchanged;
* :class:`FcfsScheduler` is the paper's first-come first-served policy
  (:class:`~repro.policies.scheduling.FifoReschedulePolicy`) behind its
  original :class:`~repro.config.SchedulerConfig`-driven constructor.
"""

from __future__ import annotations

from repro.config import SchedulerConfig
from repro.policies.scheduling import FifoReschedulePolicy, SchedulingDecision

__all__ = ["FcfsScheduler", "SchedulingDecision"]


class FcfsScheduler(FifoReschedulePolicy):
    """First-come first-served scheduler with the replica de-duplication policy.

    The historical config-driven constructor: ``reschedule`` comes from
    ``config.reschedule_on_suspicion`` and the config is validated (an
    unknown ``policy`` string raises, as it always has).
    """

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()
        self.config.validate()
        super().__init__(reschedule=self.config.reschedule_on_suspicion)
