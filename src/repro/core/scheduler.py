"""Coordinator-side scheduling.

The paper's coordinator uses "a basic first-come first-serve scheduling
policy" together with a simple replica-coordination scheme that prevents most
duplicate executions when several server partitions talk to different
coordinators:

* **finished** tasks are never scheduled by a coordinator replica;
* **ongoing** tasks are not scheduled until the replica suspects the
  disconnection of its predecessor (the coordinator that assigned them);
* **pending** tasks are scheduled.

Scheduling is pull-based (servers request work), so "scheduling" here means
answering one server's work request with the most appropriate pending task.
Duplicated executions remain possible under asynchrony; the protocol's
at-least-once semantics makes that safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.config import SchedulerConfig
from repro.core.protocol import TaskRecord
from repro.errors import SchedulingError
from repro.types import Address, TaskState

__all__ = ["FcfsScheduler", "SchedulingDecision"]


@dataclass
class SchedulingDecision:
    """Outcome of one work request."""

    task: TaskRecord | None
    reason: str = ""


@dataclass
class FcfsScheduler:
    """First-come first-served scheduler with the replica de-duplication policy."""

    config: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: how many assignments this scheduler has made (reporting).
    assignments: int = 0
    #: how many times the de-duplication policy withheld an ongoing task.
    dedup_holds: int = 0

    def __post_init__(self) -> None:
        self.config.validate()

    def eligible_tasks(
        self,
        tasks: dict[object, TaskRecord],
        my_name: str,
        owner_suspected: Callable[[str], bool],
    ) -> list[TaskRecord]:
        """Tasks this coordinator may hand out right now, FCFS-ordered."""
        eligible: list[TaskRecord] = []
        for record in tasks.values():
            if record.state is TaskState.FINISHED:
                continue
            if record.state is TaskState.PENDING:
                eligible.append(record)
                continue
            # ONGOING: only reschedulable when the coordinator that assigned
            # it (a different one) is suspected, or when it was assigned by us
            # to a server we have since declared suspect (that transition is
            # done by the coordinator's monitor loop, which resets the task to
            # PENDING, so it is not handled here).
            if record.owner != my_name and owner_suspected(record.owner):
                eligible.append(record)
            else:
                self.dedup_holds += 1
        eligible.sort(key=self._fcfs_key)
        return eligible

    def pick(
        self,
        tasks: dict[object, TaskRecord],
        server: Address,
        my_name: str,
        owner_suspected: Callable[[str], bool],
        now: float,
    ) -> SchedulingDecision:
        """Answer one work request from ``server``."""
        if self.config.policy != "fcfs":  # pragma: no cover - guarded by validate()
            raise SchedulingError(f"unsupported policy {self.config.policy!r}")
        eligible = self.eligible_tasks(tasks, my_name, owner_suspected)
        if not eligible:
            return SchedulingDecision(task=None, reason="no eligible task")
        task = eligible[0]
        task.state = TaskState.ONGOING
        task.owner = my_name
        task.assigned_server = server
        task.attempts += 1
        task.started_at = now
        self.assignments += 1
        return SchedulingDecision(task=task, reason="fcfs")

    @staticmethod
    def _fcfs_key(record: TaskRecord) -> tuple:
        return (
            record.submitted_at,
            record.call.identity.user.value,
            record.call.identity.session.value,
            record.call.identity.rpc.value,
        )

    def reschedule_for_suspected_server(
        self, tasks: dict[object, TaskRecord], server: Address, my_name: str
    ) -> list[TaskRecord]:
        """"On suspicion" replication: re-queue every ongoing task of ``server``.

        Returns the tasks that were reset to PENDING.
        """
        if not self.config.reschedule_on_suspicion:
            return []
        reset: list[TaskRecord] = []
        for record in tasks.values():
            if (
                record.state is TaskState.ONGOING
                and record.assigned_server == server
                and record.owner == my_name
            ):
                record.state = TaskState.PENDING
                record.assigned_server = None
                reset.append(record)
        return reset
