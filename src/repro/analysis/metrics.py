"""Metrics over completed-task curves and run reports.

These helpers turn the raw time series collected by the monitor into the
quantities the paper discusses: infrastructure overhead over the ideal time,
the replica's lag behind the primary (the plateaux of Figure 9), and compact
series summaries used by the tests and EXPERIMENTS.md.  They also load the
JSON artifacts written by the scenario results store back into row/column
form for paper-vs-measured comparison.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.sim.monitor import TimeSeries

__all__ = [
    "makespan_overhead",
    "completion_curve_lag",
    "plateaux_count",
    "summarize_series",
    "load_run",
    "rows_to_columns",
    "paper_vs_measured",
]


def makespan_overhead(makespan: float, ideal: float) -> float:
    """Relative overhead of a run over the ideal execution time."""
    if ideal <= 0:
        raise ValueError("ideal time must be positive")
    return (makespan - ideal) / ideal


def completion_curve_lag(
    primary: Sequence[float], replica: Sequence[float]
) -> dict[str, float]:
    """How far a replica's completion curve trails the primary's.

    Both sequences must be sampled on the same time grid (use
    :meth:`TimeSeries.resample`).  Returns the mean and max lag in tasks.
    """
    a = np.asarray(primary, dtype=float)
    b = np.asarray(replica, dtype=float)
    if a.shape != b.shape:
        raise ValueError("curves must share the same sampling grid")
    lag = a - b
    return {
        "mean_lag_tasks": float(lag.mean()) if lag.size else 0.0,
        "max_lag_tasks": float(lag.max()) if lag.size else 0.0,
        "final_gap_tasks": float(lag[-1]) if lag.size else 0.0,
    }


def plateaux_count(values: Sequence[float], min_length: int = 2) -> int:
    """Number of flat stretches (>= ``min_length`` samples) in a curve.

    The replica curve of Figure 9 shows plateaux between replication rounds;
    this is the statistic the tests assert on.
    """
    values = list(values)
    if not values:
        return 0
    count = 0
    run_length = 1
    for previous, current in zip(values, values[1:]):
        if current == previous:
            run_length += 1
        else:
            if run_length >= min_length:
                count += 1
            run_length = 1
    if run_length >= min_length:
        count += 1
    return count


def summarize_series(series: TimeSeries) -> dict[str, float]:
    """Compact summary (first/last/extent) of one monitor time series."""
    times, values = series.as_arrays()
    if len(times) == 0:
        return {"samples": 0, "first_time": 0.0, "last_time": 0.0, "final_value": 0.0}
    return {
        "samples": float(len(times)),
        "first_time": float(times[0]),
        "last_time": float(times[-1]),
        "final_value": float(values[-1]),
        "max_value": float(values.max()),
    }


# ---------------------------------------------------------------------------
# Results-store round trips
# ---------------------------------------------------------------------------


def load_run(path: str | Path):
    """Load one scenario results artifact (see :mod:`repro.scenarios.store`).

    Imported lazily so the analysis helpers stay importable on their own.
    """
    import json

    from repro.scenarios.store import RunResult

    return RunResult.from_json(json.loads(Path(path).read_text()))


def rows_to_columns(rows: Sequence[Mapping[str, Any]]) -> dict[str, np.ndarray]:
    """Transpose result rows into named numpy columns (plotting-friendly).

    Non-numeric values become object arrays; missing keys become NaN.
    """
    if not rows:
        return {}
    keys: list[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    columns: dict[str, np.ndarray] = {}
    for key in keys:
        values = [row.get(key, float("nan")) for row in rows]
        try:
            columns[key] = np.asarray(values, dtype=float)
        except (TypeError, ValueError):
            columns[key] = np.asarray(values, dtype=object)
    return columns


def paper_vs_measured(
    rows: Sequence[Mapping[str, Any]],
    paper_points: Mapping[Any, float],
    x_key: str,
    y_key: str,
) -> list[dict[str, Any]]:
    """Join measured rows against the paper's digitised points.

    ``paper_points`` maps x values to the paper's y values; every x present
    in both sides yields a row with the measured value, the paper value and
    the relative error (measured/paper - 1).
    """
    measured = {
        row[x_key]: row[y_key] for row in rows if x_key in row and y_key in row
    }
    comparison: list[dict[str, Any]] = []
    for x, paper_value in paper_points.items():
        if x not in measured:
            continue
        value = measured[x]
        comparison.append(
            {
                x_key: x,
                f"paper_{y_key}": paper_value,
                f"measured_{y_key}": value,
                "relative_error": (
                    value / paper_value - 1.0 if paper_value else float("nan")
                ),
            }
        )
    return comparison
