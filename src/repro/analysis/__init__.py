"""Analysis helpers: curve statistics and run reports."""

from repro.analysis.metrics import (
    completion_curve_lag,
    makespan_overhead,
    plateaux_count,
    summarize_series,
)

__all__ = [
    "completion_curve_lag",
    "makespan_overhead",
    "plateaux_count",
    "summarize_series",
]
