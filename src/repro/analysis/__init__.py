"""Analysis helpers: curve statistics, run reports, results-store round trips."""

from repro.analysis.metrics import (
    completion_curve_lag,
    load_run,
    makespan_overhead,
    paper_vs_measured,
    plateaux_count,
    rows_to_columns,
    summarize_series,
)

__all__ = [
    "completion_curve_lag",
    "load_run",
    "makespan_overhead",
    "paper_vs_measured",
    "plateaux_count",
    "rows_to_columns",
    "summarize_series",
]
