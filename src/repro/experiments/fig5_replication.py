"""EXP-F5 — Figure 5: coordinator replication time.

Measures the time one coordinator needs to propagate its state abstract to
its ring successor and receive the acknowledgement, on the confined cluster
(solid curves) and across the Internet testbed (dashed curves):

* left panel  — 16 RPCs, data size swept from ~100 B to 100 MB;
* right panel — small (~300 B) task descriptions, count swept from 1 to 1000.

Expected shape: flat, database-dominated times for small payloads (the backup
pays one row write per description), linear growth once the data size exceeds
~1 MB; linear growth with the number of descriptions; the Internet's reduced
bandwidth separates the curves at large sizes while its faster database
machines make the many-small-records case cheaper than the cluster's.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.config import ProtocolConfig
from repro.core.protocol import CallDescription, TaskRecord
from repro.core.protocol import identity_to_key
from repro.grid.builder import Grid, build_confined_cluster, build_internet_testbed
from repro.types import CallIdentity, RPCId, SessionId, TaskState, UserId
from repro.workloads.sweep import geometric_counts, geometric_sizes

__all__ = ["run_fig5_vs_size", "run_fig5_vs_count", "measure_replication_time"]

_SEQ = itertools.count(1)


def _build(environment: str, seed: int = 0) -> Grid:
    protocol = ProtocolConfig()
    protocol.coordinator.replication.enabled = False  # measured manually
    # Keep unrelated traffic (work requests) out of the measurement, and do
    # not let the ack wait be cut short by the suspicion timeout: bulk
    # replications over the Internet legitimately take minutes (Fig. 5).
    protocol.coordinator.request_processing_overhead = 0.01
    protocol.coordinator.detection.suspicion_timeout = 50_000.0
    protocol.server.work_poll_period = 10_000.0
    if environment == "confined":
        grid = build_confined_cluster(
            n_servers=1, n_coordinators=2, protocol=protocol, seed=seed
        )
    elif environment == "internet":
        grid = build_internet_testbed(
            servers_per_site={"lille": 1},
            coordinator_sites=("lille", "orsay"),
            protocol=protocol,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown environment {environment!r}")
    grid.start()
    return grid


def _inject_tasks(grid: Grid, n_tasks: int, params_bytes: int) -> None:
    """Register ``n_tasks`` pending tasks directly on the first coordinator."""
    coordinator = grid.coordinators[0]
    for index in range(n_tasks):
        identity = CallIdentity(
            user=UserId("bench"),
            session=SessionId(f"fig5-{next(_SEQ)}"),
            rpc=RPCId(index + 1),
        )
        call = CallDescription(
            identity=identity,
            service="sleep",
            params_bytes=params_bytes,
            result_bytes=64,
            exec_time=1.0,
        )
        key = identity_to_key(identity)
        record = TaskRecord(
            call=call, state=TaskState.PENDING, owner=coordinator.name,
            submitted_at=grid.env.now,
        )
        coordinator.tasks[key] = record
        coordinator._dirty.add(key)
        coordinator.database.charge_write(key, {"state": "pending"}, params_bytes)


def measure_replication_time(
    environment: str, n_tasks: int, params_bytes: int, seed: int = 0
) -> float:
    """Time for one full replication round (state push + backup ack)."""
    grid = _build(environment, seed=seed)
    _inject_tasks(grid, n_tasks, params_bytes)
    coordinator = grid.coordinators[0]
    host = grid.host_of(coordinator)
    timings: dict[str, float] = {}

    def driver():
        timings["start"] = grid.env.now
        ok = yield from coordinator.replicate_once(force_full=True)
        timings["ok"] = float(bool(ok))
        timings["end"] = grid.env.now

    process = host.spawn(driver(), name="fig5-driver")
    grid.run_until(process, timeout=10_000.0)
    if not timings.get("ok"):
        return float("nan")
    return timings["end"] - timings["start"]


def run_fig5_vs_size(
    sizes: list[int] | None = None,
    n_tasks: int = 16,
    environments: tuple[str, ...] = ("confined", "internet"),
    seed: int = 0,
) -> list[dict[str, Any]]:
    """Left panel of Figure 5: replication time vs RPC data size."""
    sizes = sizes or geometric_sizes()
    rows: list[dict[str, Any]] = []
    for size in sizes:
        row: dict[str, Any] = {"params_bytes": size, "n_tasks": n_tasks}
        for environment in environments:
            row[environment] = measure_replication_time(
                environment, n_tasks=n_tasks, params_bytes=size, seed=seed
            )
        rows.append(row)
    return rows


def run_fig5_vs_count(
    counts: list[int] | None = None,
    params_bytes: int = 300,
    environments: tuple[str, ...] = ("confined", "internet"),
    seed: int = 0,
) -> list[dict[str, Any]]:
    """Right panel of Figure 5: replication time vs number of task descriptions."""
    counts = counts or geometric_counts()
    rows: list[dict[str, Any]] = []
    for count in counts:
        row: dict[str, Any] = {"n_tasks": count, "params_bytes": params_bytes}
        for environment in environments:
            row[environment] = measure_replication_time(
                environment, n_tasks=count, params_bytes=params_bytes, seed=seed
            )
        rows.append(row)
    return rows
