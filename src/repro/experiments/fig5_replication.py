"""EXP-F5 — Figure 5: coordinator replication time.

Measures the time one coordinator needs to propagate its state abstract to
its ring successor and receive the acknowledgement, on the confined cluster
(solid curves) and across the Internet testbed (dashed curves):

* left panel  — 16 RPCs, data size swept from ~100 B to 100 MB;
* right panel — small (~300 B) task descriptions, count swept from 1 to 1000.

Expected shape: flat, database-dominated times for small payloads (the backup
pays one row write per description), linear growth once the data size exceeds
~1 MB; linear growth with the number of descriptions; the Internet's reduced
bandwidth separates the curves at large sizes while its faster database
machines make the many-small-records case cheaper than the cluster's.

Both panels are registered as scenarios (``fig5-size``, ``fig5-count``); the
``run_*`` functions are thin wrappers kept for the benchmarks and
EXPERIMENTS.md flows.
"""

from __future__ import annotations

from typing import Any

from repro.config import ProtocolConfig
from repro.core.protocol import CallDescription
from repro.grid.builder import Grid, build_confined_cluster, build_internet_testbed
from repro.scenarios.reducers import grouped
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec
from repro.types import CallIdentity, RPCId, SessionId, UserId
from repro.workloads.sweep import geometric_counts, geometric_sizes

__all__ = ["run_fig5_vs_size", "run_fig5_vs_count", "measure_replication_time"]

_ENVIRONMENTS = ("confined", "internet")


def _build(environment: str, seed: int = 0) -> Grid:
    protocol = ProtocolConfig()
    protocol.coordinator.replication.enabled = False  # measured manually
    # Keep unrelated traffic (work requests) out of the measurement, and do
    # not let the ack wait be cut short by the suspicion timeout: bulk
    # replications over the Internet legitimately take minutes (Fig. 5).
    protocol.coordinator.request_processing_overhead = 0.01
    protocol.coordinator.detection.suspicion_timeout = 50_000.0
    protocol.server.work_poll_period = 10_000.0
    if environment == "confined":
        grid = build_confined_cluster(
            n_servers=1, n_coordinators=2, protocol=protocol, seed=seed
        )
    elif environment == "internet":
        grid = build_internet_testbed(
            servers_per_site={"lille": 1},
            coordinator_sites=("lille", "orsay"),
            protocol=protocol,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown environment {environment!r}")
    grid.start()
    return grid


def _inject_tasks(grid: Grid, n_tasks: int, params_bytes: int) -> None:
    """Register ``n_tasks`` pending tasks directly on the first coordinator.

    Identities are numbered per run (one synthetic session, RPC ids 1..N), so
    a measurement does not depend on how many runs happened earlier in the
    process.
    """
    calls = [
        CallDescription(
            identity=CallIdentity(
                user=UserId("bench"),
                session=SessionId("fig5"),
                rpc=RPCId(index + 1),
            ),
            service="sleep",
            params_bytes=params_bytes,
            result_bytes=64,
            exec_time=1.0,
        )
        for index in range(n_tasks)
    ]
    grid.coordinators[0].preload_tasks(calls)


def measure_replication_time(
    environment: str, n_tasks: int, params_bytes: int, seed: int = 0
) -> float:
    """Time for one full replication round (state push + backup ack)."""
    grid = _build(environment, seed=seed)
    _inject_tasks(grid, n_tasks, params_bytes)
    coordinator = grid.coordinators[0]
    host = grid.host_of(coordinator)
    timings: dict[str, float] = {}

    def driver():
        timings["start"] = grid.env.now
        ok = yield from coordinator.replicate_once(force_full=True)
        timings["ok"] = float(bool(ok))
        timings["end"] = grid.env.now

    process = host.spawn(driver(), name="fig5-driver")
    grid.run_until(process, timeout=10_000.0)
    if not timings.get("ok"):
        return float("nan")
    return timings["end"] - timings["start"]


def replication_cell(
    environment: str, n_tasks: int, params_bytes: int, seed: int = 0
) -> dict[str, Any]:
    """Scenario cell: one replication-round measurement."""
    seconds = measure_replication_time(
        environment, n_tasks=n_tasks, params_bytes=params_bytes, seed=seed
    )
    return {"replication_seconds": seconds}


def _pivot_environments(group_key: str, fixed_key: str):
    """Rows keyed by ``group_key`` with one column per environment."""

    def reduce(results: list[CellResult]) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for (value,), cells in grouped(results, (group_key,)).items():
            row: dict[str, Any] = {
                group_key: value,
                fixed_key: cells[0].params[fixed_key],
            }
            for cell in cells:
                row[cell.params["environment"]] = cell.outputs["replication_seconds"]
            rows.append(row)
        return rows

    return reduce


@scenario("fig5-size")
def _fig5_size() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig5-size",
        title="Coordinator replication time vs RPC data size",
        figure="5 (left)",
        cell=replication_cell,
        base=dict(n_tasks=16),
        axes=(
            Axis("params_bytes", tuple(geometric_sizes())),
            Axis("environment", _ENVIRONMENTS),
        ),
        seeds=(0,),
        outputs=("replication_seconds",),
        scales={"tiny": {"params_bytes": (1_000, 1_000_000), "n_tasks": 8}},
        reduce=_pivot_environments("params_bytes", "n_tasks"),
    )


@scenario("fig5-count")
def _fig5_count() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig5-count",
        title="Coordinator replication time vs number of task descriptions",
        figure="5 (right)",
        cell=replication_cell,
        base=dict(params_bytes=300),
        axes=(
            Axis("n_tasks", tuple(geometric_counts())),
            Axis("environment", _ENVIRONMENTS),
        ),
        seeds=(0,),
        outputs=("replication_seconds",),
        scales={"tiny": {"n_tasks": (1, 32)}},
        reduce=_pivot_environments("n_tasks", "params_bytes"),
    )


def run_fig5_vs_size(
    sizes: list[int] | None = None,
    n_tasks: int = 16,
    environments: tuple[str, ...] = _ENVIRONMENTS,
    seed: int = 0,
) -> list[dict[str, Any]]:
    """Left panel of Figure 5: replication time vs RPC data size."""
    axes: dict[str, Any] = {"environment": environments}
    if sizes is not None:
        axes["params_bytes"] = sizes
    return run_scenario(
        _fig5_size, axes=axes, params={"n_tasks": n_tasks}, seeds=(seed,), jobs=1
    ).rows


def run_fig5_vs_count(
    counts: list[int] | None = None,
    params_bytes: int = 300,
    environments: tuple[str, ...] = _ENVIRONMENTS,
    seed: int = 0,
) -> list[dict[str, Any]]:
    """Right panel of Figure 5: replication time vs number of task descriptions."""
    axes: dict[str, Any] = {"environment": environments}
    if counts is not None:
        axes["n_tasks"] = counts
    return run_scenario(
        _fig5_count, axes=axes, params={"params_bytes": params_bytes}, seeds=(seed,),
        jobs=1,
    ).rows
