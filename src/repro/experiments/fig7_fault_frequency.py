"""EXP-F7 — Figure 7: benchmark execution time vs fault frequency.

The §5.1 fault-tolerance benchmark: one client submits 96 RPCs of 10 s to a
pool of 16 servers through 4 coordinators (ideal time 60 s; the no-fault
infrastructure overhead is ~17 %).  A fault generator kills components of one
tier — servers or coordinators — at the swept aggregate frequency and restarts
them a few seconds later; killed servers lose their running task, killed
coordinators force clients and servers to resynchronise.

Expected shape: both curves grow with the fault frequency and the server
curve sits above the coordinator curve (a lost execution costs more than a
middle-tier resynchronisation, and real platforms have many more computing
nodes than infrastructure nodes).
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import mean
from repro.grid.runner import run_synthetic_benchmark
from repro.workloads.sweep import fault_frequencies

__all__ = ["run_fig7"]


def run_fig7(
    frequencies: list[float] | None = None,
    seeds: tuple[int, ...] = (7, 11, 23),
    n_calls: int = 96,
    exec_time: float = 10.0,
    n_servers: int = 16,
    n_coordinators: int = 4,
    restart_delay: float = 5.0,
    horizon: float = 6000.0,
) -> list[dict[str, Any]]:
    """Benchmark execution time vs fault frequency, for both fault targets."""
    frequencies = frequencies if frequencies is not None else fault_frequencies()
    rows: list[dict[str, Any]] = []
    ideal = exec_time * n_calls / n_servers
    for frequency in frequencies:
        row: dict[str, Any] = {"faults_per_minute": frequency, "ideal_seconds": ideal}
        for target in ("servers", "coordinators"):
            makespans = []
            completed_all = True
            faults = 0
            for seed in seeds:
                report = run_synthetic_benchmark(
                    n_calls=n_calls,
                    exec_time=exec_time,
                    n_servers=n_servers,
                    n_coordinators=n_coordinators,
                    faults_per_minute=frequency,
                    fault_target=target if frequency > 0 else "none",
                    fault_restart_delay=restart_delay,
                    seed=seed,
                    horizon=horizon,
                )
                makespans.append(report.makespan)
                faults += report.faults_injected
                completed_all = completed_all and report.all_completed
            row[f"faulty_{target}_seconds"] = mean(makespans)
            row[f"faulty_{target}_completed"] = completed_all
            row[f"faulty_{target}_faults"] = faults
        rows.append(row)
    return rows
