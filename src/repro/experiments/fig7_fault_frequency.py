"""EXP-F7 — Figure 7: benchmark execution time vs fault frequency.

The §5.1 fault-tolerance benchmark: one client submits 96 RPCs of 10 s to a
pool of 16 servers through 4 coordinators (ideal time 60 s; the no-fault
infrastructure overhead is ~17 %).  A fault generator kills components of one
tier — servers or coordinators — at the swept aggregate frequency and restarts
them a few seconds later; killed servers lose their running task, killed
coordinators force clients and servers to resynchronise.

Expected shape: both curves grow with the fault frequency and the server
curve sits above the coordinator curve (a lost execution costs more than a
middle-tier resynchronisation, and real platforms have many more computing
nodes than infrastructure nodes).

The sweep is registered as the ``fig7`` scenario — (frequency × target × seed)
cells over the shared :func:`~repro.scenarios.engine.benchmark_cell` kernel —
so ``python -m repro run fig7 --jobs N`` fans the whole figure out over a
process pool.  :func:`run_fig7` stays as a thin sequential wrapper.
"""

from __future__ import annotations

from typing import Any

from repro.scenarios.engine import benchmark_cell
from repro.scenarios.reducers import grouped, mean
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec
from repro.workloads.sweep import fault_frequencies

__all__ = ["run_fig7"]

_TARGETS = ("servers", "coordinators")


def _fig7_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """One row per fault frequency, both target curves pivoted into columns."""
    rows: list[dict[str, Any]] = []
    for (frequency,), cells in grouped(results, ("faults_per_minute",)).items():
        params = cells[0].params
        row: dict[str, Any] = {
            "faults_per_minute": frequency,
            "ideal_seconds": params["exec_time"] * params["n_calls"] / params["n_servers"],
        }
        for target in _TARGETS:
            of_target = [c for c in cells if c.params["fault_target"] == target]
            row[f"faulty_{target}_seconds"] = mean(
                c.outputs["makespan"] for c in of_target
            )
            row[f"faulty_{target}_completed"] = all(
                c.outputs["completed"] >= c.outputs["submitted"] for c in of_target
            )
            row[f"faulty_{target}_faults"] = sum(
                c.outputs["faults_injected"] for c in of_target
            )
        rows.append(row)
    return rows


@scenario("fig7")
def _fig7() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig7",
        title="Benchmark execution time vs fault frequency",
        figure="7",
        cell=benchmark_cell,
        base=dict(
            n_calls=96,
            exec_time=10.0,
            n_servers=16,
            n_coordinators=4,
            restart_delay=5.0,
            horizon=6000.0,
        ),
        axes=(
            Axis("faults_per_minute", tuple(fault_frequencies())),
            Axis("fault_target", _TARGETS),
        ),
        seeds=(7, 11, 23),
        outputs=("makespan", "submitted", "completed", "faults_injected"),
        # The Poisson injector is a named platform component; both the rate
        # and the victim tier are swept axes, wired in via $-interpolation.
        components=(
            {
                "name": "inject.rate",
                "params": {
                    "target": "$fault_target",
                    "faults_per_minute": "$faults_per_minute",
                    "restart_delay": "$restart_delay",
                },
            },
        ),
        scales={
            "tiny": dict(
                faults_per_minute=(0.0, 4.0, 10.0),
                n_calls=24,
                exec_time=5.0,
                n_servers=8,
                seeds=(7, 11),
                horizon=3000.0,
            ),
        },
        reduce=_fig7_rows,
    )


def run_fig7(
    frequencies: list[float] | None = None,
    seeds: tuple[int, ...] = (7, 11, 23),
    n_calls: int = 96,
    exec_time: float = 10.0,
    n_servers: int = 16,
    n_coordinators: int = 4,
    restart_delay: float = 5.0,
    horizon: float = 6000.0,
    jobs: int = 1,
) -> list[dict[str, Any]]:
    """Benchmark execution time vs fault frequency, for both fault targets."""
    return run_scenario(
        _fig7,
        axes={"faults_per_minute": frequencies} if frequencies is not None else None,
        params=dict(
            n_calls=n_calls,
            exec_time=exec_time,
            n_servers=n_servers,
            n_coordinators=n_coordinators,
            restart_delay=restart_delay,
            horizon=horizon,
        ),
        seeds=seeds,
        jobs=jobs,
    ).rows
