"""Ablation experiments (not in the paper, motivated by DESIGN.md).

* :func:`run_baseline_ablation` — what the RPC-V combination buys: the Fig. 7
  workload under coordinator faults, comparing full RPC-V against the
  baselines of :mod:`repro.baselines` (no coordinator replication, and a
  NetSolve-style configuration with server-side fault tolerance only).
* :func:`run_detector_ablation` — the heart-beat period / suspicion timeout
  trade-off: detection latency versus wrong suspicions on a WAN-like link.
"""

from __future__ import annotations

from typing import Any

from repro.baselines import netsolve_style_protocol, no_fault_tolerance_protocol, rpcv_protocol
from repro.config import FaultDetectionConfig
from repro.detect import FailureDetector
from repro.experiments.common import mean
from repro.grid.runner import run_synthetic_benchmark
from repro.sim.rng import RandomStreams
from repro.types import Address

__all__ = ["run_baseline_ablation", "run_detector_ablation"]


def run_baseline_ablation(
    faults_per_minute: float = 4.0,
    fault_target: str = "coordinators",
    seeds: tuple[int, ...] = (7, 11),
    n_calls: int = 96,
    exec_time: float = 10.0,
    horizon: float = 4000.0,
) -> list[dict[str, Any]]:
    """Fig. 7 workload under faults, RPC-V vs the degraded baselines."""
    systems = {
        "rpc-v": rpcv_protocol(),
        "no-replication": no_fault_tolerance_protocol(),
        "netsolve-style": netsolve_style_protocol(),
    }
    rows: list[dict[str, Any]] = []
    for name, protocol in systems.items():
        makespans = []
        completed = []
        for seed in seeds:
            report = run_synthetic_benchmark(
                n_calls=n_calls,
                exec_time=exec_time,
                faults_per_minute=faults_per_minute,
                fault_target=fault_target,  # type: ignore[arg-type]
                fault_restart_delay=5.0,
                protocol=protocol,
                seed=seed,
                horizon=horizon,
            )
            makespans.append(report.makespan)
            completed.append(report.completed / max(report.submitted, 1))
        rows.append(
            {
                "system": name,
                "faults_per_minute": faults_per_minute,
                "fault_target": fault_target,
                "mean_makespan_seconds": mean(makespans),
                "mean_completion_ratio": mean(completed),
            }
        )
    return rows


def run_detector_ablation(
    heartbeat_periods: tuple[float, ...] = (1.0, 5.0, 15.0),
    timeout_multipliers: tuple[float, ...] = (2.0, 6.0, 12.0),
    message_loss: float = 0.02,
    latency_sigma: float = 0.8,
    observation_seconds: float = 3600.0,
    crash_at: float = 1800.0,
    seed: int = 0,
) -> list[dict[str, Any]]:
    """Heart-beat tuning: detection latency vs wrong suspicions.

    A single monitored peer emits heart-beats over a lossy, heavy-tailed link
    and actually crashes at ``crash_at``.  For every (period, timeout) pair the
    driver replays the same arrival trace through a
    :class:`~repro.detect.FailureDetector` and reports how long the real crash
    took to be suspected and how many wrong suspicions happened before it.
    """
    rng = RandomStreams(seed)
    subject = Address("server", "watched")
    rows: list[dict[str, Any]] = []
    for period in heartbeat_periods:
        # Generate the heart-beat arrival trace once per period.
        arrivals: list[float] = []
        t = 0.0
        while t < crash_at:
            t += period
            if float(rng.stream(f"loss.{period}").random()) < message_loss:
                continue  # heart-beat lost
            delay = 0.05 * float(rng.stream(f"lat.{period}").lognormal(0.0, latency_sigma))
            arrivals.append(t + delay)
        arrivals.sort()
        for multiplier in timeout_multipliers:
            timeout = period * multiplier
            detector = FailureDetector(
                FaultDetectionConfig(heartbeat_period=period, suspicion_timeout=timeout)
            )
            detector.watch(subject, 0.0)
            wrong = 0
            detection_time = None
            check_times = [i * period / 2 for i in range(int(observation_seconds * 2 / period))]
            arrival_index = 0
            for now in check_times:
                while arrival_index < len(arrivals) and arrivals[arrival_index] <= now:
                    detector.heard_from(subject, arrivals[arrival_index])
                    arrival_index += 1
                suspected = detector.is_suspected(subject, now)
                if suspected and now < crash_at:
                    wrong += 1
                if suspected and now >= crash_at and detection_time is None:
                    detection_time = now - crash_at
            rows.append(
                {
                    "heartbeat_period": period,
                    "suspicion_timeout": timeout,
                    "wrong_suspicion_checks": wrong,
                    "detection_latency_seconds": (
                        detection_time if detection_time is not None else float("inf")
                    ),
                }
            )
    return rows
