"""Ablation experiments (not in the paper, motivated by DESIGN.md).

* :func:`run_baseline_ablation` — what the RPC-V combination buys: the Fig. 7
  workload under coordinator faults, comparing full RPC-V against the
  baselines of :mod:`repro.baselines` (no coordinator replication, and a
  NetSolve-style configuration with server-side fault tolerance only).
* :func:`run_detector_ablation` — the heart-beat period / suspicion timeout
  trade-off: detection latency versus wrong suspicions on a WAN-like link.

Both are registered as scenarios (``ablation-baselines``,
``ablation-detector``); the ``run_*`` functions are thin wrappers kept for the
benchmarks and EXPERIMENTS.md flows.
"""

from __future__ import annotations

from typing import Any

from repro.config import FaultDetectionConfig
from repro.detect import FailureDetector
from repro.policies.resolve import detection_policy_from
from repro.scenarios.engine import benchmark_cell
from repro.scenarios.reducers import grouped, mean
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec
from repro.sim.rng import RandomStreams
from repro.types import Address

__all__ = ["run_baseline_ablation", "run_detector_ablation"]

_SYSTEMS = ("rpc-v", "no-replication", "netsolve-style")


def _baseline_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """One row per system: mean makespan and completion ratio over the seeds."""
    rows: list[dict[str, Any]] = []
    for (system,), cells in grouped(results, ("protocol_preset",)).items():
        params = cells[0].params
        rows.append(
            {
                "system": system,
                "faults_per_minute": params["faults_per_minute"],
                "fault_target": params["fault_target"],
                "mean_makespan_seconds": mean(c.outputs["makespan"] for c in cells),
                "mean_completion_ratio": mean(
                    c.outputs["completed"] / max(c.outputs["submitted"], 1)
                    for c in cells
                ),
            }
        )
    return rows


@scenario("ablation-baselines")
def _ablation_baselines() -> ScenarioSpec:
    return ScenarioSpec(
        name="ablation-baselines",
        title="RPC-V vs degraded baselines under coordinator faults",
        cell=benchmark_cell,
        description=(
            "The Fig. 7 workload under faults, with the protocol swept over "
            "the full RPC-V configuration and the two degraded baselines."
        ),
        base=dict(
            n_calls=96,
            exec_time=10.0,
            fault_kind="rate",
            fault_target="coordinators",
            faults_per_minute=4.0,
            restart_delay=5.0,
            horizon=4000.0,
        ),
        axes=(Axis("protocol_preset", _SYSTEMS),),
        seeds=(7, 11),
        outputs=("makespan", "submitted", "completed"),
        scales={
            "tiny": dict(n_calls=24, exec_time=5.0, seeds=(7,), horizon=3000.0),
        },
        reduce=_baseline_rows,
    )


def run_baseline_ablation(
    faults_per_minute: float = 4.0,
    fault_target: str = "coordinators",
    seeds: tuple[int, ...] = (7, 11),
    n_calls: int = 96,
    exec_time: float = 10.0,
    horizon: float = 4000.0,
) -> list[dict[str, Any]]:
    """Fig. 7 workload under faults, RPC-V vs the degraded baselines."""
    return run_scenario(
        _ablation_baselines,
        params=dict(
            faults_per_minute=faults_per_minute,
            fault_target=fault_target,
            n_calls=n_calls,
            exec_time=exec_time,
            horizon=horizon,
        ),
        seeds=seeds,
        jobs=1,
    ).rows


def detector_cell(
    heartbeat_period: float,
    timeout_multiplier: float,
    message_loss: float = 0.02,
    latency_sigma: float = 0.8,
    observation_seconds: float = 3600.0,
    crash_at: float = 1800.0,
    seed: int = 0,
    detection_policy: Any = None,
) -> dict[str, Any]:
    """One (heart-beat period, suspicion timeout) detector replay.

    A single monitored peer emits heart-beats over a lossy, heavy-tailed link
    and actually crashes at ``crash_at``; the cell replays the arrival trace
    through a :class:`~repro.detect.FailureDetector` and reports how long the
    real crash took to be suspected and how many wrong suspicions happened
    before it.  The trace is drawn from streams keyed by the period, so every
    multiplier for one period sees the identical trace.  ``detection_policy``
    optionally swaps the suspicion rule for a ``policy.detect.*`` entry, so
    the same replay scores adaptive or accrual detectors.
    """
    rng = RandomStreams(seed)
    subject = Address("server", "watched")
    period = heartbeat_period
    arrivals: list[float] = []
    t = 0.0
    while t < crash_at:
        t += period
        if float(rng.stream(f"loss.{period}").random()) < message_loss:
            continue  # heart-beat lost
        delay = 0.05 * float(rng.stream(f"lat.{period}").lognormal(0.0, latency_sigma))
        arrivals.append(t + delay)
    arrivals.sort()

    timeout = period * timeout_multiplier
    config = FaultDetectionConfig(heartbeat_period=period, suspicion_timeout=timeout)
    policy = detection_policy_from(config, detection_policy)
    policy.bind(owner="detector-cell", rng=rng, monitor=None)
    detector = FailureDetector(config, policy=policy)
    detector.watch(subject, 0.0)
    wrong = 0
    detection_time = None
    check_times = [i * period / 2 for i in range(int(observation_seconds * 2 / period))]
    arrival_index = 0
    for now in check_times:
        while arrival_index < len(arrivals) and arrivals[arrival_index] <= now:
            detector.heard_from(subject, arrivals[arrival_index])
            arrival_index += 1
        suspected = detector.is_suspected(subject, now)
        if suspected and now < crash_at:
            wrong += 1
        if suspected and now >= crash_at and detection_time is None:
            detection_time = now - crash_at
    return {
        "suspicion_timeout": timeout,
        "wrong_suspicion_checks": wrong,
        "detection_latency_seconds": (
            detection_time if detection_time is not None else float("inf")
        ),
    }


def _detector_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """One row per (period, multiplier) cell, in sweep order."""
    return [
        {
            "heartbeat_period": result.params["heartbeat_period"],
            "suspicion_timeout": result.outputs["suspicion_timeout"],
            "wrong_suspicion_checks": result.outputs["wrong_suspicion_checks"],
            "detection_latency_seconds": result.outputs["detection_latency_seconds"],
        }
        for result in results
    ]


@scenario("ablation-detector")
def _ablation_detector() -> ScenarioSpec:
    return ScenarioSpec(
        name="ablation-detector",
        title="Heart-beat period / suspicion timeout trade-off",
        cell=detector_cell,
        description=(
            "Detection latency versus wrong suspicions when replaying one "
            "lossy heavy-tailed heart-beat trace per period."
        ),
        base=dict(
            message_loss=0.02,
            latency_sigma=0.8,
            observation_seconds=3600.0,
            crash_at=1800.0,
        ),
        axes=(
            Axis("heartbeat_period", (1.0, 5.0, 15.0)),
            Axis("timeout_multiplier", (2.0, 6.0, 12.0)),
        ),
        seeds=(0,),
        outputs=(
            "suspicion_timeout",
            "wrong_suspicion_checks",
            "detection_latency_seconds",
        ),
        scales={
            "tiny": dict(
                heartbeat_period=(1.0, 15.0),
                timeout_multiplier=(2.0, 12.0),
                observation_seconds=1200.0,
                crash_at=600.0,
            ),
        },
        reduce=_detector_rows,
    )


def run_detector_ablation(
    heartbeat_periods: tuple[float, ...] = (1.0, 5.0, 15.0),
    timeout_multipliers: tuple[float, ...] = (2.0, 6.0, 12.0),
    message_loss: float = 0.02,
    latency_sigma: float = 0.8,
    observation_seconds: float = 3600.0,
    crash_at: float = 1800.0,
    seed: int = 0,
) -> list[dict[str, Any]]:
    """Heart-beat tuning: detection latency vs wrong suspicions."""
    return run_scenario(
        _ablation_detector,
        axes={
            "heartbeat_period": heartbeat_periods,
            "timeout_multiplier": timeout_multipliers,
        },
        params=dict(
            message_loss=message_loss,
            latency_sigma=latency_sigma,
            observation_seconds=observation_seconds,
            crash_at=crash_at,
        ),
        seeds=(seed,),
        jobs=1,
    ).rows
