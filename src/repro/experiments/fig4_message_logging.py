"""EXP-F4 — Figure 4: client-side message-logging strategies.

The experiment submits a batch of non-blocking RPCs on the confined cluster
and measures the total RPC submission time as seen by the client, for the
three logging strategies:

* left panel  — 16 calls, parameter size swept from ~100 B to 100 MB;
* right panel — small (~300 B) calls, count swept from 1 to 1000.

Expected shape: blocking pessimistic ≈ +30 % over optimistic for large
parameters (disk bandwidth vs network bandwidth), up to ~2× for many small
calls (disk latency ≈ communication time); non-blocking pessimistic close to
optimistic with a small, variable overhead.

Both panels are registered as scenarios (``fig4-size``, ``fig4-calls``); the
``run_*`` functions are thin wrappers kept for the benchmarks and
EXPERIMENTS.md flows.
"""

from __future__ import annotations

from typing import Any

from repro.config import ProtocolConfig
from repro.grid.builder import build_confined_cluster
from repro.scenarios.reducers import grouped
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec
from repro.types import LoggingStrategy
from repro.workloads.sweep import geometric_counts, geometric_sizes
from repro.workloads.synthetic import SyntheticWorkload

__all__ = ["run_fig4_vs_size", "run_fig4_vs_calls", "STRATEGIES"]

STRATEGIES: tuple[LoggingStrategy, ...] = (
    LoggingStrategy.OPTIMISTIC,
    LoggingStrategy.PESSIMISTIC_NON_BLOCKING,
    LoggingStrategy.PESSIMISTIC_BLOCKING,
)

_STRATEGY_VALUES = tuple(strategy.value for strategy in STRATEGIES)


def _measure_submission(
    strategy: LoggingStrategy,
    n_calls: int,
    params_bytes: int,
    seed: int = 0,
) -> float:
    """Total submission time of ``n_calls`` calls under one strategy."""
    protocol = ProtocolConfig().with_logging_strategy(strategy)
    protocol.coordinator.replication.period = 5.0
    # This experiment isolates the *client-side logging* cost: keep the
    # coordinator lightweight (no heavy middleware charge per request) and the
    # servers quiet so submissions are not queued behind unrelated traffic.
    protocol.coordinator.request_processing_overhead = 0.01
    protocol.server.work_poll_period = 10_000.0
    grid = build_confined_cluster(
        n_servers=2, n_coordinators=1, protocol=protocol, seed=seed
    )
    grid.start()
    # The RPC execution time is irrelevant here (only submission is measured);
    # make it long enough that no result traffic interleaves with the
    # submissions being timed.
    workload = SyntheticWorkload(
        n_calls=n_calls,
        exec_time=1.0e6,
        params_bytes=params_bytes,
        result_bytes=32,
    )
    process = grid.run_process(workload.submit_only(grid.client), name="fig4")
    grid.run_until(process, timeout=50_000.0)
    return workload.submission_time


def logging_cell(
    strategy: str, n_calls: int, params_bytes: int, seed: int = 0
) -> dict[str, Any]:
    """Scenario cell: one (strategy, size/count) submission measurement."""
    seconds = _measure_submission(
        LoggingStrategy(strategy), n_calls=n_calls, params_bytes=params_bytes,
        seed=seed,
    )
    return {"submission_seconds": seconds}


def _pivot_strategies(group_key: str, fixed_key: str):
    """Rows keyed by ``group_key``, one column per strategy, plus the ratio."""

    def reduce(results: list[CellResult]) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for (value,), cells in grouped(results, (group_key,)).items():
            row: dict[str, Any] = {
                group_key: value,
                fixed_key: cells[0].params[fixed_key],
            }
            for cell in cells:
                row[cell.params["strategy"]] = cell.outputs["submission_seconds"]
            optimistic = row[LoggingStrategy.OPTIMISTIC.value]
            row["blocking_over_optimistic"] = (
                row[LoggingStrategy.PESSIMISTIC_BLOCKING.value] / optimistic
                if optimistic > 0
                else float("nan")
            )
            rows.append(row)
        return rows

    return reduce


@scenario("fig4-size")
def _fig4_size() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig4-size",
        title="RPC submission time vs parameter size, per logging strategy",
        figure="4 (left)",
        cell=logging_cell,
        base=dict(n_calls=16),
        axes=(
            Axis("params_bytes", tuple(geometric_sizes())),
            Axis("strategy", _STRATEGY_VALUES),
        ),
        seeds=(0,),
        outputs=("submission_seconds",),
        scales={"tiny": {"params_bytes": (1_000, 1_000_000), "n_calls": 4}},
        reduce=_pivot_strategies("params_bytes", "n_calls"),
    )


@scenario("fig4-calls")
def _fig4_calls() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig4-calls",
        title="RPC submission time vs number of calls, per logging strategy",
        figure="4 (right)",
        cell=logging_cell,
        base=dict(params_bytes=300),
        axes=(
            Axis("n_calls", tuple(geometric_counts())),
            Axis("strategy", _STRATEGY_VALUES),
        ),
        seeds=(0,),
        outputs=("submission_seconds",),
        scales={"tiny": {"n_calls": (1, 16)}},
        reduce=_pivot_strategies("n_calls", "params_bytes"),
    )


def run_fig4_vs_size(
    sizes: list[int] | None = None, n_calls: int = 16, seed: int = 0
) -> list[dict[str, Any]]:
    """Left panel of Figure 4: submission time vs parameter size."""
    return run_scenario(
        _fig4_size,
        axes={"params_bytes": sizes} if sizes is not None else None,
        params={"n_calls": n_calls},
        seeds=(seed,),
        jobs=1,
    ).rows


def run_fig4_vs_calls(
    counts: list[int] | None = None, params_bytes: int = 300, seed: int = 0
) -> list[dict[str, Any]]:
    """Right panel of Figure 4: submission time vs number of calls."""
    return run_scenario(
        _fig4_calls,
        axes={"n_calls": counts} if counts is not None else None,
        params={"params_bytes": params_bytes},
        seeds=(seed,),
        jobs=1,
    ).rows
