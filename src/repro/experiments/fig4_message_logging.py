"""EXP-F4 — Figure 4: client-side message-logging strategies.

The experiment submits a batch of non-blocking RPCs on the confined cluster
and measures the total RPC submission time as seen by the client, for the
three logging strategies:

* left panel  — 16 calls, parameter size swept from ~100 B to 100 MB;
* right panel — small (~300 B) calls, count swept from 1 to 1000.

Expected shape: blocking pessimistic ≈ +30 % over optimistic for large
parameters (disk bandwidth vs network bandwidth), up to ~2× for many small
calls (disk latency ≈ communication time); non-blocking pessimistic close to
optimistic with a small, variable overhead.
"""

from __future__ import annotations

from typing import Any

from repro.config import ProtocolConfig
from repro.grid.builder import build_confined_cluster
from repro.types import LoggingStrategy
from repro.workloads.sweep import geometric_counts, geometric_sizes
from repro.workloads.synthetic import SyntheticWorkload

__all__ = ["run_fig4_vs_size", "run_fig4_vs_calls", "STRATEGIES"]

STRATEGIES: tuple[LoggingStrategy, ...] = (
    LoggingStrategy.OPTIMISTIC,
    LoggingStrategy.PESSIMISTIC_NON_BLOCKING,
    LoggingStrategy.PESSIMISTIC_BLOCKING,
)


def _measure_submission(
    strategy: LoggingStrategy,
    n_calls: int,
    params_bytes: int,
    seed: int = 0,
) -> float:
    """Total submission time of ``n_calls`` calls under one strategy."""
    protocol = ProtocolConfig().with_logging_strategy(strategy)
    protocol.coordinator.replication.period = 5.0
    # This experiment isolates the *client-side logging* cost: keep the
    # coordinator lightweight (no heavy middleware charge per request) and the
    # servers quiet so submissions are not queued behind unrelated traffic.
    protocol.coordinator.request_processing_overhead = 0.01
    protocol.server.work_poll_period = 10_000.0
    grid = build_confined_cluster(
        n_servers=2, n_coordinators=1, protocol=protocol, seed=seed
    )
    grid.start()
    # The RPC execution time is irrelevant here (only submission is measured);
    # make it long enough that no result traffic interleaves with the
    # submissions being timed.
    workload = SyntheticWorkload(
        n_calls=n_calls,
        exec_time=1.0e6,
        params_bytes=params_bytes,
        result_bytes=32,
    )
    process = grid.run_process(workload.submit_only(grid.client), name="fig4")
    grid.run_until(process, timeout=50_000.0)
    return workload.submission_time


def run_fig4_vs_size(
    sizes: list[int] | None = None, n_calls: int = 16, seed: int = 0
) -> list[dict[str, Any]]:
    """Left panel of Figure 4: submission time vs parameter size."""
    sizes = sizes or geometric_sizes()
    rows: list[dict[str, Any]] = []
    for size in sizes:
        row: dict[str, Any] = {"params_bytes": size, "n_calls": n_calls}
        for strategy in STRATEGIES:
            row[strategy.value] = _measure_submission(
                strategy, n_calls=n_calls, params_bytes=size, seed=seed
            )
        row["blocking_over_optimistic"] = (
            row[LoggingStrategy.PESSIMISTIC_BLOCKING.value]
            / row[LoggingStrategy.OPTIMISTIC.value]
            if row[LoggingStrategy.OPTIMISTIC.value] > 0
            else float("nan")
        )
        rows.append(row)
    return rows


def run_fig4_vs_calls(
    counts: list[int] | None = None, params_bytes: int = 300, seed: int = 0
) -> list[dict[str, Any]]:
    """Right panel of Figure 4: submission time vs number of calls."""
    counts = counts or geometric_counts()
    rows: list[dict[str, Any]] = []
    for count in counts:
        row: dict[str, Any] = {"n_calls": count, "params_bytes": params_bytes}
        for strategy in STRATEGIES:
            row[strategy.value] = _measure_submission(
                strategy, n_calls=count, params_bytes=params_bytes, seed=seed
            )
        row["blocking_over_optimistic"] = (
            row[LoggingStrategy.PESSIMISTIC_BLOCKING.value]
            / row[LoggingStrategy.OPTIMISTIC.value]
            if row[LoggingStrategy.OPTIMISTIC.value] > 0
            else float("nan")
        )
        rows.append(row)
    return rows
