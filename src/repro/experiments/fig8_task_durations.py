"""EXP-F8 — Figure 8: distribution of the Alcatel task durations.

The paper runs the Alcatel commutation-network validation tool with 1000
parallel tasks whose durations vary "in a wide range"; Figure 8 plots the
distribution.  Our stand-in workload draws the durations from a log-normal
body with a small heavy tail (see :class:`repro.workloads.alcatel.AlcatelWorkload`
and the substitution note in DESIGN.md); this experiment reports the histogram
and the summary statistics of that distribution.
"""

from __future__ import annotations

from typing import Any

from repro.workloads.alcatel import AlcatelWorkload

__all__ = ["run_fig8"]


def run_fig8(
    n_tasks: int = 1000, bins: int = 20, seed: int = 42
) -> dict[str, Any]:
    """Histogram + summary statistics of the task-duration distribution."""
    workload = AlcatelWorkload(n_tasks=n_tasks, seed=seed)
    counts, edges = workload.duration_histogram(bins=bins)
    histogram_rows = [
        {
            "bin_start_seconds": float(edges[i]),
            "bin_end_seconds": float(edges[i + 1]),
            "tasks": int(counts[i]),
        }
        for i in range(len(counts))
    ]
    stats = workload.duration_stats()
    return {"histogram": histogram_rows, "stats": stats}
