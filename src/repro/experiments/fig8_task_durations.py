"""EXP-F8 — Figure 8: distribution of the Alcatel task durations.

The paper runs the Alcatel commutation-network validation tool with 1000
parallel tasks whose durations vary "in a wide range"; Figure 8 plots the
distribution.  Our stand-in workload draws the durations from a log-normal
body with a small heavy tail (see :class:`repro.workloads.alcatel.AlcatelWorkload`
and the substitution note in DESIGN.md); this experiment reports the histogram
and the summary statistics of that distribution.

Registered as the single-cell ``fig8`` scenario (rows = histogram bins);
:func:`run_fig8` keeps the historical dict shape.
"""

from __future__ import annotations

from typing import Any

from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import CellResult, ScenarioSpec
from repro.workloads.alcatel import AlcatelWorkload

__all__ = ["run_fig8"]


def durations_cell(n_tasks: int, bins: int, seed: int = 42) -> dict[str, Any]:
    """Scenario cell: histogram + summary statistics of the duration draw."""
    workload = AlcatelWorkload(n_tasks=n_tasks, seed=seed)
    counts, edges = workload.duration_histogram(bins=bins)
    histogram_rows = [
        {
            "bin_start_seconds": float(edges[i]),
            "bin_end_seconds": float(edges[i + 1]),
            "tasks": int(counts[i]),
        }
        for i in range(len(counts))
    ]
    return {"histogram": histogram_rows, "stats": workload.duration_stats()}


def _histogram_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """Flatten the single cell's histogram into the figure's rows."""
    return [dict(row) for result in results for row in result.outputs["histogram"]]


@scenario("fig8")
def _fig8() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig8",
        title="Distribution of the Alcatel task durations",
        figure="8",
        cell=durations_cell,
        base=dict(n_tasks=1000, bins=20),
        seeds=(42,),
        outputs=("histogram", "stats"),
        scales={"tiny": dict(n_tasks=200, bins=10)},
        reduce=_histogram_rows,
    )


def run_fig8(
    n_tasks: int = 1000, bins: int = 20, seed: int = 42
) -> dict[str, Any]:
    """Histogram + summary statistics of the task-duration distribution."""
    result = run_scenario(
        _fig8, params=dict(n_tasks=n_tasks, bins=bins), seeds=(seed,), jobs=1
    )
    outputs = result.cells[0]["outputs"]
    return {"histogram": outputs["histogram"], "stats": outputs["stats"]}
