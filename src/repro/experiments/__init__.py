"""Experiment drivers: one module per figure of the paper's evaluation.

Every figure is registered as a declarative scenario (see
:mod:`repro.scenarios`): importing this package populates the registry, which
is how ``python -m repro list`` finds the figures.  Every driver also keeps a
``run_*`` wrapper returning plain rows (lists of dictionaries) that print as
the series the paper plots; the benchmark harness under ``benchmarks/``
simply calls these with scaled-down parameters, and ``EXPERIMENTS.md``
records paper-vs-measured values produced with the defaults.
"""

from repro.experiments.fig4_message_logging import run_fig4_vs_calls, run_fig4_vs_size
from repro.experiments.fig5_replication import run_fig5_vs_count, run_fig5_vs_size
from repro.experiments.fig6_synchronization import run_fig6_vs_calls, run_fig6_vs_size
from repro.experiments.fig7_fault_frequency import run_fig7
from repro.experiments.fig8_task_durations import run_fig8
from repro.experiments.fig9_reference import run_fig9
from repro.experiments.fig10_coordinator_faults import run_fig10
from repro.experiments.fig11_partition import run_fig11
from repro.experiments.ablations import run_baseline_ablation, run_detector_ablation

__all__ = [
    "run_baseline_ablation",
    "run_detector_ablation",
    "run_fig10",
    "run_fig11",
    "run_fig4_vs_calls",
    "run_fig4_vs_size",
    "run_fig5_vs_count",
    "run_fig5_vs_size",
    "run_fig6_vs_calls",
    "run_fig6_vs_size",
    "run_fig7",
    "run_fig8",
    "run_fig9",
]
