"""EXP-F11 — Figure 11: execution under a suspected partitioned environment.

The components are forced into mutually inconsistent views of the system:

* the servers do not know the Lille coordinator exists (they only ever talk
  to LRI/Orsay);
* the client is forced to submit its calls to Lille only;
* the two coordinators still see each other and keep replicating.

Tasks therefore have to flow client → Lille → (replication) → LRI → servers,
and results flow back the other way.  The paper's point — reproduced here —
is that the campaign still completes as long as a client→coordinator→server
path exists through the coordinator overlay (the progress condition), at the
cost of the extra replication-period latency on every hop.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.fig9_reference import completion_curve_rows, run_alcatel_campaign
from repro.platform.component import BaseComponent
from repro.platform.registry import create_component
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.types import Address, ComponentKind

__all__ = ["PartitionedViews", "run_fig11"]


class PartitionedViews(BaseComponent):
    """Force the mutually inconsistent registry views of Figure 11.

    Servers only know (and prefer) one coordinator; clients only know the
    other.  The network-level isolation is *not* this component's job — a
    ``net.partition-schedule`` entry carries the hide rules — this one only
    rewrites the components' local coordinator lists, the paper's "finite
    list of known coordinators" each party downloaded.

    An experiment-local component resolved by dotted path
    (``repro.experiments.fig11_partition:PartitionedViews``): one-off pieces
    ship with their experiment instead of joining the platform library.
    """

    def __init__(
        self,
        client_coordinator: str = "lille",
        server_coordinator: str = "orsay",
        name: str | None = None,
    ) -> None:
        super().__init__(name or "partitioned-views")
        self.client_coordinator = client_coordinator
        self.server_coordinator = server_coordinator
        #: the paper's progress condition, evaluated once the views (and any
        #: partition rules registered before this component) are in force.
        self.progress_condition_held: bool | None = None

    def setup(self, builder) -> None:
        grid = builder.grid
        for_servers = Address(ComponentKind.COORDINATOR.value, self.server_coordinator)
        for_clients = Address(ComponentKind.COORDINATOR.value, self.client_coordinator)
        for server in grid.servers:
            server.registry.coordinators = [for_servers]
            server.registry.suspected.clear()
            server.registry.set_preferred(for_servers)
        for client in grid.clients:
            client.registry.coordinators = [for_clients]
            client.registry.suspected.clear()
            client.registry.set_preferred(for_clients)
        self._grid = grid

    def start(self) -> None:
        # Start order is registration order, so the partition schedule ahead
        # of this component has installed its hide rules by now; nothing has
        # run yet (the environment only advances after the grid is started).
        self.progress_condition_held = self._grid.progress_condition_holds()


def partition_cell(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run the partitioned-views scenario and compare against the reference.

    The inconsistent views are two component entries: the network refuses
    server↔Lille and client↔Orsay exchanges (``net.partition-schedule``
    bidirectional hide rules, making the views airtight) and the registries
    are rewritten by :class:`PartitionedViews`, resolved via its dotted path
    exactly as a spec's ``components:`` entry would.
    """
    isolation = create_component(
        "net.partition-schedule",
        {
            "events": [
                {"time": 0, "action": "hide", "dest": "coordinator:lille",
                 "source": "servers", "bidirectional": True},
                {"time": 0, "action": "hide", "dest": "coordinator:orsay",
                 "source": "clients", "bidirectional": True},
            ]
        },
    )
    views = create_component(
        "repro.experiments.fig11_partition:PartitionedViews",
        {"client_coordinator": "lille", "server_coordinator": "orsay"},
    )
    result = run_alcatel_campaign(
        n_tasks=n_tasks,
        servers_per_site=servers_per_site,
        seed=seed,
        client_preferred="lille",
        components=[isolation, views],
        **kwargs,
    )
    result["progress_condition_held"] = bool(views.progress_condition_held)
    result["completed_under_partition"] = (
        result["finished_in_time"] and result["completed"] >= result["submitted"]
    )
    return result


@scenario("fig11")
def _fig11() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig11",
        title="Alcatel campaign under mutually inconsistent (partitioned) views",
        figure="11",
        cell=partition_cell,
        base=dict(n_tasks=300, servers_per_site=None),
        seeds=(0,),
        outputs=(
            "makespan",
            "completed",
            "progress_condition_held",
            "completed_under_partition",
        ),
        scales={
            "tiny": dict(
                n_tasks=120,
                servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8},
                seeds=(3,),
            ),
        },
        reduce=completion_curve_rows,
    )


def run_fig11(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run the partitioned-views scenario and compare against the reference."""
    result = run_scenario(
        _fig11,
        params=dict(n_tasks=n_tasks, servers_per_site=servers_per_site, **kwargs),
        seeds=(seed,),
        jobs=1,
    )
    return dict(result.cells[0]["outputs"])
