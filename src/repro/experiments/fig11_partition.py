"""EXP-F11 — Figure 11: execution under a suspected partitioned environment.

The components are forced into mutually inconsistent views of the system:

* the servers do not know the Lille coordinator exists (they only ever talk
  to LRI/Orsay);
* the client is forced to submit its calls to Lille only;
* the two coordinators still see each other and keep replicating.

Tasks therefore have to flow client → Lille → (replication) → LRI → servers,
and results flow back the other way.  The paper's point — reproduced here —
is that the campaign still completes as long as a client→coordinator→server
path exists through the coordinator overlay (the progress condition), at the
cost of the extra replication-period latency on every hop.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.fig9_reference import completion_curve_rows, run_alcatel_campaign
from repro.grid.builder import Grid
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.types import Address, ComponentKind

__all__ = ["run_fig11"]


def partition_cell(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run the partitioned-views scenario and compare against the reference."""
    lille = Address(ComponentKind.COORDINATOR.value, "lille")
    orsay = Address(ComponentKind.COORDINATOR.value, "orsay")
    progress_holds: dict[str, bool] = {}

    def prepare(grid: Grid) -> None:
        # Servers: hide Lille entirely (list reduced to LRI/Orsay, and the
        # network refuses server<->Lille exchanges to make the view airtight).
        for server in grid.servers:
            server.registry.coordinators = [orsay]
            server.registry.suspected.clear()
            server.registry.set_preferred(orsay)
            grid.partitions.hide_bidirectional(server.address, lille)
        # Client: forced to submit to Lille only.
        for client in grid.clients:
            client.registry.coordinators = [lille]
            client.registry.suspected.clear()
            client.registry.set_preferred(lille)
            grid.partitions.hide_bidirectional(client.address, orsay)
        progress_holds["before"] = grid.progress_condition_holds()

    result = run_alcatel_campaign(
        n_tasks=n_tasks,
        servers_per_site=servers_per_site,
        seed=seed,
        client_preferred="lille",
        prepare=prepare,
        **kwargs,
    )
    result["progress_condition_held"] = progress_holds.get("before", False)
    result["completed_under_partition"] = (
        result["finished_in_time"] and result["completed"] >= result["submitted"]
    )
    return result


@scenario("fig11")
def _fig11() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig11",
        title="Alcatel campaign under mutually inconsistent (partitioned) views",
        figure="11",
        cell=partition_cell,
        base=dict(n_tasks=300, servers_per_site=None),
        seeds=(0,),
        outputs=(
            "makespan",
            "completed",
            "progress_condition_held",
            "completed_under_partition",
        ),
        scales={
            "tiny": dict(
                n_tasks=120,
                servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8},
                seeds=(3,),
            ),
        },
        reduce=completion_curve_rows,
    )


def run_fig11(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run the partitioned-views scenario and compare against the reference."""
    result = run_scenario(
        _fig11,
        params=dict(n_tasks=n_tasks, servers_per_site=servers_per_site, **kwargs),
        seeds=(seed,),
        jobs=1,
    )
    return dict(result.cells[0]["outputs"])
