"""EXP-F10 — Figure 10: execution with two consecutive coordinator faults.

Reproduces the labelled scenario of the paper:

1. both coordinators start; the client submits every task to Lille;
2. Lille is killed once ~40 % of the tasks are completed;
3. the servers (and the client) suspect Lille and fail over to LRI/Orsay;
4. LRI keeps receiving results and catches up with Lille's count;
5. Lille is restarted; passive replication brings it back close to LRI;
6. LRI is killed; everybody fails back to Lille;
7. the campaign terminates using the Lille coordinator alone.

The experiment records the completed-task curves of both coordinators plus
the times of every scripted event, and reports whether the campaign completed
despite the two consecutive middle-tier failures — the paper's headline
fault-tolerance result.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.fig9_reference import completion_curve_rows, run_alcatel_campaign
from repro.platform.registry import create_component
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["coordinator_fault_steps", "run_fig10"]


def coordinator_fault_steps(
    n_tasks: int,
    kill_lille_fraction: float = 0.4,
    kill_orsay_fraction: float = 0.75,
    lille_restart_delay: float = 180.0,
    replication_period: float = 60.0,
) -> list[dict[str, Any]]:
    """The labelled Figure 10 timetable as declarative ``inject.script`` steps."""
    return [
        {"do": "note", "label": 1, "note": "coordinators started"},
        # Label 2: kill Lille once ~40% of the tasks are completed there.
        {
            "until": {
                "kind": "finished-count",
                "coordinator": "lille",
                "at_least": kill_lille_fraction * n_tasks,
            },
            "poll": 10.0,
            "do": "kill",
            "target": "coordinator:lille",
            "label": 2,
            "note": "lille killed",
        },
        # Label 6: restart Lille after the servers had time to fail over.
        {
            "after": lille_restart_delay,
            "do": "restart",
            "target": "coordinator:lille",
            "label": 6,
            "note": "lille restarted",
        },
        # Label 7: wait until Lille's view is close to Orsay's again (passive
        # replication catching up), then one more replication period.
        {
            "until": {
                "kind": "caught-up",
                "coordinator": "lille",
                "reference": "orsay",
                "margin": max(5, n_tasks // 50),
            },
            "poll": 10.0,
            "do": "note",
            "label": 7,
            "note": "lille caught up",
        },
        {"after": replication_period},
        # Label 8: kill LRI/Orsay once enough of the campaign has completed.
        # The campaign must terminate using the Lille coordinator (label 10);
        # Orsay stays down for the remainder of the run.
        {
            "until": {
                "kind": "finished-count",
                "coordinator": "orsay",
                "at_least": kill_orsay_fraction * n_tasks,
            },
            "poll": 10.0,
            "do": "kill",
            "target": "coordinator:orsay",
            "label": 8,
            "note": "orsay killed",
        },
    ]


def coordinator_faults_cell(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    kill_lille_fraction: float = 0.4,
    kill_orsay_fraction: float = 0.75,
    lille_restart_delay: float = 180.0,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run the two-consecutive-coordinator-faults scenario.

    The scripted faults are an ``inject.script`` component entry (its
    condition-triggered ``steps`` form), armed in the driver slot — no
    callback touches the grid.
    """
    # One value feeds both the campaign's protocol and the post-catch-up
    # wait of the script, so the timetable cannot drift from the actual
    # replication cadence.
    replication_period = kwargs.pop("replication_period", 60.0)
    script = create_component(
        "inject.script",
        {
            "steps": coordinator_fault_steps(
                n_tasks=n_tasks,
                kill_lille_fraction=kill_lille_fraction,
                kill_orsay_fraction=kill_orsay_fraction,
                lille_restart_delay=lille_restart_delay,
                replication_period=replication_period,
            )
        },
    )
    result = run_alcatel_campaign(
        n_tasks=n_tasks,
        servers_per_site=servers_per_site,
        seed=seed,
        replication_period=replication_period,
        driver_components=[script],
        **kwargs,
    )
    result["events"] = script.recorded
    result["tolerated_two_coordinator_faults"] = (
        result["finished_in_time"] and result["completed"] >= result["submitted"]
    )
    return result


@scenario("fig10")
def _fig10() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig10",
        title="Alcatel campaign surviving two consecutive coordinator faults",
        figure="10",
        cell=coordinator_faults_cell,
        base=dict(
            n_tasks=300,
            servers_per_site=None,
            kill_lille_fraction=0.4,
            kill_orsay_fraction=0.75,
            lille_restart_delay=180.0,
        ),
        seeds=(0,),
        outputs=("makespan", "completed", "events", "tolerated_two_coordinator_faults"),
        scales={
            "tiny": dict(
                n_tasks=120,
                servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8},
                seeds=(3,),
            ),
        },
        reduce=completion_curve_rows,
    )


def run_fig10(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    kill_lille_fraction: float = 0.4,
    kill_orsay_fraction: float = 0.75,
    lille_restart_delay: float = 180.0,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run the two-consecutive-coordinator-faults scenario."""
    result = run_scenario(
        _fig10,
        params=dict(
            n_tasks=n_tasks,
            servers_per_site=servers_per_site,
            kill_lille_fraction=kill_lille_fraction,
            kill_orsay_fraction=kill_orsay_fraction,
            lille_restart_delay=lille_restart_delay,
            **kwargs,
        ),
        seeds=(seed,),
        jobs=1,
    )
    return dict(result.cells[0]["outputs"])
