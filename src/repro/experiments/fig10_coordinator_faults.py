"""EXP-F10 — Figure 10: execution with two consecutive coordinator faults.

Reproduces the labelled scenario of the paper:

1. both coordinators start; the client submits every task to Lille;
2. Lille is killed once ~40 % of the tasks are completed;
3. the servers (and the client) suspect Lille and fail over to LRI/Orsay;
4. LRI keeps receiving results and catches up with Lille's count;
5. Lille is restarted; passive replication brings it back close to LRI;
6. LRI is killed; everybody fails back to Lille;
7. the campaign terminates using the Lille coordinator alone.

The experiment records the completed-task curves of both coordinators plus
the times of every scripted event, and reports whether the campaign completed
despite the two consecutive middle-tier failures — the paper's headline
fault-tolerance result.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.fig9_reference import completion_curve_rows, run_alcatel_campaign
from repro.grid.builder import Grid
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.alcatel import AlcatelWorkload

__all__ = ["run_fig10"]


def coordinator_faults_cell(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    kill_lille_fraction: float = 0.4,
    kill_orsay_fraction: float = 0.75,
    lille_restart_delay: float = 180.0,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run the two-consecutive-coordinator-faults scenario."""
    events: list[dict[str, Any]] = []

    def driver(grid: Grid, workload: AlcatelWorkload):
        lille = grid.coordinator_by_name("lille")
        orsay = grid.coordinator_by_name("orsay")
        lille_host = grid.host_of(lille)
        orsay_host = grid.host_of(orsay)
        period = grid.spec.protocol.coordinator.replication.period
        events.append({"label": 1, "event": "coordinators started", "time": grid.env.now})

        # Label 2: kill Lille once ~40% of the tasks are completed there.
        while lille.finished_count() < kill_lille_fraction * n_tasks:
            yield grid.env.timeout(10.0)
        lille_host.crash(cause="fig10-kill-lille")
        events.append({"label": 2, "event": "lille killed", "time": grid.env.now})

        # Label 6: restart Lille after the servers had time to fail over.
        yield grid.env.timeout(lille_restart_delay)
        lille_host.restart()
        events.append({"label": 6, "event": "lille restarted", "time": grid.env.now})

        # Label 7: wait until Lille's view is close to Orsay's again (passive
        # replication catching up), then one more replication period.
        while lille.finished_count() < orsay.finished_count() - max(5, n_tasks // 50):
            yield grid.env.timeout(10.0)
        events.append({"label": 7, "event": "lille caught up", "time": grid.env.now})
        yield grid.env.timeout(period)

        # Label 8: kill LRI/Orsay once enough of the campaign has completed.
        while orsay.finished_count() < kill_orsay_fraction * n_tasks:
            yield grid.env.timeout(10.0)
        orsay_host.crash(cause="fig10-kill-orsay")
        events.append({"label": 8, "event": "orsay killed", "time": grid.env.now})
        # The campaign must terminate using the Lille coordinator (label 10);
        # Orsay stays down for the remainder of the run.

    result = run_alcatel_campaign(
        n_tasks=n_tasks,
        servers_per_site=servers_per_site,
        seed=seed,
        driver=driver,
        **kwargs,
    )
    result["events"] = events
    result["tolerated_two_coordinator_faults"] = (
        result["finished_in_time"] and result["completed"] >= result["submitted"]
    )
    return result


@scenario("fig10")
def _fig10() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig10",
        title="Alcatel campaign surviving two consecutive coordinator faults",
        figure="10",
        cell=coordinator_faults_cell,
        base=dict(
            n_tasks=300,
            servers_per_site=None,
            kill_lille_fraction=0.4,
            kill_orsay_fraction=0.75,
            lille_restart_delay=180.0,
        ),
        seeds=(0,),
        outputs=("makespan", "completed", "events", "tolerated_two_coordinator_faults"),
        scales={
            "tiny": dict(
                n_tasks=120,
                servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8},
                seeds=(3,),
            ),
        },
        reduce=completion_curve_rows,
    )


def run_fig10(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    kill_lille_fraction: float = 0.4,
    kill_orsay_fraction: float = 0.75,
    lille_restart_delay: float = 180.0,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """Run the two-consecutive-coordinator-faults scenario."""
    result = run_scenario(
        _fig10,
        params=dict(
            n_tasks=n_tasks,
            servers_per_site=servers_per_site,
            kill_lille_fraction=kill_lille_fraction,
            kill_orsay_fraction=kill_orsay_fraction,
            lille_restart_delay=lille_restart_delay,
            **kwargs,
        ),
        seeds=(seed,),
        jobs=1,
    )
    return dict(result.cells[0]["outputs"])
