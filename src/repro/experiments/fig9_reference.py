"""EXP-F9 — Figure 9: reference execution of the Alcatel campaign (no fault).

A single client submits the validation tasks to the Lille coordinator; the
LRI (Orsay) coordinator is its passive replica with a 60 s replication
period; servers at Lille, Wisconsin and Orsay pull work from Lille.  The
figure plots the number of completed tasks as seen by each coordinator over
time: the Lille curve grows continuously while the LRI curve follows it in
60-second plateaux (the discrete replication rounds).

The default task count and server population are scaled down from the paper's
1000 tasks / ~280 servers so the run stays fast; pass ``n_tasks=1000`` and a
larger ``servers_per_site`` for the full-size campaign.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.config import ProtocolConfig
from repro.grid.builder import Grid, build_internet_testbed
from repro.workloads.alcatel import AlcatelWorkload

__all__ = ["run_alcatel_campaign", "run_fig9"]


def run_alcatel_campaign(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    median_duration: float = 110.0,
    replication_period: float = 60.0,
    seed: int = 0,
    horizon: float = 30_000.0,
    client_preferred: str = "lille",
    prepare: Callable[[Grid], None] | None = None,
    driver: Callable[[Grid, AlcatelWorkload], Any] | None = None,
    sample_period: float = 60.0,
) -> dict[str, Any]:
    """Run one Alcatel campaign on the Internet testbed and collect its curves.

    ``prepare`` is called after the grid is built but before it starts (used
    by the partition scenario to rewire registries); ``driver`` is an optional
    generator factory spawned alongside the workload (used by the coordinator
    fault scenario to kill/restart coordinators at completion thresholds).
    """
    servers_per_site = servers_per_site or {"lille": 20, "wisconsin": 20, "orsay": 20}
    protocol = ProtocolConfig()
    protocol.coordinator.replication.period = replication_period
    grid = build_internet_testbed(
        servers_per_site=servers_per_site,
        coordinator_sites=("lille", "orsay"),
        protocol=protocol,
        seed=seed,
        client_preferred=client_preferred,
    )
    if prepare is not None:
        prepare(grid)
    grid.start()

    workload = AlcatelWorkload(n_tasks=n_tasks, median_duration=median_duration, seed=seed + 1)
    process = grid.run_process(workload.run(grid.client), name="alcatel-campaign")
    if driver is not None:
        grid.env.process(driver(grid, workload), name="scenario-driver")

    finished = grid.run_until(process, timeout=horizon)
    makespan = workload.makespan if finished else grid.env.now

    lille_times, lille_counts = grid.completed_series("lille").as_arrays()
    orsay_times, orsay_counts = grid.completed_series("orsay").as_arrays()
    sample_grid = np.arange(0.0, grid.env.now + sample_period, sample_period)
    return {
        "makespan": float(makespan),
        "completed": workload.completed_count(),
        "submitted": len(workload.handles),
        "finished_in_time": finished,
        "sample_times": [float(t) for t in sample_grid],
        "lille_completed": [
            float(v) for v in grid.completed_series("lille").resample(sample_grid)
        ],
        "orsay_completed": [
            float(v) for v in grid.completed_series("orsay").resample(sample_grid)
        ],
        "lille_raw": (list(map(float, lille_times)), list(map(float, lille_counts))),
        "orsay_raw": (list(map(float, orsay_times)), list(map(float, orsay_counts))),
        "counters": dict(grid.monitor.counters),
        "traces": {
            "crashes": [
                (t.time, t.payload.get("address")) for t in grid.monitor.traces_of("crash")
            ],
            "restarts": [
                (t.time, t.payload.get("address"))
                for t in grid.monitor.traces_of("restart")
            ],
        },
    }


def run_fig9(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """The reference (fault-free) execution of Figure 9."""
    result = run_alcatel_campaign(
        n_tasks=n_tasks, servers_per_site=servers_per_site, seed=seed, **kwargs
    )
    # Plateaux metric: how far the replica's curve lags behind the primary's.
    lille = np.asarray(result["lille_completed"])
    orsay = np.asarray(result["orsay_completed"])
    lag = lille - orsay
    result["replica_mean_lag_tasks"] = float(lag.mean()) if len(lag) else 0.0
    result["replica_max_lag_tasks"] = float(lag.max()) if len(lag) else 0.0
    return result
