"""EXP-F9 — Figure 9: reference execution of the Alcatel campaign (no fault).

A single client submits the validation tasks to the Lille coordinator; the
LRI (Orsay) coordinator is its passive replica with a 60 s replication
period; servers at Lille, Wisconsin and Orsay pull work from Lille.  The
figure plots the number of completed tasks as seen by each coordinator over
time: the Lille curve grows continuously while the LRI curve follows it in
60-second plateaux (the discrete replication rounds).

The default task count and server population are scaled down from the paper's
1000 tasks / ~280 servers so the run stays fast; pass ``n_tasks=1000`` and a
larger ``servers_per_site`` for the full-size campaign.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.config import ProtocolConfig
from repro.grid.builder import build_internet_testbed
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import CellResult, ScenarioSpec
from repro.workloads.alcatel import AlcatelWorkload

__all__ = ["run_alcatel_campaign", "run_fig9"]


def run_alcatel_campaign(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    median_duration: float = 110.0,
    replication_period: float = 60.0,
    seed: int = 0,
    horizon: float = 30_000.0,
    client_preferred: str = "lille",
    components: Sequence[Any] = (),
    driver_components: Sequence[Any] = (),
    sample_period: float = 60.0,
) -> dict[str, Any]:
    """Run one Alcatel campaign on the Internet testbed and collect its curves.

    ``components`` are extra platform components built into the grid before
    it starts (instances, registered names, or ``{"name", "params"}``
    entries — the partition scenario wires its inconsistent views this way);
    ``driver_components`` join *after* the workload process is spawned — the
    lifecycle slot scenario drivers have always used, so a script migrated
    from a ``driver`` callback onto an ``inject.script`` entry replays the
    exact same event sequence.
    """
    servers_per_site = servers_per_site or {"lille": 20, "wisconsin": 20, "orsay": 20}
    protocol = ProtocolConfig()
    protocol.coordinator.replication.period = replication_period
    grid = build_internet_testbed(
        servers_per_site=servers_per_site,
        coordinator_sites=("lille", "orsay"),
        protocol=protocol,
        seed=seed,
        client_preferred=client_preferred,
        components=components,
    )
    grid.start()

    workload = AlcatelWorkload(n_tasks=n_tasks, median_duration=median_duration, seed=seed + 1)
    process = grid.run_process(workload.run(grid.client), name="alcatel-campaign")
    for entry in driver_components:
        grid.add_component(entry)

    finished = grid.run_until(process, timeout=horizon)
    makespan = workload.makespan if finished else grid.env.now

    lille_times, lille_counts = grid.completed_series("lille").as_arrays()
    orsay_times, orsay_counts = grid.completed_series("orsay").as_arrays()
    sample_grid = np.arange(0.0, grid.env.now + sample_period, sample_period)
    return {
        "makespan": float(makespan),
        "completed": workload.completed_count(),
        "submitted": len(workload.handles),
        "finished_in_time": finished,
        "sample_times": [float(t) for t in sample_grid],
        "lille_completed": [
            float(v) for v in grid.completed_series("lille").resample(sample_grid)
        ],
        "orsay_completed": [
            float(v) for v in grid.completed_series("orsay").resample(sample_grid)
        ],
        "lille_raw": (list(map(float, lille_times)), list(map(float, lille_counts))),
        "orsay_raw": (list(map(float, orsay_times)), list(map(float, orsay_counts))),
        "counters": dict(grid.monitor.counters),
        "traces": {
            "crashes": [
                (t.time, t.payload.get("address")) for t in grid.monitor.traces_of("crash")
            ],
            "restarts": [
                (t.time, t.payload.get("address"))
                for t in grid.monitor.traces_of("restart")
            ],
        },
    }


def reference_cell(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    median_duration: float = 110.0,
    replication_period: float = 60.0,
    seed: int = 0,
    horizon: float = 30_000.0,
    sample_period: float = 60.0,
) -> dict[str, Any]:
    """Scenario cell: one fault-free campaign plus the replica-lag metrics."""
    result = run_alcatel_campaign(
        n_tasks=n_tasks,
        servers_per_site=servers_per_site,
        median_duration=median_duration,
        replication_period=replication_period,
        seed=seed,
        horizon=horizon,
        sample_period=sample_period,
    )
    # Plateaux metric: how far the replica's curve lags behind the primary's.
    lille = np.asarray(result["lille_completed"])
    orsay = np.asarray(result["orsay_completed"])
    lag = lille - orsay
    result["replica_mean_lag_tasks"] = float(lag.mean()) if len(lag) else 0.0
    result["replica_max_lag_tasks"] = float(lag.max()) if len(lag) else 0.0
    return result


def completion_curve_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """Figure rows: the two coordinators' completion curves over time."""
    rows: list[dict[str, Any]] = []
    for result in results:
        out = result.outputs
        for t, lille, orsay in zip(
            out["sample_times"], out["lille_completed"], out["orsay_completed"]
        ):
            rows.append(
                {
                    "seed": result.seed,
                    "time_seconds": t,
                    "lille_completed": lille,
                    "orsay_completed": orsay,
                }
            )
    return rows


@scenario("fig9")
def _fig9() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig9",
        title="Reference Alcatel campaign (no fault): completion curves",
        figure="9",
        cell=reference_cell,
        base=dict(
            n_tasks=300,
            servers_per_site=None,
            median_duration=110.0,
            replication_period=60.0,
            horizon=30_000.0,
            sample_period=60.0,
        ),
        seeds=(0,),
        outputs=("makespan", "completed", "lille_completed", "orsay_completed"),
        scales={
            "tiny": dict(
                n_tasks=60,
                servers_per_site={"lille": 6, "wisconsin": 6, "orsay": 6},
                median_duration=40.0,
                seeds=(3,),
            ),
        },
        reduce=completion_curve_rows,
    )


def run_fig9(
    n_tasks: int = 300,
    servers_per_site: dict[str, int] | None = None,
    seed: int = 0,
    **kwargs: Any,
) -> dict[str, Any]:
    """The reference (fault-free) execution of Figure 9."""
    result = run_scenario(
        _fig9,
        params=dict(n_tasks=n_tasks, servers_per_site=servers_per_site, **kwargs),
        seeds=(seed,),
        jobs=1,
    )
    return dict(result.cells[0]["outputs"])
