"""EXP-F6 — Figure 6: client/coordinator synchronization time.

Compares the two directions of the crash-recovery synchronization:

* **using client logs only** — the coordinator lost its registrations (fresh
  coordinator); the client rebuilds the coordinator's state by reading its
  local log list and pushing the missing submissions;
* **using coordinator logs only** — the client lost its log (optimistic crash
  window, or a re-launched client on another machine); it must first retrieve
  the list of registered calls from the coordinator (an extra round trip) and
  then pull back their data.

Expected shape: rebuilding from the client's logs is several times faster at
small sizes/counts (one local disk access versus an extra request/reply on
the loaded coordinator); the gap narrows as the data volume grows and the
transfer time dominates both directions.

Both panels are registered as scenarios (``fig6-size``, ``fig6-calls``); the
``run_*`` functions are thin wrappers kept for the benchmarks and
EXPERIMENTS.md flows.
"""

from __future__ import annotations

from typing import Any

from repro.config import ProtocolConfig
from repro.core.protocol import CallDescription
from repro.grid.builder import Grid, build_confined_cluster
from repro.net.message import Message, MessageType
from repro.scenarios.reducers import grouped
from repro.scenarios.registry import scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec
from repro.workloads.sweep import geometric_counts, geometric_sizes
from repro.workloads.synthetic import SyntheticWorkload

__all__ = ["run_fig6_vs_size", "run_fig6_vs_calls", "measure_sync_time"]

_DIRECTIONS = ("client-logs", "coordinator-logs")


def _build(seed: int = 0, quiet: bool = True) -> Grid:
    protocol = ProtocolConfig()
    protocol.coordinator.replication.enabled = False
    if quiet:
        # The client-logs direction is measured in isolation: silence the
        # periodic result polls (issued explicitly by the driver instead) and
        # the idle servers' work requests.  The coordinator-logs direction
        # needs both to run its warm-up workload.
        protocol.client.result_poll_period = 10_000.0
        protocol.server.work_poll_period = 10_000.0
    grid = build_confined_cluster(
        n_servers=2, n_coordinators=1, protocol=protocol, seed=seed
    )
    grid.start()
    return grid


def _populate_client_logs(grid: Grid, n_calls: int, params_bytes: int) -> None:
    """Give the client N durable, unregistered submissions (logs client-side).

    The submissions are written straight into the client's durable log,
    bypassing the coordinator entirely — exactly the state a client is in
    when the coordinator restarted from scratch.
    """
    client = grid.client
    for _ in range(n_calls):
        identity = client.session.allocate()
        description = CallDescription(
            identity=identity,
            service="sleep",
            params_bytes=params_bytes,
            result_bytes=32,
            exec_time=0.0,
        )
        key = identity.rpc.value
        client.log.append(key, description.to_payload(), description.wire_bytes)
        client.log.mark_durable(key)


def measure_sync_time(
    direction: str, n_calls: int, params_bytes: int, seed: int = 0
) -> float:
    """One synchronization, timed at the client.

    ``direction`` is ``"client-logs"`` or ``"coordinator-logs"``.
    """
    grid = _build(seed=seed, quiet=(direction == "client-logs"))
    client = grid.client
    coordinator = grid.coordinators[0]
    timings: dict[str, float] = {}

    if direction == "client-logs":
        _populate_client_logs(grid, n_calls, params_bytes)
        # Let the start-up traffic (initial server synchronisations) drain so
        # only the synchronization exchange itself is timed.
        grid.run(until=5.0)
        delivered = {"count": 0}

        def hook(message: Message) -> None:
            if (
                message.mtype is MessageType.RPC_SUBMIT
                and message.dest == coordinator.address
            ):
                delivered["count"] += 1

        grid.network.add_delivery_hook(hook)

        def driver():
            timings["start"] = grid.env.now
            yield from client.synchronize()
            # The coordinator's state is rebuilt once every pushed log record
            # has reached it (the "actual logs exchange" of the paper).
            while delivered["count"] < n_calls:
                yield grid.env.timeout(0.02)
            timings["end"] = grid.env.now

    elif direction == "coordinator-logs":
        # Register + finish N calls on the coordinator, then wipe the client's
        # view (fresh client instance after a crash that lost its logs).
        workload = SyntheticWorkload(
            n_calls=n_calls, exec_time=0.0, params_bytes=params_bytes,
            result_bytes=params_bytes,
        )
        warmup = grid.run_process(workload.run(client), name="fig6-warmup")
        grid.run_until(warmup, timeout=100_000.0)
        # Simulate losing the client-side logs and handles.
        client.log._durable.clear()  # noqa: SLF001 - deliberate crash simulation
        client.log._buffered.clear()  # noqa: SLF001
        client.handles.clear()

        def driver():
            timings["start"] = grid.env.now
            plan = yield from client.synchronize()
            # The client now knows which timestamps it lost; pull their data
            # back from the coordinator (results archive transfer).
            lost = list(plan.client_lost) if plan is not None else []
            if lost:
                arrived = {"done": False}

                def hook(message: Message) -> None:
                    if (
                        message.mtype is MessageType.RESULT_REPLY
                        and message.dest == client.address
                        and len(message.payload.get("results", [])) >= len(lost)
                    ):
                        arrived["done"] = True

                grid.network.add_delivery_hook(hook)
                reply_sizes = sum(
                    coordinator.results[key].size_bytes
                    for key in coordinator.results
                    if key[2] in set(lost)
                )
                client.host.send(
                    Message(
                        mtype=MessageType.RESULT_PULL,
                        source=client.address,
                        dest=coordinator.address,
                        payload={
                            "session": (
                                client.session.user.value,
                                client.session.session_id.value,
                            ),
                            "pending": lost,
                        },
                        size_bytes=64 + 8 * len(lost),
                    )
                )
                # Wait until the full reply has been delivered back to the
                # client, or a generous deadline passes.
                deadline = grid.env.now + 1000.0 + reply_sizes / 1e6
                while grid.env.now < deadline and not arrived["done"]:
                    yield grid.env.timeout(0.02)
            timings["end"] = grid.env.now

    else:
        raise ValueError(f"unknown direction {direction!r}")

    process = grid.host_of(client).spawn(driver(), name="fig6-driver")
    grid.run_until(process, timeout=100_000.0)
    return timings.get("end", float("nan")) - timings.get("start", 0.0)


def sync_cell(
    direction: str, n_calls: int, params_bytes: int, seed: int = 0
) -> dict[str, Any]:
    """Scenario cell: one timed synchronization in one direction."""
    seconds = measure_sync_time(direction, n_calls, params_bytes, seed=seed)
    return {"sync_seconds": seconds}


def _pivot_directions(group_key: str, fixed_key: str):
    """Rows keyed by ``group_key`` with one column per sync direction."""

    def reduce(results: list[CellResult]) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for (value,), cells in grouped(results, (group_key,)).items():
            by_direction = {
                cell.params["direction"]: cell.outputs["sync_seconds"]
                for cell in cells
            }
            client_logs = by_direction.get("client-logs", float("nan"))
            coord_logs = by_direction.get("coordinator-logs", float("nan"))
            rows.append(
                {
                    group_key: value,
                    fixed_key: cells[0].params[fixed_key],
                    "client_logs": client_logs,
                    "coordinator_logs": coord_logs,
                    "coordinator_over_client": (
                        coord_logs / client_logs if client_logs > 0 else float("nan")
                    ),
                }
            )
        return rows

    return reduce


@scenario("fig6-size")
def _fig6_size() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig6-size",
        title="Client/coordinator synchronization time vs data size",
        figure="6 (left)",
        cell=sync_cell,
        base=dict(n_calls=16),
        axes=(
            Axis("params_bytes", tuple(geometric_sizes())),
            Axis("direction", _DIRECTIONS),
        ),
        seeds=(0,),
        outputs=("sync_seconds",),
        scales={"tiny": {"params_bytes": (1_000, 1_000_000), "n_calls": 8}},
        reduce=_pivot_directions("params_bytes", "n_calls"),
    )


@scenario("fig6-calls")
def _fig6_calls() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig6-calls",
        title="Client/coordinator synchronization time vs number of calls",
        figure="6 (right)",
        cell=sync_cell,
        base=dict(params_bytes=300),
        axes=(
            Axis("n_calls", tuple(geometric_counts())),
            Axis("direction", _DIRECTIONS),
        ),
        seeds=(0,),
        outputs=("sync_seconds",),
        scales={"tiny": {"n_calls": (8, 64)}},
        reduce=_pivot_directions("n_calls", "params_bytes"),
    )


def run_fig6_vs_size(
    sizes: list[int] | None = None, n_calls: int = 16, seed: int = 0
) -> list[dict[str, Any]]:
    """Left panel of Figure 6: synchronization time vs data size."""
    return run_scenario(
        _fig6_size,
        axes={"params_bytes": sizes} if sizes is not None else None,
        params={"n_calls": n_calls},
        seeds=(seed,),
        jobs=1,
    ).rows


def run_fig6_vs_calls(
    counts: list[int] | None = None, params_bytes: int = 300, seed: int = 0
) -> list[dict[str, Any]]:
    """Right panel of Figure 6: synchronization time vs number of calls."""
    return run_scenario(
        _fig6_calls,
        axes={"n_calls": counts} if counts is not None else None,
        params={"params_bytes": params_bytes},
        seeds=(seed,),
        jobs=1,
    ).rows
