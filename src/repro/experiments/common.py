"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["format_rows", "print_rows", "mean"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty iterable)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def format_rows(rows: list[dict[str, Any]], title: str | None = None) -> str:
    """Render rows as a fixed-width table (what the harness prints)."""
    if not rows:
        return f"{title or ''}\n(no data)"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def print_rows(rows: list[dict[str, Any]], title: str | None = None) -> None:
    """Print rows as a table (used by benchmarks and examples)."""
    print(format_rows(rows, title=title))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
