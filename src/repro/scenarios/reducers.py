"""Small helpers for spec ``reduce`` callables.

A reduce step turns the per-cell results of a sweep into the rows the figure
plots.  Most figures follow the same two shapes — group the cells by one or
two swept parameters, then average the replicates (seeds) and/or pivot one
axis into columns — so the grouping helper lives here and each experiment
module keeps only its figure-specific row assembly.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.scenarios.spec import CellResult

__all__ = ["grouped", "mean"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def grouped(
    results: Sequence[CellResult], keys: Sequence[str]
) -> dict[tuple, list[CellResult]]:
    """Group cell results by the values of ``keys``, preserving cell order."""
    groups: dict[tuple, list[CellResult]] = {}
    for result in results:
        group = tuple(result.params[key] for key in keys)
        groups.setdefault(group, []).append(result)
    return groups
