"""Parallel sweep execution over a scenario's cells.

Every cell of a resolved sweep is one independent, deterministic simulation
(its own environment, RNG streams and monitor, fully described by the merged
parameters plus the seed), so a sweep is embarrassingly parallel: the
:class:`SweepRunner` fans the cells out over a ``ProcessPoolExecutor`` and
reassembles the results in cell order, which makes the parallel run
row-for-row identical to the sequential fallback (``jobs=1``) for the same
seeds.  Workers receive the cell kernel (a module-level callable, pickled by
reference) plus plain parameter dictionaries — nothing else crosses the
process boundary, so ad-hoc specs work under both fork and spawn start
methods.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import CellResult, ScenarioSpec, SweepCell, SweepPlan
from repro.scenarios.store import ResultsStore, RunResult

__all__ = ["SweepRunner", "run_scenario"]


def _execute_cell(
    cell: Callable[..., dict[str, Any]],
    call_params: dict[str, Any],
    timeout: float | None = None,
) -> tuple[dict[str, Any], float]:
    """Worker entry point: run one cell kernel, timing it.

    Runs in the parent for sequential sweeps and in pool workers for parallel
    ones.  With a ``timeout`` the kernel runs in a disposable child process
    that is killed at the deadline (see :func:`_execute_cell_with_timeout`).
    """
    started = time.perf_counter()
    if timeout is not None:
        outputs = _execute_cell_with_timeout(cell, call_params, timeout)
    else:
        outputs = cell(**call_params)
    return outputs, time.perf_counter() - started


def _timeout_cell_worker(
    cell: Callable[..., dict[str, Any]], call_params: dict[str, Any], pipe
) -> None:
    """Child-process entry point for budgeted cells: outcome down the pipe."""
    try:
        pipe.send(("ok", cell(**call_params)))
    except BaseException as error:  # noqa: BLE001 - relayed to the parent
        try:
            pipe.send(("error", error))
        except Exception:
            pipe.send(("error", RuntimeError(repr(error))))
    finally:
        pipe.close()


def _execute_cell_with_timeout(
    cell: Callable[..., dict[str, Any]], call_params: dict[str, Any], timeout: float
) -> dict[str, Any]:
    """Run one kernel under a wall-clock budget; kill and record on overrun.

    A cell that exceeds the budget is terminated and reported as
    ``{"timed_out": True, "cell_timeout": <budget>}`` instead of hanging the
    sweep.  Environments where a child process cannot start (restricted
    sandboxes) degrade to inline execution — no enforcement, but no failure.
    Kernel errors re-raise in the caller, exactly like the un-budgeted path.
    """
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    try:
        receiver, sender = context.Pipe(duplex=False)
    except (OSError, PermissionError):
        return cell(**call_params)
    try:
        child = context.Process(
            target=_timeout_cell_worker, args=(cell, call_params, sender)
        )
        child.start()
    except (OSError, PermissionError, pickle.PicklingError, AttributeError):
        receiver.close()
        sender.close()
        return cell(**call_params)
    sender.close()
    try:
        if receiver.poll(timeout):
            try:
                status, payload = receiver.recv()
            except EOFError:
                child.join()
                raise RuntimeError(
                    f"cell worker died without reporting (exit code "
                    f"{child.exitcode})"
                ) from None
            child.join()
            if status == "error":
                raise payload
            return payload
        child.terminate()
        child.join()
        return {"timed_out": True, "cell_timeout": timeout}
    finally:
        receiver.close()


class SweepRunner:
    """Enumerate and execute the cells of one scenario sweep."""

    def __init__(
        self,
        spec: ScenarioSpec | str,
        scale: str | None = None,
        jobs: int | None = None,
        seeds: Sequence[int] | None = None,
        axes: Mapping[str, Sequence[Any]] | None = None,
        params: Mapping[str, Any] | None = None,
        store: ResultsStore | None = None,
        resume: bool = False,
        paired_axes: Sequence[str] | None = None,
    ) -> None:
        self.spec = get_scenario(spec) if isinstance(spec, str) else spec
        self.plan: SweepPlan = self.spec.resolve(
            scale=scale, seeds=seeds, axes=axes, params=params
        )
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.store = store
        #: axes whose arms must share identical fault-stream fingerprints
        #: (common random numbers); falls back to the spec's declaration.
        self.paired_axes = tuple(
            paired_axes if paired_axes is not None else self.spec.paired_axes
        )
        axis_names = {axis.name for axis in self.plan.axes}
        unknown = set(self.paired_axes) - axis_names
        if unknown:
            raise ConfigurationError(
                f"paired_axes {sorted(unknown)} are not axes of scenario "
                f"{self.spec.name!r}"
            )
        #: skip cells whose (spec hash, index, seed) already have a stored
        #: checkpoint; requires a store.
        self.resume = resume and store is not None
        #: cells reused from checkpoints by the last :meth:`run` call.
        self.resumed_cells = 0

    # ------------------------------------------------------------------- run
    def run(self, save: bool = False) -> RunResult:
        """Execute every cell and return the assembled :class:`RunResult`.

        With ``save=True`` (or a store passed at construction *and*
        ``save=True``) the artifact is written and its path recorded under
        ``result.manifest["artifact"]``.  When a store is involved, each
        finished cell is also checkpointed as it completes, so an
        interrupted sweep can be picked up by a later ``resume=True`` run
        of the same resolution without recomputing the finished cells.
        """
        cells = self.plan.cells()
        spec_hash = self.spec.spec_hash(self.plan)
        checkpointing = self.store is not None and (save or self.resume)
        done: dict[tuple[int, int], tuple[dict[str, Any], float]] = {}
        if self.resume:
            stored = self.store.load_cells(self.spec.name, spec_hash)
            keys = {(cell.index, cell.seed) for cell in cells}
            done = {key: outcome for key, outcome in stored.items() if key in keys}
        self.resumed_cells = len(done)

        started_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        started = time.perf_counter()
        todo = [cell for cell in cells if (cell.index, cell.seed) not in done]
        parallel = self.jobs > 1 and len(todo) > 1
        if parallel:
            fresh = self._run_parallel(todo, spec_hash if checkpointing else None)
            parallel = fresh is not None
        if not parallel:
            fresh = []
            for cell in todo:
                outcome = _execute_cell(
                    self.spec.cell, cell.call_params, self.spec.cell_timeout
                )
                if checkpointing:
                    self._checkpoint(spec_hash, cell, outcome)
                fresh.append(outcome)
        for cell, outcome in zip(todo, fresh):
            done[(cell.index, cell.seed)] = outcome
        raw = [done[(cell.index, cell.seed)] for cell in cells]
        wall = time.perf_counter() - started

        results = [
            CellResult(
                index=cell.index,
                params=dict(cell.params),
                seed=cell.seed,
                outputs=outputs,
                wall_seconds=cell_wall,
            )
            for cell, (outputs, cell_wall) in zip(cells, raw)
        ]
        if self.paired_axes:
            self._assert_paired(results)
        rows = (
            self.spec.reduce(results)
            if self.spec.reduce is not None
            else [result.row() for result in results]
        )
        result = RunResult(
            scenario=self.spec.name,
            scale=self.plan.scale,
            spec_hash=self.spec.spec_hash(self.plan),
            seeds=self.plan.seeds,
            rows=rows,
            cells=[
                {
                    "params": dict(r.params),
                    "seed": r.seed,
                    "outputs": dict(r.outputs),
                    "wall_seconds": r.wall_seconds,
                }
                for r in results
            ],
            jobs=self.jobs if parallel else 1,
            parallel=parallel,
            wall_seconds=wall,
            started_at=started_at,
            title=self.spec.title,
            figure=self.spec.figure,
            manifest=self.spec.manifest(self.plan),
        )
        if self.resumed_cells:
            result.manifest["resumed_cells"] = self.resumed_cells
        if save:
            store = self.store or ResultsStore()
            result.manifest["artifact"] = str(store.save(result))
        return result

    def _assert_paired(self, results: list[CellResult]) -> None:
        """Verify common-random-numbers pairing across the paired axes.

        Cells that agree on every parameter *except* the paired axes (and on
        the seed) form one pairing group; all members must report identical
        ``fault_streams`` fingerprints, i.e. the same fault streams existed
        and consumed the same number of draws in every arm.  A divergence
        means a policy arm perturbed the fault schedule it was supposed to be
        measured under, so the sweep's comparison is unsound — fail loudly.
        """
        paired = set(self.paired_axes)
        groups: dict[str, list[CellResult]] = {}
        for result in results:
            if isinstance(result.outputs, Mapping) and result.outputs.get("timed_out"):
                continue
            rest = {k: v for k, v in result.params.items() if k not in paired}
            key = json.dumps(
                {"params": rest, "seed": result.seed}, sort_keys=True, default=str
            )
            groups.setdefault(key, []).append(result)
        for members in groups.values():
            if len(members) < 2:
                continue
            fingerprints = []
            for member in members:
                # An empty dict is a valid fingerprint (a fully deterministic
                # fault plan draws nothing); only a missing one is an error.
                streams = member.outputs.get("fault_streams")
                if streams is None:
                    raise ConfigurationError(
                        f"scenario {self.spec.name!r} declares paired axes "
                        f"{sorted(paired)} but cell {member.index} (seed "
                        f"{member.seed}) recorded no fault_streams fingerprint; "
                        "the cell kernel must run with record_fault_streams"
                    )
                fingerprints.append(streams)
            reference = fingerprints[0]
            for member, streams in zip(members[1:], fingerprints[1:]):
                if streams != reference:
                    arm = {k: member.params.get(k) for k in sorted(paired)}
                    base = {
                        k: members[0].params.get(k) for k in sorted(paired)
                    }
                    raise ConfigurationError(
                        f"scenario {self.spec.name!r}: fault streams diverge "
                        f"across paired axes (seed {member.seed}): arm {arm} "
                        f"disagrees with arm {base} — the arms did not see "
                        "the same fault schedule"
                    )

    def _checkpoint(
        self, spec_hash: str, cell: SweepCell, outcome: tuple[dict[str, Any], float]
    ) -> None:
        outputs, cell_wall = outcome
        # A timed-out placeholder is not a finished measurement: leaving it
        # un-checkpointed lets a later --resume retry the cell (e.g. after
        # transient machine load) instead of keeping the poisoned row forever.
        if isinstance(outputs, dict) and outputs.get("timed_out"):
            return
        self.store.save_cell(
            self.spec.name, spec_hash, cell.index, cell.seed, outputs, cell_wall
        )

    def _run_parallel(
        self, cells: list[SweepCell], checkpoint_hash: str | None = None
    ) -> list[tuple[dict[str, Any], float]] | None:
        """Fan the cells out over a process pool; ``None`` → fall back.

        Results come back in cell order regardless of completion order (each
        is checkpointed as its future completes when a checkpoint hash is
        given).  A pool that cannot start (restricted sandboxes) or a cell
        that cannot cross the process boundary (a non-module-level kernel)
        degrades to the sequential path instead of failing the sweep;
        genuine cell errors still propagate.
        """
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            # Fork keeps worker start-up cheap (no re-import per worker).
            context = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(cells)), mp_context=context
            ) as pool:
                futures = {
                    pool.submit(
                        _execute_cell,
                        self.spec.cell,
                        cell.call_params,
                        self.spec.cell_timeout,
                    ): cell
                    for cell in cells
                }
                if checkpoint_hash is not None:
                    # Checkpoint every success even when some cell fails —
                    # a resume after the failure must not recompute cells
                    # that had already finished by the time it struck.
                    first_error: BaseException | None = None
                    for future in as_completed(futures):
                        try:
                            outcome = future.result()
                        except (OSError, PermissionError, pickle.PicklingError,
                                AttributeError):
                            raise
                        except BaseException as error:  # noqa: BLE001
                            first_error = first_error or error
                            continue
                        self._checkpoint(checkpoint_hash, futures[future], outcome)
                    if first_error is not None:
                        raise first_error
                return [future.result() for future in futures]
        except (OSError, PermissionError, pickle.PicklingError, AttributeError):
            return None


def run_scenario(
    spec: ScenarioSpec | str,
    scale: str | None = None,
    jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    axes: Mapping[str, Sequence[Any]] | None = None,
    params: Mapping[str, Any] | None = None,
    store: ResultsStore | None = None,
    save: bool = False,
    resume: bool = False,
    paired_axes: Sequence[str] | None = None,
) -> RunResult:
    """One-call convenience over :class:`SweepRunner`."""
    return SweepRunner(
        spec, scale=scale, jobs=jobs, seeds=seeds, axes=axes, params=params,
        store=store, resume=resume, paired_axes=paired_axes,
    ).run(save=save)
