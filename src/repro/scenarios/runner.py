"""Parallel sweep execution over a scenario's cells.

Every cell of a resolved sweep is one independent, deterministic simulation
(its own environment, RNG streams and monitor, fully described by the merged
parameters plus the seed), so a sweep is embarrassingly parallel: the
:class:`SweepRunner` fans the cells out over a ``ProcessPoolExecutor`` and
reassembles the results in cell order, which makes the parallel run
row-for-row identical to the sequential fallback (``jobs=1``) for the same
seeds.  Workers receive the cell kernel (a module-level callable, pickled by
reference) plus plain parameter dictionaries — nothing else crosses the
process boundary, so ad-hoc specs work under both fork and spawn start
methods.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Mapping, Sequence

from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import CellResult, ScenarioSpec, SweepCell, SweepPlan
from repro.scenarios.store import ResultsStore, RunResult

__all__ = ["SweepRunner", "run_scenario"]


def _execute_cell(
    cell: Callable[..., dict[str, Any]], call_params: dict[str, Any]
) -> tuple[dict[str, Any], float]:
    """Worker entry point: run one cell kernel, timing it.

    Runs in the parent for sequential sweeps and in pool workers for parallel
    ones.
    """
    started = time.perf_counter()
    outputs = cell(**call_params)
    return outputs, time.perf_counter() - started


class SweepRunner:
    """Enumerate and execute the cells of one scenario sweep."""

    def __init__(
        self,
        spec: ScenarioSpec | str,
        scale: str | None = None,
        jobs: int | None = None,
        seeds: Sequence[int] | None = None,
        axes: Mapping[str, Sequence[Any]] | None = None,
        params: Mapping[str, Any] | None = None,
        store: ResultsStore | None = None,
    ) -> None:
        self.spec = get_scenario(spec) if isinstance(spec, str) else spec
        self.plan: SweepPlan = self.spec.resolve(
            scale=scale, seeds=seeds, axes=axes, params=params
        )
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.store = store

    # ------------------------------------------------------------------- run
    def run(self, save: bool = False) -> RunResult:
        """Execute every cell and return the assembled :class:`RunResult`.

        With ``save=True`` (or a store passed at construction *and*
        ``save=True``) the artifact is written and its path recorded under
        ``result.manifest["artifact"]``.
        """
        cells = self.plan.cells()
        started_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        started = time.perf_counter()
        parallel = self.jobs > 1 and len(cells) > 1
        if parallel:
            raw = self._run_parallel(cells)
            parallel = raw is not None
        if not parallel:
            raw = [_execute_cell(self.spec.cell, cell.call_params) for cell in cells]
        wall = time.perf_counter() - started

        results = [
            CellResult(
                index=cell.index,
                params=dict(cell.params),
                seed=cell.seed,
                outputs=outputs,
                wall_seconds=cell_wall,
            )
            for cell, (outputs, cell_wall) in zip(cells, raw)
        ]
        rows = (
            self.spec.reduce(results)
            if self.spec.reduce is not None
            else [result.row() for result in results]
        )
        result = RunResult(
            scenario=self.spec.name,
            scale=self.plan.scale,
            spec_hash=self.spec.spec_hash(self.plan),
            seeds=self.plan.seeds,
            rows=rows,
            cells=[
                {
                    "params": dict(r.params),
                    "seed": r.seed,
                    "outputs": dict(r.outputs),
                    "wall_seconds": r.wall_seconds,
                }
                for r in results
            ],
            jobs=self.jobs if parallel else 1,
            parallel=parallel,
            wall_seconds=wall,
            started_at=started_at,
            title=self.spec.title,
            figure=self.spec.figure,
            manifest=self.spec.manifest(self.plan),
        )
        if save:
            store = self.store or ResultsStore()
            result.manifest["artifact"] = str(store.save(result))
        return result

    def _run_parallel(
        self, cells: list[SweepCell]
    ) -> list[tuple[dict[str, Any], float]] | None:
        """Fan the cells out over a process pool; ``None`` → fall back.

        Results come back in cell order regardless of completion order.  A
        pool that cannot start (restricted sandboxes) or a cell that cannot
        cross the process boundary (a non-module-level kernel) degrades to
        the sequential path instead of failing the sweep; genuine cell
        errors still propagate.
        """
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            # Fork keeps worker start-up cheap (no re-import per worker).
            context = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(cells)), mp_context=context
            ) as pool:
                futures = [
                    pool.submit(_execute_cell, self.spec.cell, cell.call_params)
                    for cell in cells
                ]
                return [future.result() for future in futures]
        except (OSError, PermissionError, pickle.PicklingError, AttributeError):
            return None


def run_scenario(
    spec: ScenarioSpec | str,
    scale: str | None = None,
    jobs: int | None = None,
    seeds: Sequence[int] | None = None,
    axes: Mapping[str, Sequence[Any]] | None = None,
    params: Mapping[str, Any] | None = None,
    store: ResultsStore | None = None,
    save: bool = False,
) -> RunResult:
    """One-call convenience over :class:`SweepRunner`."""
    return SweepRunner(
        spec, scale=scale, jobs=jobs, seeds=seeds, axes=axes, params=params,
        store=store,
    ).run(save=save)
