"""The per-run report shared by the execution engine and its wrappers.

Lives in its own dependency-free module so both :mod:`repro.scenarios.engine`
and the :mod:`repro.grid.runner` compatibility wrapper can import it without
creating a package cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RunReport"]


@dataclass
class RunReport:
    """Outcome of one benchmark run."""

    makespan: float
    submitted: int
    completed: int
    faults_injected: int = 0
    finished_in_time: bool = True
    overhead_vs_ideal: float = 0.0
    ideal_time: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    #: optional extras (stamped only when the engine was asked to record
    #: them, so historical cells keep their exact output shape).
    wrong_suspicions: int | None = None
    suspicion_transitions: int | None = None
    fault_streams: dict[str, str] | None = None
    #: kernel load snapshot (wheel occupancy, flushes, pool hit-rate);
    #: stamped when the engine runs with ``record_kernel=True``.
    kernel: dict[str, Any] | None = None
    #: aggregated crowd-tier counters, flattened into the outputs as
    #: ``crowd_*`` when a ``tier="crowd"`` component took part in the run.
    crowd: dict[str, Any] | None = None

    @property
    def all_completed(self) -> bool:
        """Whether every submitted call got its result back."""
        return self.completed >= self.submitted

    def outputs(self) -> dict[str, Any]:
        """The JSON-able measured outputs stored per sweep cell."""
        out = {
            "makespan": self.makespan,
            "submitted": self.submitted,
            "completed": self.completed,
            "faults_injected": self.faults_injected,
            "finished_in_time": self.finished_in_time,
            "overhead_vs_ideal": self.overhead_vs_ideal,
            "ideal_time": self.ideal_time,
        }
        if self.wrong_suspicions is not None:
            out["wrong_suspicions"] = self.wrong_suspicions
        if self.suspicion_transitions is not None:
            out["suspicion_transitions"] = self.suspicion_transitions
        if self.fault_streams is not None:
            out["fault_streams"] = self.fault_streams
        if self.kernel is not None:
            out["kernel"] = self.kernel
        if self.crowd is not None:
            for key, value in self.crowd.items():
                out[f"crowd_{key}"] = value
        return out
