"""Crowd-tier scenario: a flash crowd against a fixed server pool.

``flash-crowd`` puts a statistical crowd (``tier.crowd``; see
:mod:`repro.crowd`) behind the full-protocol coordinator/server core and
fires the paper's nightmare at it: at ``surge_at`` every client that would
have trickled in over the remaining think window becomes due within
``1/surge_factor`` of it — a sudden 100x submit-rate spike — while a
scripted fault kills one of the sharded coordinators mid-surge.  The sweep
measures what the aggregate tier is for: completion of the whole crowd,
peak queue depth, and how long the dead shard took to hand off to its ring
successor.

``surge_factor`` is a paired axis under the ``crn.`` common-random-numbers
discipline: the calm and surged arms share every fault-stream draw (the
crowd's per-client lanes come from one ``crn.crowd.*`` draw), so the queue
blow-up is attributable to the surge alone.
"""

from __future__ import annotations

from typing import Any

from repro.scenarios.engine import benchmark_cell
from repro.scenarios.reducers import grouped
from repro.scenarios.registry import scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec

__all__ = ["FLASH_CROWD"]


def _flash_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """One row per surge factor.

    Only protocol- and crowd-level fields (deterministic for a given seed)
    are reduced; the ``kernel`` snapshot stays in the per-cell outputs — its
    pool counters are cumulative per worker process, so rows built from them
    would differ between ``--jobs 1`` and ``--jobs 4``.
    """
    rows: list[dict[str, Any]] = []
    for (factor,), cells in grouped(results, ("surge_factor",)).items():
        rows.append(
            {
                "surge_factor": factor,
                "crowd_completion_ratio": min(
                    c.outputs["crowd_completed"] / max(c.outputs["crowd_clients"], 1)
                    for c in cells
                ),
                "all_finished": all(c.outputs["finished_in_time"] for c in cells),
                "double_committed": sum(
                    c.outputs["crowd_duplicate_completions"] for c in cells
                ),
                "max_queue_depth": max(
                    c.outputs["crowd_max_queue_depth"] for c in cells
                ),
                "batch_resends": sum(c.outputs["crowd_batch_resends"] for c in cells),
                "suspicions": sum(c.outputs["crowd_suspicions"] for c in cells),
                "handoffs": sum(c.outputs["crowd_handoffs"] for c in cells),
                "handoff_latency_max_seconds": max(
                    c.outputs["crowd_handoff_latency_max"] for c in cells
                ),
            }
        )
    return rows


@scenario("flash-crowd")
def _flash_crowd() -> ScenarioSpec:
    return ScenarioSpec(
        name="flash-crowd",
        title="Flash crowd: 100x submit surge against sharded coordinators",
        figure=None,
        description=(
            "A statistical crowd (tier.crowd, numpy struct-of-arrays) "
            "submits through coordinators sharded over the client-id space; "
            "at surge_at the remaining arrivals compress 100x while a "
            "scripted fault kills one coordinator mid-surge.  Measures crowd "
            "completion, peak queue depth and shard-handoff latency; the "
            "calm arm (surge_factor=1) rides the same fault streams for a "
            "paired comparison."
        ),
        cell=benchmark_cell,
        base=dict(
            # A token full-protocol workload rides along so the run also
            # exercises the classic client path next to the crowd.
            n_calls=4,
            exec_time=2.0,
            n_servers=8,
            n_coordinators=4,
            spread_servers=True,
            # Crowd parameters ($-interpolated into the component entry).
            crowd_clients=50_000,
            think_window=600.0,
            tick_period=1.0,
            exec_time_per_call=0.002,
            retry_timeout=10.0,
            result_patience=40.0,
            # The kill lands inside the surge drain window, while the dead
            # coordinator's shard still has batches in flight.
            surge_at=60.0,
            kill_at=63.0,
            kill_target="coordinator:cluster-k1",
            horizon=1600.0,
            crn_seed=909,
            run_full_horizon=True,
            record_fault_streams=True,
            record_kernel=True,
        ),
        axes=(Axis("surge_factor", (1.0, 100.0)),),
        seeds=(2,),
        outputs=(
            "completed",
            "submitted",
            "finished_in_time",
            "crowd_completed",
            "crowd_max_queue_depth",
            "crowd_handoff_latency_max",
        ),
        paired_axes=("surge_factor",),
        components=(
            {
                "name": "tier.crowd",
                "params": {
                    "n_clients": "$crowd_clients",
                    "think_window": "$think_window",
                    "tick_period": "$tick_period",
                    "exec_time_per_call": "$exec_time_per_call",
                    "retry_timeout": "$retry_timeout",
                    "result_patience": "$result_patience",
                    "surge_at": "$surge_at",
                    "surge_factor": "$surge_factor",
                },
            },
            {
                "name": "inject.script",
                "params": {
                    "events": [
                        {
                            "time": "$kill_at",
                            "action": "kill",
                            "target": "$kill_target",
                        }
                    ],
                },
            },
        ),
        scales={
            # CI-sized: a 2k crowd over 3 coordinators; the k1 kill still
            # lands mid-surge and forces a real shard handoff.
            "tiny": dict(
                crowd_clients=2000,
                n_servers=4,
                n_coordinators=3,
                think_window=300.0,
                surge_at=30.0,
                kill_at=32.0,
                retry_timeout=8.0,
                result_patience=30.0,
                horizon=900.0,
            ),
        },
        reduce=_flash_rows,
    )


FLASH_CROWD = _flash_crowd
