"""Shared execution core: one declarative cell → one simulated run.

This is where the declarative pieces of a :class:`~repro.scenarios.spec.ScenarioSpec`
meet the simulator: a :class:`GridTopology` names one of the paper's two
platforms, a :class:`WorkloadSpec` names the client workload, a
:class:`FaultPlan` arms the fault injection, and protocol settings come from a
named baseline preset plus dotted-path overrides.  :func:`execute_benchmark`
runs the §5.1 synthetic benchmark over those pieces — it is the engine behind
``repro.grid.runner.run_synthetic_benchmark`` (kept as a thin compatibility
wrapper), the Figure 7 sweep, the baseline ablation and the churn scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from typing import Any, Mapping, Sequence

from repro.baselines import (
    netsolve_style_protocol,
    no_fault_tolerance_protocol,
    rpcv_protocol,
)
from repro.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.grid.builder import Grid, build_confined_cluster, build_internet_testbed
from repro.grid.deployment import confined_cluster_spec, internet_testbed_spec
from repro.nodes.faultgen import ChurnInjector, FaultGenerator
from repro.platform.library import ChurnInjectorComponent, RateFaultInjector
from repro.policies.resolve import (
    reassert_flag_override,
    sync_policy_flags,
    validate_policy_entries,
)
from repro.scenarios.report import RunReport
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "FAULT_STREAM_PREFIXES",
    "FaultPlan",
    "GridTopology",
    "RunReport",
    "WorkloadSpec",
    "execute_benchmark",
    "apply_protocol_overrides",
    "interpolate_params",
    "resolve_protocol",
]

#: RNG stream-name prefixes that drive fault/churn draws; fingerprinting
#: these (and only these) is how paired-CRN sweeps assert that two policy
#: arms consumed identical fault schedules.
FAULT_STREAM_PREFIXES = ("churn.", "faultgen", "correlated", "crn.")

#: named protocol presets a spec can reference instead of a ProtocolConfig.
PROTOCOL_PRESETS = {
    "default": ProtocolConfig,
    "rpc-v": rpcv_protocol,
    "no-replication": no_fault_tolerance_protocol,
    "netsolve-style": netsolve_style_protocol,
}


@dataclass(frozen=True)
class GridTopology:
    """Which platform to build, declaratively."""

    kind: str = "confined"  # "confined" | "internet"
    n_servers: int = 16
    n_coordinators: int = 4
    n_clients: int = 1
    spread_servers: bool = False
    #: Internet testbed placement; ``None`` keeps the builder's default.
    servers_per_site: Mapping[str, int] | None = None
    coordinator_sites: tuple[str, ...] = ("lille", "orsay")
    client_preferred: str = "lille"

    def build(self, protocol: ProtocolConfig | None, seed: int) -> Grid:
        """Instantiate the described platform (not yet started)."""
        if self.kind == "confined":
            return build_confined_cluster(
                n_servers=self.n_servers,
                n_coordinators=self.n_coordinators,
                n_clients=self.n_clients,
                protocol=protocol,
                seed=seed,
                spread_servers=self.spread_servers,
            )
        if self.kind == "internet":
            return build_internet_testbed(
                servers_per_site=dict(self.servers_per_site)
                if self.servers_per_site is not None
                else None,
                coordinator_sites=self.coordinator_sites,
                protocol=protocol,
                seed=seed,
                client_preferred=self.client_preferred,
            )
        raise ConfigurationError(f"unknown topology kind {self.kind!r}")

    def default_protocol(self) -> ProtocolConfig:
        """The platform's own protocol defaults (the spec factories' None branch).

        The probe spec is minimal but *valid* (a zero-server spec fails
        deployment validation); the protocol defaults do not depend on the
        component counts.
        """
        if self.kind == "confined":
            return confined_cluster_spec(n_servers=1, n_coordinators=1).protocol
        return internet_testbed_spec(servers_per_site={"lille": 1}).protocol


@dataclass(frozen=True)
class WorkloadSpec:
    """The client workload of the §5.1 synthetic benchmark."""

    n_calls: int = 96
    exec_time: float = 10.0
    params_bytes: int = 1024
    result_bytes: int = 64
    #: heterogeneous durations: call *i* runs ``exec_time * (1 + spread*f_i)``
    #: with a deterministic sawtooth ``f_i`` (see SyntheticWorkload); 0 keeps
    #: the paper's identical calls.  Scheduler ablations sweep over this.
    exec_time_spread: float = 0.0

    def build(self) -> SyntheticWorkload:
        return SyntheticWorkload(
            n_calls=self.n_calls,
            exec_time=self.exec_time,
            params_bytes=self.params_bytes,
            result_bytes=self.result_bytes,
            exec_time_spread=self.exec_time_spread,
        )

    @property
    def ideal_time(self) -> float:
        """Total serial work; callers divide by the worker count."""
        return self.build().total_work


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault injection over one component tier.

    ``kind`` selects the injector: ``"none"`` (fault-free), ``"rate"`` (the
    Poisson fault generator of Figure 7, parameterised by the aggregate
    ``faults_per_minute``) or ``"churn"`` (per-host volatility driven by an
    exponential churn model — desktop-grid style departures and returns).

    A fault plan is the keyword-argument view of the registered injector
    components (``inject.rate`` / ``inject.churn``): :meth:`component`
    produces the platform component, and :meth:`arm` registers it on a grid.
    Scenario specs can bypass the plan entirely and name the components
    directly in their ``components:`` list.
    """

    kind: str = "none"  # "none" | "rate" | "churn"
    target: str = "servers"  # "servers" | "coordinators"
    faults_per_minute: float = 0.0
    restart_delay: float = 5.0
    #: churn-model parameters (kind == "churn").
    mtbf: float = 600.0
    mttr: float = 30.0
    permanent_fraction: float = 0.0
    #: availability-trace file (kind == "churn"); when set, the exponential
    #: churn model is replaced by the trace's up/down intervals.
    trace: str | None = None
    trace_mode: str = "wrap"  # "wrap" | "clamp"

    def component(self) -> "RateFaultInjector | ChurnInjectorComponent | None":
        """The platform component this plan describes (``None`` when inert)."""
        if self.kind == "none":
            return None
        if self.target not in ("servers", "coordinators"):
            raise ConfigurationError(f"unknown fault target {self.target!r}")
        if self.kind == "rate":
            if self.faults_per_minute <= 0:
                return None
            return RateFaultInjector(
                target=self.target,
                faults_per_minute=self.faults_per_minute,
                restart_delay=self.restart_delay,
            )
        if self.kind == "churn":
            return ChurnInjectorComponent(
                target=self.target,
                mtbf=self.mtbf,
                mttr=self.mttr,
                permanent_fraction=self.permanent_fraction,
                trace=self.trace,
                trace_mode=self.trace_mode,
            )
        raise ConfigurationError(f"unknown fault plan kind {self.kind!r}")

    def arm(self, grid: Grid) -> FaultGenerator | ChurnInjector | None:
        """Register and start the configured injector on ``grid`` (or nothing).

        Returns the underlying injector (the historical contract); the
        wrapping component is registered with the grid's component manager
        and set up through its :class:`~repro.platform.builder.Builder`.
        """
        component = self.component()
        if component is None:
            return None
        grid.add_component(component)
        return component.injector


# ---------------------------------------------------------------------------
# Protocol resolution
# ---------------------------------------------------------------------------


def _known_keys(target: Any) -> str:
    """The valid attribute names at one segment of an override path."""
    if is_dataclass(target):
        keys = [f.name for f in dataclass_fields(target)]
    else:
        keys = [k for k in vars(target) if not k.startswith("_")]
    return ", ".join(sorted(keys)) or "<none>"


def apply_protocol_overrides(
    protocol: ProtocolConfig, overrides: Mapping[str, Any]
) -> ProtocolConfig:
    """Apply dotted-path overrides (``"coordinator.replication.enabled"``).

    Every path must name an existing attribute — typos are configuration
    errors, not silent no-ops, and the error names the valid keys at the
    failing segment.  The mutated config is re-validated.  Overriding a
    legacy flag a policy entry shadows clears that entry (later ``--set``
    flags win over earlier ones, in either direction).
    """
    for path, value in overrides.items():
        target: Any = protocol
        parts = path.split(".")
        for index, part in enumerate(parts):
            if not hasattr(target, part):
                at = ".".join(parts[:index]) or "the protocol root"
                raise ConfigurationError(
                    f"unknown protocol path {path!r}: {part!r} is not a key "
                    f"of {at} (valid keys: {_known_keys(target)})"
                )
            if index < len(parts) - 1:
                target = getattr(target, part)
        setattr(target, parts[-1], value)
        # An explicit legacy-flag override must stay effective despite any
        # shadowing policy entry (cleared, or rewritten for the scheduler's
        # reschedule switch) — later --set flags win, in either direction.
        reassert_flag_override(protocol, path, value)
    return protocol.validate()


def resolve_protocol(
    preset: str | ProtocolConfig | None = None,
    overrides: Mapping[str, Any] | None = None,
) -> ProtocolConfig:
    """Build a ProtocolConfig from a preset name (or instance) plus overrides."""
    if isinstance(preset, ProtocolConfig):
        protocol = preset
    else:
        try:
            factory = PROTOCOL_PRESETS[preset or "default"]
        except KeyError:
            known = ", ".join(sorted(PROTOCOL_PRESETS))
            raise ConfigurationError(
                f"unknown protocol preset {preset!r} (known: {known})"
            ) from None
        protocol = factory()
    if overrides:
        protocol = apply_protocol_overrides(protocol, overrides)
        # Policy entries set via overrides fail fast on an unknown registry
        # key (the CLI calls this once before a sweep burns any time), and
        # the legacy flags are re-mirrored so describe() stays truthful.
        validate_policy_entries(protocol.policy)
        sync_policy_flags(protocol)
    return protocol


# ---------------------------------------------------------------------------
# Component-entry interpolation
# ---------------------------------------------------------------------------


def interpolate_params(value: Any, params: Mapping[str, Any]) -> Any:
    """Resolve ``"$name"`` placeholder strings against ``params``, recursively.

    Component entries on a scenario spec are static data, but their
    parameters often need to follow the sweep ("inject at the swept rate"):
    a string value ``"$faults_per_minute"`` is replaced by the cell's
    parameter of that name.  Unknown placeholders are configuration errors;
    ``"$$x"`` escapes to the literal string ``"$x"``.
    """
    if isinstance(value, str):
        if value.startswith("$$"):
            return value[1:]
        if value.startswith("$"):
            key = value[1:]
            if key not in params:
                known = ", ".join(sorted(params))
                raise ConfigurationError(
                    f"component parameter references unknown cell parameter "
                    f"{value!r} (cell parameters: {known})"
                )
            return params[key]
        return value
    if isinstance(value, Mapping):
        return {k: interpolate_params(v, params) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [interpolate_params(v, params) for v in value]
    return value


# ---------------------------------------------------------------------------
# The execution core
# ---------------------------------------------------------------------------


def execute_benchmark(
    topology: GridTopology,
    workload: WorkloadSpec,
    faults: FaultPlan = FaultPlan(),
    protocol: ProtocolConfig | str | None = None,
    protocol_overrides: Mapping[str, Any] | None = None,
    seed: int = 0,
    horizon: float = 4000.0,
    components: Sequence[Any] = (),
    crn_seed: int | None = None,
    run_full_horizon: bool = False,
    record_fault_streams: bool = False,
    record_detection: bool = False,
    record_kernel: bool = False,
) -> RunReport:
    """Run the §5.1 synthetic benchmark once over the declared pieces.

    Build the platform, start it, launch the workload on the client, arm the
    fault plan and the extra ``components`` (instances, registered names, or
    ``{"name": ..., "params": ...}`` entries from a spec's ``components:``
    list), run to completion (with the ``horizon`` safety deadline) and
    report the numbers the paper plots.

    Extra components join *after* the workload process is spawned — the same
    lifecycle slot the fault plan has always used — so a scenario migrated
    from fault-plan keywords to a ``components:`` entry replays the exact
    same event sequence.

    ``protocol=None`` keeps the platform's own defaults (the confined cluster
    replicates every 5 s, the Internet testbed every 60 s); overrides are then
    applied on top of those defaults, not on a blank configuration.

    The four trailing flags serve paired-CRN comparisons: ``crn_seed`` pins
    the ``crn.``-prefixed fault streams independently of ``seed``,
    ``run_full_horizon`` keeps the simulation running to ``horizon`` even
    after the workload completes (so every arm's churn loops consume the same
    number of draws regardless of when its workload finished),
    ``record_fault_streams`` fingerprints the fault/churn RNG streams into
    the report, and ``record_detection`` stamps the grid-wide suspicion
    accounting (``detect.*`` counters) into the report.
    """
    if protocol is None:
        config = (
            apply_protocol_overrides(topology.default_protocol(), protocol_overrides)
            if protocol_overrides
            else None
        )
    else:
        config = resolve_protocol(protocol, protocol_overrides)
    grid = topology.build(config, seed)
    if crn_seed is not None:
        # Fault/churn streams under the crn. namespace re-key off this seed
        # (no such stream exists yet at this point: they are created lazily
        # by the injectors, which only start below).
        grid.rng.crn_seed = int(crn_seed)
    grid.start()

    bench = workload.build()
    process = grid.run_process(bench.run(grid.client), name="synthetic-benchmark")
    injector = faults.arm(grid)
    extras = [grid.add_component(entry) for entry in components]

    finished = grid.run_until(process, timeout=horizon)
    if run_full_horizon and grid.env.now < horizon:
        # Keep the fault/churn loops running out to the horizon so paired
        # arms consume identical fault-stream draws no matter when their
        # workloads finished.
        grid.env.run(until=horizon)
    grid.stop()

    injected = injector.injected if injector else 0
    injected += sum(int(getattr(extra, "injected", 0)) for extra in extras)
    makespan = bench.makespan if finished else grid.env.now
    ideal = workload.ideal_time / max(len(grid.servers), 1)
    overhead = (makespan - ideal) / ideal if ideal > 0 else 0.0
    report = RunReport(
        makespan=makespan,
        submitted=len(bench.handles),
        completed=bench.completed_count(),
        faults_injected=injected,
        finished_in_time=finished,
        overhead_vs_ideal=overhead,
        ideal_time=ideal,
        counters=dict(grid.monitor.counters),
    )
    if record_detection:
        report.wrong_suspicions = int(
            report.counters.get("detect.wrong_suspicions", 0)
        )
        report.suspicion_transitions = int(
            report.counters.get("detect.suspicions", 0)
            + report.counters.get("detect.rehabilitations", 0)
        )
    if record_fault_streams:
        report.fault_streams = grid.rng.fingerprint(FAULT_STREAM_PREFIXES)
    if record_kernel:
        report.kernel = grid.kernel_stats()
    # A crowd-tier extra contributes its aggregate population to the run's
    # totals (one statistical client = one call) and its counters to the
    # report, so a flash-crowd cell measures the crowd, not just the seed
    # workload riding along.
    crowd_stats: dict[str, Any] = {}
    for extra in extras:
        if getattr(extra, "tier", None) != "crowd":
            continue
        stats = extra.stats()
        report.submitted += int(stats.get("clients", 0))
        report.completed += int(stats.get("completed", 0))
        for key, value in stats.items():
            crowd_stats[key] = crowd_stats.get(key, 0) + value
    if crowd_stats:
        report.crowd = crowd_stats
        report.finished_in_time = report.finished_in_time and (
            crowd_stats.get("completed", 0) >= crowd_stats.get("clients", 0)
        )
    return report


def benchmark_cell(
    seed: int = 0,
    n_calls: int = 96,
    exec_time: float = 10.0,
    n_servers: int = 16,
    n_coordinators: int = 4,
    params_bytes: int = 1024,
    result_bytes: int = 64,
    exec_time_spread: float = 0.0,
    spread_servers: bool = False,
    fault_kind: str = "none",
    fault_target: str = "servers",
    faults_per_minute: float = 0.0,
    restart_delay: float = 5.0,
    mtbf: float = 600.0,
    mttr: float = 30.0,
    permanent_fraction: float = 0.0,
    fault_trace: str | None = None,
    fault_trace_mode: str = "wrap",
    protocol_preset: str | None = None,
    protocol_overrides: Mapping[str, Any] | None = None,
    scheduler_policy: Any = None,
    replication_policy: Any = None,
    logging_policy: Any = None,
    detection_policy: Any = None,
    horizon: float = 4000.0,
    components: Sequence[Any] = (),
    crn_seed: int | None = None,
    run_full_horizon: bool = False,
    record_fault_streams: bool = False,
    record_detection: bool = False,
    record_kernel: bool = False,
    **component_params: Any,
) -> dict[str, Any]:
    """Flat-keyword cell kernel over :func:`execute_benchmark`.

    This is the measurement kernel shared by the Figure 7 sweep, the baseline
    ablation, the churn scenarios and the scheduler ablation: every argument
    is a plain JSON-able value so it can sit directly on a spec's ``base`` or
    ``axes``.

    ``components`` entries (``{"name": ..., "params": {...}}``) are resolved
    through the platform registry; parameter values of the form ``"$key"``
    are interpolated against this cell's own parameters, so swept axes can
    drive component parameters (see Figure 7: the injection rate and target
    tier are both axes).  The same interpolation applies to
    ``protocol_overrides`` values, and the ``scheduler_policy`` /
    ``replication_policy`` / ``logging_policy`` keywords are shorthand for
    the ``policy.*`` override paths (a registry key string or a
    ``{"name", "params"}`` mapping), so a spec can sweep the scheduler axis
    with ``Axis("scheduler_policy", (...))`` directly.  Keywords the kernel
    does not know (``component_params``) do not reach the benchmark at all —
    they exist so a spec can declare extra base parameters or axes whose only
    purpose is to be ``$``-interpolated into a component entry.
    """
    cell_params = dict(
        component_params,
        seed=seed,
        n_calls=n_calls,
        exec_time=exec_time,
        n_servers=n_servers,
        n_coordinators=n_coordinators,
        params_bytes=params_bytes,
        result_bytes=result_bytes,
        exec_time_spread=exec_time_spread,
        spread_servers=spread_servers,
        fault_kind=fault_kind,
        fault_target=fault_target,
        faults_per_minute=faults_per_minute,
        restart_delay=restart_delay,
        mtbf=mtbf,
        mttr=mttr,
        permanent_fraction=permanent_fraction,
        fault_trace=fault_trace,
        fault_trace_mode=fault_trace_mode,
        protocol_preset=protocol_preset,
        scheduler_policy=scheduler_policy,
        replication_policy=replication_policy,
        logging_policy=logging_policy,
        detection_policy=detection_policy,
        horizon=horizon,
    )
    overrides = dict(protocol_overrides or {})
    for path, entry in (
        ("policy.scheduler", scheduler_policy),
        ("policy.replication", replication_policy),
        ("policy.logging", logging_policy),
        ("policy.detection", detection_policy),
    ):
        if entry is None:
            continue
        if path in overrides:
            # Silently preferring one would mislabel every swept row.
            raise ConfigurationError(
                f"{path!r} is set both as a cell keyword ({entry!r}) and in "
                f"protocol_overrides ({overrides[path]!r}); pick one"
            )
        overrides[path] = entry
    overrides = interpolate_params(overrides, cell_params) if overrides else None
    report = execute_benchmark(
        topology=GridTopology(
            n_servers=n_servers,
            n_coordinators=n_coordinators,
            spread_servers=spread_servers,
        ),
        workload=WorkloadSpec(
            n_calls=n_calls,
            exec_time=exec_time,
            params_bytes=params_bytes,
            result_bytes=result_bytes,
            exec_time_spread=exec_time_spread,
        ),
        faults=FaultPlan(
            kind=fault_kind,
            target=fault_target,
            faults_per_minute=faults_per_minute,
            restart_delay=restart_delay,
            mtbf=mtbf,
            mttr=mttr,
            permanent_fraction=permanent_fraction,
            trace=fault_trace,
            trace_mode=fault_trace_mode,
        ),
        protocol=protocol_preset,
        protocol_overrides=overrides,
        seed=seed,
        horizon=horizon,
        components=interpolate_params(list(components), cell_params),
        crn_seed=crn_seed,
        run_full_horizon=run_full_horizon,
        record_fault_streams=record_fault_streams,
        record_detection=record_detection,
        record_kernel=record_kernel,
    )
    return report.outputs()
