"""Declarative scenario engine.

One :class:`~repro.scenarios.spec.ScenarioSpec` describes a family of runs
(grid topology, protocol overrides, workload, fault plan, sweep axes,
measured outputs); the registry makes it addressable by name
(``@scenario("fig7")``); the :class:`~repro.scenarios.runner.SweepRunner`
fans its cells out over a process pool; the
:class:`~repro.scenarios.store.ResultsStore` persists each run as a
schema-versioned JSON artifact.  ``python -m repro`` is the front door.
"""

from repro.scenarios.engine import (
    FaultPlan,
    GridTopology,
    RunReport,
    WorkloadSpec,
    benchmark_cell,
    execute_benchmark,
    resolve_protocol,
)
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    load_all,
    register,
    scenario,
)
from repro.scenarios.runner import SweepRunner, run_scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec, SweepCell, SweepPlan
from repro.scenarios.store import ResultsStore, RunResult

__all__ = [
    "Axis",
    "CellResult",
    "FaultPlan",
    "GridTopology",
    "ResultsStore",
    "RunReport",
    "RunResult",
    "ScenarioSpec",
    "SweepCell",
    "SweepPlan",
    "SweepRunner",
    "WorkloadSpec",
    "all_scenarios",
    "benchmark_cell",
    "execute_benchmark",
    "get_scenario",
    "load_all",
    "register",
    "resolve_protocol",
    "run_scenario",
    "scenario",
]
