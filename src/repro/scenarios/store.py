"""JSON results store: one artifact per sweep run.

Every :class:`~repro.scenarios.runner.SweepRunner` run produces a
:class:`RunResult` — schema-versioned rows plus the metadata needed to trust
and reproduce them (scenario name, resolved spec hash, seeds, cell count,
wall time, worker count).  The store writes each result as one JSON file under
``results/<scenario>/`` and loads them back for reporting and for
paper-vs-measured comparison in :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.scenarios.spec import SCHEMA_VERSION

__all__ = ["ResultsStore", "RunResult"]


@dataclass
class RunResult:
    """One completed sweep: figure rows, raw cells, and provenance."""

    scenario: str
    scale: str
    spec_hash: str
    seeds: tuple[int, ...]
    #: rows the figure plots (after the spec's reduce step).
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: raw per-cell records: {"params", "seed", "outputs", "wall_seconds"}.
    cells: list[dict[str, Any]] = field(default_factory=list)
    jobs: int = 1
    parallel: bool = False
    wall_seconds: float = 0.0
    started_at: str = ""
    title: str = ""
    figure: str | None = None
    manifest: dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_json(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["seeds"] = list(self.seeds)
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "RunResult":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ConfigurationError(
                f"results artifact has schema {schema!r}, expected {SCHEMA_VERSION}"
            )
        known = {f for f in cls.__dataclass_fields__}
        data = {k: v for k, v in payload.items() if k in known}
        data["seeds"] = tuple(data.get("seeds", ()))
        return cls(**data)


class ResultsStore:
    """Directory of per-run JSON artifacts, grouped by scenario."""

    def __init__(self, root: str | Path = "results") -> None:
        self.root = Path(root)

    # ---------------------------------------------------------------- writing
    def save(self, result: RunResult) -> Path:
        """Write one artifact and return its path (never overwrites)."""
        directory = self.root / result.scenario
        directory.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        stem = f"{result.scenario}-{result.scale}-{stamp}-{result.spec_hash[:8]}"
        path = directory / f"{stem}.json"
        counter = 1
        while path.exists():
            path = directory / f"{stem}-{counter}.json"
            counter += 1
        path.write_text(json.dumps(result.to_json(), indent=2, default=str))
        return path

    # ----------------------------------------------------------- cell resume
    # One tiny JSON checkpoint per finished cell, keyed by the resolved
    # spec hash: ``results/<scenario>/.cells/<spec_hash>/<index>-s<seed>.json``.
    # A sweep interrupted mid-way leaves its finished cells here; a later
    # run of the *same resolution* (same spec hash) picks them up instead of
    # recomputing them (see ``SweepRunner(resume=True)`` / ``run --resume``).
    # Checkpoints survive a completed run on purpose — resuming a finished
    # sweep skips every cell, which is the cheap-rerun behaviour the CLI
    # relies on — and they overwrite in place, so the footprint is bounded
    # by (#distinct resolutions x #cells), not by the number of runs (the
    # per-run artifacts above grow faster).

    def cell_dir(self, scenario: str, spec_hash: str) -> Path:
        """Checkpoint directory for one resolved sweep."""
        return self.root / scenario / ".cells" / spec_hash

    def save_cell(
        self,
        scenario: str,
        spec_hash: str,
        index: int,
        seed: int,
        outputs: dict[str, Any],
        wall_seconds: float,
    ) -> Path:
        """Checkpoint one finished cell (atomic via rename; overwrites)."""
        directory = self.cell_dir(scenario, spec_hash)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{index:05d}-s{seed}.json"
        payload = {
            "schema": SCHEMA_VERSION,
            "index": index,
            "seed": seed,
            "outputs": outputs,
            "wall_seconds": wall_seconds,
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, default=str))
        tmp.replace(path)
        return path

    def load_cells(
        self, scenario: str, spec_hash: str
    ) -> dict[tuple[int, int], tuple[dict[str, Any], float]]:
        """Checkpointed cells of one resolved sweep: (index, seed) -> outcome.

        Unreadable or schema-mismatched checkpoints are ignored (a torn write
        from an interrupted run must not poison the resume).
        """
        directory = self.cell_dir(scenario, spec_hash)
        if not directory.exists():
            return {}
        cells: dict[tuple[int, int], tuple[dict[str, Any], float]] = {}
        for path in sorted(directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if payload.get("schema") != SCHEMA_VERSION:
                continue
            try:
                key = (int(payload["index"]), int(payload["seed"]))
                cells[key] = (
                    dict(payload["outputs"]),
                    float(payload.get("wall_seconds", 0.0)),
                )
            except (KeyError, TypeError, ValueError):
                continue
        return cells

    # ---------------------------------------------------------------- reading
    def load(self, path: str | Path) -> RunResult:
        """Load one artifact back."""
        return RunResult.from_json(json.loads(Path(path).read_text()))

    def list_runs(self, scenario: str | None = None) -> list[Path]:
        """Artifact paths, oldest first (per-directory name order)."""
        if not self.root.exists():
            return []
        pattern = f"{scenario}/*.json" if scenario else "*/*.json"
        return sorted(self.root.glob(pattern))

    def latest(self, scenario: str) -> RunResult | None:
        """The most recent artifact for ``scenario``, if any."""
        runs = self.list_runs(scenario)
        return self.load(runs[-1]) if runs else None
