"""JSON results store: one artifact per sweep run.

Every :class:`~repro.scenarios.runner.SweepRunner` run produces a
:class:`RunResult` — schema-versioned rows plus the metadata needed to trust
and reproduce them (scenario name, resolved spec hash, seeds, cell count,
wall time, worker count).  The store writes each result as one JSON file under
``results/<scenario>/`` and loads them back for reporting and for
paper-vs-measured comparison in :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.scenarios.spec import SCHEMA_VERSION

__all__ = ["ResultsStore", "RunResult"]


@dataclass
class RunResult:
    """One completed sweep: figure rows, raw cells, and provenance."""

    scenario: str
    scale: str
    spec_hash: str
    seeds: tuple[int, ...]
    #: rows the figure plots (after the spec's reduce step).
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: raw per-cell records: {"params", "seed", "outputs", "wall_seconds"}.
    cells: list[dict[str, Any]] = field(default_factory=list)
    jobs: int = 1
    parallel: bool = False
    wall_seconds: float = 0.0
    started_at: str = ""
    title: str = ""
    figure: str | None = None
    manifest: dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_json(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["seeds"] = list(self.seeds)
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "RunResult":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ConfigurationError(
                f"results artifact has schema {schema!r}, expected {SCHEMA_VERSION}"
            )
        known = {f for f in cls.__dataclass_fields__}
        data = {k: v for k, v in payload.items() if k in known}
        data["seeds"] = tuple(data.get("seeds", ()))
        return cls(**data)


class ResultsStore:
    """Directory of per-run JSON artifacts, grouped by scenario."""

    def __init__(self, root: str | Path = "results") -> None:
        self.root = Path(root)

    # ---------------------------------------------------------------- writing
    def save(self, result: RunResult) -> Path:
        """Write one artifact and return its path (never overwrites)."""
        directory = self.root / result.scenario
        directory.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        stem = f"{result.scenario}-{result.scale}-{stamp}-{result.spec_hash[:8]}"
        path = directory / f"{stem}.json"
        counter = 1
        while path.exists():
            path = directory / f"{stem}-{counter}.json"
            counter += 1
        path.write_text(json.dumps(result.to_json(), indent=2, default=str))
        return path

    # ---------------------------------------------------------------- reading
    def load(self, path: str | Path) -> RunResult:
        """Load one artifact back."""
        return RunResult.from_json(json.loads(Path(path).read_text()))

    def list_runs(self, scenario: str | None = None) -> list[Path]:
        """Artifact paths, oldest first (per-directory name order)."""
        if not self.root.exists():
            return []
        pattern = f"{scenario}/*.json" if scenario else "*/*.json"
        return sorted(self.root.glob(pattern))

    def latest(self, scenario: str) -> RunResult | None:
        """The most recent artifact for ``scenario``, if any."""
        runs = self.list_runs(scenario)
        return self.load(runs[-1]) if runs else None
