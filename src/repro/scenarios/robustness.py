"""Robustness scenarios: survival as the measured product.

Three sweeps interrogate the protocol's fault tolerance directly instead of
measuring throughput around incidental faults:

* ``detector-ablation-v2`` — the ``policy.detect.*`` family crossed with the
  replication policy under trace-driven churn, scoring wrong suspicions and
  suspicion transitions per detector;
* ``quorum-survival`` — passive-periodic vs quorum replication as the
  coordinator tier grows more volatile (survival-vs-volatility curves);
* ``fault-search`` — an adversarial sweep of scripted fault timing against
  the protocol's own phases (mid-replication push, mid-commit at the ack
  source, the detector-blind window right after a heartbeat), reduced to the
  worst-case survival row per phase.

All three declare ``paired_axes``: cells that differ only in the policy under
test must report identical fault-stream fingerprints (common random numbers),
so any survival difference is attributable to the policy, not to schedule
noise.  The runner enforces this after every sweep.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.scenarios.engine import benchmark_cell
from repro.scenarios.reducers import grouped, mean
from repro.scenarios.registry import scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec

__all__ = [
    "DETECTION_POLICIES",
    "DETECTOR_ABLATION_V2",
    "FAULT_SEARCH",
    "QUORUM_SURVIVAL",
    "REPLICATION_POLICIES",
    "fault_search_cell",
]

#: every built-in failure-detection policy, in sweep order.
DETECTION_POLICIES = (
    "policy.detect.fixed-timeout",
    "policy.detect.adaptive-timeout",
    "policy.detect.phi-accrual",
)

#: the replication policies a survival sweep compares.
REPLICATION_POLICIES = (
    "policy.repl.passive-periodic",
    "policy.repl.quorum",
)


def _completion(cell: CellResult) -> float:
    return cell.outputs["completed"] / max(cell.outputs["submitted"], 1)


# --------------------------------------------------------- detector-ablation-v2
def _detector_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """One row per (detector, replication) arm: suspicion quality + survival."""
    rows: list[dict[str, Any]] = []
    keys = ("detection_policy", "replication_policy")
    for (detector, replication), cells in grouped(results, keys).items():
        rows.append(
            {
                "detection_policy": detector,
                "replication_policy": replication,
                "mean_wrong_suspicions": mean(
                    c.outputs["wrong_suspicions"] for c in cells
                ),
                "mean_suspicion_transitions": mean(
                    c.outputs["suspicion_transitions"] for c in cells
                ),
                "mean_makespan_seconds": mean(c.outputs["makespan"] for c in cells),
                "min_completion_ratio": min(_completion(c) for c in cells),
                "departures": sum(c.outputs["faults_injected"] for c in cells),
            }
        )
    return rows


@scenario("detector-ablation-v2")
def _detector_ablation_v2() -> ScenarioSpec:
    return ScenarioSpec(
        name="detector-ablation-v2",
        title="Failure-detection policies under trace-driven churn",
        figure=None,
        description=(
            "Sweep the policy.detect.* family (fixed timeout, Jacobson "
            "adaptive timeout, phi-accrual) against both replication "
            "policies while the servers replay a deterministic availability "
            "trace whose outages exceed the suspicion timeout: every "
            "detector must transition, and none may suspect a live node.  "
            "Both axes are paired, so each arm sees the identical fault "
            "schedule."
        ),
        cell=benchmark_cell,
        base=dict(
            n_calls=48,
            exec_time=5.0,
            n_servers=4,
            n_coordinators=2,
            # Up 45 s / down 90 s: outages far beyond the 30 s suspicion
            # timeout, so suspicions are of genuinely-down nodes.  The
            # workload (48 x 5 s over 4 servers, ~60 s ideal) outlives the
            # first outage, so every detector gets exercised mid-run.
            churn_pairs=[[45.0, 90.0], [60.0, 75.0]],
            horizon=2500.0,
            crn_seed=101,
            record_detection=True,
            record_fault_streams=True,
        ),
        axes=(
            Axis("detection_policy", DETECTION_POLICIES),
            Axis("replication_policy", REPLICATION_POLICIES),
        ),
        seeds=(3, 5),
        outputs=(
            "makespan",
            "completed",
            "faults_injected",
            "wrong_suspicions",
            "suspicion_transitions",
        ),
        components=(
            {
                "name": "inject.churn",
                "params": {"target": "servers", "trace_pairs": "$churn_pairs"},
            },
        ),
        paired_axes=("detection_policy", "replication_policy"),
        scales={
            "tiny": dict(
                n_calls=16, exec_time=5.0, n_servers=2, n_coordinators=2,
                churn_pairs=[[15.0, 60.0], [25.0, 50.0]],
                seeds=(3,), horizon=1500.0,
            ),
        },
        reduce=_detector_rows,
    )


DETECTOR_ABLATION_V2 = _detector_ablation_v2


# ------------------------------------------------------------- quorum-survival
def _survival_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """Survival-vs-volatility: one row per (replication policy, MTBF) point."""
    rows: list[dict[str, Any]] = []
    keys = ("replication_policy", "mtbf")
    for (replication, mtbf), cells in grouped(results, keys).items():
        rows.append(
            {
                "replication_policy": replication,
                "coordinator_mtbf_seconds": mtbf,
                "min_completion_ratio": min(_completion(c) for c in cells),
                "mean_completion_ratio": mean(_completion(c) for c in cells),
                "mean_makespan_seconds": mean(c.outputs["makespan"] for c in cells),
                "departures": sum(c.outputs["faults_injected"] for c in cells),
                "all_finished": all(c.outputs["finished_in_time"] for c in cells),
            }
        )
    return rows


@scenario("quorum-survival")
def _quorum_survival() -> ScenarioSpec:
    return ScenarioSpec(
        name="quorum-survival",
        title="Quorum vs passive replication as coordinators grow volatile",
        figure=None,
        description=(
            "The coordinator tier churns (exponential up/down cycles) while "
            "the replication-policy axis compares the paper's passive "
            "periodic push against quorum replication with freshest-replica "
            "recovery.  The replication axis is paired: both arms live "
            "through the same coordinator outages, so the survival gap is "
            "the policy's."
        ),
        cell=benchmark_cell,
        base=dict(
            n_calls=36,
            exec_time=5.0,
            n_servers=6,
            n_coordinators=3,
            mttr=15.0,
            horizon=4000.0,
            crn_seed=202,
            record_fault_streams=True,
            run_full_horizon=True,
        ),
        axes=(
            Axis("replication_policy", REPLICATION_POLICIES),
            Axis("mtbf", (480.0, 180.0, 90.0)),
        ),
        seeds=(3, 5),
        outputs=("makespan", "completed", "faults_injected", "finished_in_time"),
        components=(
            {
                "name": "inject.churn",
                "params": {"target": "coordinators", "mtbf": "$mtbf", "mttr": "$mttr"},
            },
        ),
        paired_axes=("replication_policy",),
        scales={
            "tiny": dict(
                n_calls=12, exec_time=4.0, n_servers=3, n_coordinators=3,
                mtbf=(120.0, 45.0), mttr=10.0, seeds=(3,), horizon=1200.0,
            ),
        },
        reduce=_survival_rows,
    )


QUORUM_SURVIVAL = _quorum_survival


# ---------------------------------------------------------------- fault-search
def fault_search_cell(
    seed: int = 0,
    phase: str = "mid-replication",
    offset: float = 0.0,
    replication_period: float = 5.0,
    heartbeat_period: float = 2.0,
    down_for: float = 60.0,
    replication_policy: Any = None,
    detection_policy: Any = None,
    n_calls: int = 24,
    exec_time: float = 5.0,
    n_servers: int = 4,
    n_coordinators: int = 3,
    horizon: float = 2500.0,
    crn_seed: int | None = None,
    record_fault_streams: bool = False,
) -> dict[str, Any]:
    """One adversarial cell: a scripted outage aimed at a protocol phase.

    The kernel derives the kill time from the protocol's own schedule (which
    it pins through protocol overrides, so the aim stays true):

    * ``mid-replication`` — kill the primary ``offset`` seconds into its
      fourth replication round, while pushed state is in flight;
    * ``mid-commit`` — kill the primary's ring successor at the same point,
      so pushes/acks die at the receiving end mid-commit;
    * ``detector-blind`` — kill the primary right after a heartbeat went
      out, maximising the window in which every detector is necessarily
      blind.

    The victim restarts ``down_for`` seconds later.  Offsets sweep the
    timing within the targeted phase; the reducer keeps the worst case.
    """
    if n_coordinators < 2:
        raise ConfigurationError("fault-search needs at least two coordinators")
    primary = "coordinator:cluster-k0"
    successor = "coordinator:cluster-k1"
    if phase == "mid-replication":
        target, at = primary, 3 * replication_period + offset
    elif phase == "mid-commit":
        target, at = successor, 3 * replication_period + offset
    elif phase == "detector-blind":
        target, at = primary, 4 * heartbeat_period + offset
    else:
        raise ConfigurationError(
            f"unknown fault-search phase {phase!r} "
            "(mid-replication, mid-commit or detector-blind)"
        )
    events = [
        {"time": at, "action": "kill", "target": target},
        {"time": at + down_for, "action": "restart", "target": target},
    ]
    return benchmark_cell(
        seed=seed,
        n_calls=n_calls,
        exec_time=exec_time,
        n_servers=n_servers,
        n_coordinators=n_coordinators,
        horizon=horizon,
        replication_policy=replication_policy,
        detection_policy=detection_policy,
        protocol_overrides={
            "coordinator.replication.period": replication_period,
            "coordinator.detection.heartbeat_period": heartbeat_period,
        },
        components=[{"name": "inject.script", "params": {"events": events}}],
        crn_seed=crn_seed,
        record_fault_streams=record_fault_streams,
    )


def _worst_case_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """The worst surviving cell per (phase, replication policy) arm."""
    rows: list[dict[str, Any]] = []
    keys = ("phase", "replication_policy")
    for (phase, replication), cells in grouped(results, keys).items():
        worst = min(cells, key=lambda c: (_completion(c), -c.outputs["makespan"]))
        rows.append(
            {
                "phase": phase,
                "replication_policy": replication,
                "worst_offset": worst.params.get("offset"),
                "worst_seed": worst.seed,
                "completion_ratio": _completion(worst),
                "makespan_seconds": worst.outputs["makespan"],
                "completed": worst.outputs["completed"],
                "submitted": worst.outputs["submitted"],
            }
        )
    return rows


@scenario("fault-search")
def _fault_search() -> ScenarioSpec:
    return ScenarioSpec(
        name="fault-search",
        title="Adversarial fault timing against the protocol's phases",
        figure=None,
        description=(
            "Instead of random churn, aim scripted coordinator outages at "
            "the protocol's own schedule — mid-replication, mid-commit at "
            "the ring successor, and the detector-blind window after a "
            "heartbeat — sweeping sub-period offsets and keeping the "
            "worst-case survival row per phase and replication policy."
        ),
        cell=fault_search_cell,
        base=dict(
            n_calls=24,
            exec_time=5.0,
            n_servers=4,
            n_coordinators=3,
            replication_period=5.0,
            heartbeat_period=2.0,
            down_for=60.0,
            horizon=2500.0,
            crn_seed=303,
            record_fault_streams=True,
        ),
        axes=(
            Axis("phase", ("mid-replication", "mid-commit", "detector-blind")),
            Axis("offset", (0.1, 1.0, 2.4)),
            Axis("replication_policy", REPLICATION_POLICIES),
        ),
        seeds=(3,),
        outputs=("makespan", "completed", "submitted", "finished_in_time"),
        paired_axes=("replication_policy",),
        scales={
            "tiny": dict(
                n_calls=12, exec_time=4.0, n_servers=2,
                offset=(0.1,), down_for=40.0, horizon=1500.0,
            ),
        },
        reduce=_worst_case_rows,
    )


FAULT_SEARCH = _fault_search
