"""Scenarios beyond the paper's figures.

This is where new workloads enter the registry as ~30-line declarative specs
instead of new driver modules.  ``churn-survival`` sweeps a volatile desktop
grid: every server lives through exponential up/down cycles (see
:mod:`repro.nodes.churn`), some departures permanent, and the question is how
the makespan and completion degrade as the mean time between failures shrinks
— the "volatile nodes" regime the paper targets but never sweeps.
``sched-ablation`` sweeps the coordinator's scheduling policy axis over the
``policy.sched.*`` family on a heterogeneous batch — the protocol ablation
the flag-based configuration could not express.
"""

from __future__ import annotations

from typing import Any

from repro.scenarios.engine import benchmark_cell
from repro.scenarios.reducers import grouped, mean
from repro.scenarios.registry import scenario
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec

__all__ = ["CHURN_SURVIVAL", "SCHED_ABLATION", "SCHEDULER_POLICIES"]


def _churn_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """One row per MTBF point: mean makespan/overhead, worst-case completion."""
    rows: list[dict[str, Any]] = []
    for (mtbf,), cells in grouped(results, ("mtbf",)).items():
        rows.append(
            {
                "server_mtbf_seconds": mtbf,
                "mean_makespan_seconds": mean(c.outputs["makespan"] for c in cells),
                "mean_overhead_vs_ideal": mean(
                    c.outputs["overhead_vs_ideal"] for c in cells
                ),
                "min_completion_ratio": min(
                    c.outputs["completed"] / max(c.outputs["submitted"], 1)
                    for c in cells
                ),
                "departures": sum(c.outputs["faults_injected"] for c in cells),
                "all_finished": all(c.outputs["finished_in_time"] for c in cells),
            }
        )
    return rows


@scenario("churn-survival")
def _churn_survival() -> ScenarioSpec:
    return ScenarioSpec(
        name="churn-survival",
        title="Synthetic benchmark on a volatile grid vs server MTBF",
        figure=None,
        description=(
            "Every server churns independently (exponential up/down cycles, a "
            "few permanent departures); sweep the MTBF down from calm to "
            "hostile and watch completion survive rescheduling."
        ),
        cell=benchmark_cell,
        base=dict(
            n_calls=48,
            exec_time=5.0,
            n_servers=8,
            n_coordinators=4,
            mttr=20.0,
            permanent_fraction=0.05,
            horizon=6000.0,
        ),
        axes=(Axis("mtbf", (900.0, 300.0, 120.0, 60.0)),),
        seeds=(3, 5, 9),
        outputs=("makespan", "completed", "faults_injected", "overhead_vs_ideal"),
        # The injector is a named platform component, not fault-plan keywords:
        # the swept MTBF (and the repair/permanence knobs from base) reach it
        # through $-interpolation against each cell's parameters.
        components=(
            {
                "name": "inject.churn",
                "params": {
                    "target": "servers",
                    "mtbf": "$mtbf",
                    "mttr": "$mttr",
                    "permanent_fraction": "$permanent_fraction",
                },
            },
        ),
        scales={
            # Small enough for CI, volatile enough that departures do happen:
            # the ideal time (12 x 5 s / 2 servers = 30 s) spans several MTBFs.
            "tiny": dict(
                n_calls=12, exec_time=5.0, n_servers=2, n_coordinators=2,
                mttr=5.0, mtbf=(20.0, 6.0), seeds=(3,), horizon=2500.0,
            ),
        },
        reduce=_churn_rows,
    )


CHURN_SURVIVAL = _churn_survival


#: every built-in coordinator scheduling policy, in sweep order.
SCHEDULER_POLICIES = (
    "policy.sched.fifo-reschedule",
    "policy.sched.random",
    "policy.sched.round-robin",
    "policy.sched.fastest-first",
)


def _sched_rows(results: list[CellResult]) -> list[dict[str, Any]]:
    """One row per scheduling policy: makespan/overhead means over the seeds."""
    rows: list[dict[str, Any]] = []
    for (policy,), cells in grouped(results, ("scheduler_policy",)).items():
        rows.append(
            {
                "scheduler_policy": policy,
                "mean_makespan_seconds": mean(c.outputs["makespan"] for c in cells),
                "mean_overhead_vs_ideal": mean(
                    c.outputs["overhead_vs_ideal"] for c in cells
                ),
                "all_completed": all(
                    c.outputs["completed"] >= c.outputs["submitted"] for c in cells
                ),
                "faults": sum(c.outputs["faults_injected"] for c in cells),
            }
        )
    return rows


@scenario("sched-ablation")
def _sched_ablation() -> ScenarioSpec:
    return ScenarioSpec(
        name="sched-ablation",
        title="Makespan under each coordinator scheduling policy",
        figure=None,
        description=(
            "The synthetic benchmark with heterogeneous task durations and "
            "server faults, swept over the policy.sched.* registry: FCFS vs "
            "random vs round-robin vs fastest-first.  Each policy is a "
            "registry key on the swept axis — no flags, no code."
        ),
        cell=benchmark_cell,
        base=dict(
            n_calls=96,
            exec_time=10.0,
            exec_time_spread=3.0,
            n_servers=16,
            n_coordinators=4,
            fault_kind="rate",
            fault_target="servers",
            faults_per_minute=2.0,
            restart_delay=5.0,
            horizon=6000.0,
        ),
        axes=(Axis("scheduler_policy", SCHEDULER_POLICIES),),
        seeds=(7, 11),
        outputs=(
            "makespan",
            "submitted",
            "completed",
            "faults_injected",
            "overhead_vs_ideal",
        ),
        scales={
            "tiny": dict(
                n_calls=24, exec_time=4.0, n_servers=4, n_coordinators=2,
                faults_per_minute=3.0, seeds=(7,), horizon=3000.0,
            ),
        },
        reduce=_sched_rows,
    )


SCHED_ABLATION = _sched_ablation
