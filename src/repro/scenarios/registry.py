"""Module-level scenario registry.

Experiment modules declare their sweeps with the :func:`scenario` decorator
on a zero-argument spec builder::

    @scenario("fig7")
    def _fig7() -> ScenarioSpec:
        return ScenarioSpec(name="fig7", ...)

The decorator builds the spec immediately, registers it under its name and
returns the spec object (so the module keeps a direct handle).  The registry
is populated by importing the defining modules; :func:`load_all` imports every
built-in scenario module (the figure drivers plus the scenario library) and is
called lazily by the lookup helpers, so the CLI and the sweep workers see the
full registry without the defining modules importing each other.
"""

from __future__ import annotations

import importlib
from typing import Callable, Iterable

from repro.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec

__all__ = ["all_scenarios", "get_scenario", "load_all", "register", "scenario"]

_REGISTRY: dict[str, ScenarioSpec] = {}

#: modules whose import registers the built-in scenarios.
_BUILTIN_MODULES: tuple[str, ...] = (
    "repro.experiments",
    "repro.scenarios.library",
    "repro.scenarios.robustness",
    "repro.scenarios.crowd",
)
_loaded = False


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Register ``spec`` under its name; duplicate names are configuration errors."""
    if not replace and spec.name in _REGISTRY and _REGISTRY[spec.name] is not spec:
        raise ConfigurationError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario(
    name: str | None = None, replace: bool = False
) -> Callable[[Callable[[], ScenarioSpec]], ScenarioSpec]:
    """Decorator: build the spec now, register it, and return the spec."""

    def decorator(builder: Callable[[], ScenarioSpec]) -> ScenarioSpec:
        spec = builder()
        if name is not None and spec.name != name:
            spec = spec.with_overrides(name=name)
        return register(spec, replace=replace)

    return decorator


def load_all() -> None:
    """Import every built-in scenario module (idempotent).

    The loaded flag is only set once every import succeeded, so a transient
    import failure surfaces again on the next call instead of leaving the
    registry silently half-populated for the rest of the process.
    """
    global _loaded
    if _loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _loaded = True


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one scenario by name (loading the built-ins first)."""
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigurationError(
            f"unknown scenario {name!r} (registered: {known})"
        ) from None


def all_scenarios() -> dict[str, ScenarioSpec]:
    """Every registered scenario, sorted by name."""
    load_all()
    return dict(sorted(_REGISTRY.items()))


def scenario_names() -> Iterable[str]:
    """Registered scenario names, sorted."""
    return tuple(all_scenarios())
