"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes one family of simulation runs the way the
paper states an experiment: what is fixed (grid topology, protocol overrides,
workload, fault plan — the ``base`` parameters), what is swept (the ``axes``),
over which ``seeds``, and which ``outputs`` each run measures.  The spec is
pure data plus two module-level callables:

* ``cell``    — the measurement kernel; called once per (axis-point × seed)
  with the merged parameters and returning a flat dict of measured outputs;
* ``reduce``  — optional aggregation turning the per-cell results into the
  rows the figure plots (mean over seeds, pivot an axis into columns, ...).

Because a spec resolves to an explicit list of independent cells, sweeps can
be fanned out over a process pool (see :mod:`repro.scenarios.runner`) and the
whole sweep is reproducible from ``(spec, scale, seeds)`` alone —
``spec_hash()`` fingerprints exactly that resolution, and is stored alongside
every results artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["Axis", "CellResult", "ScenarioSpec", "SweepCell", "SweepPlan"]

#: version of the (spec manifest, results artifact) schema; bump on layout change.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Axis:
    """One swept parameter: a name and the ordered values it takes."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("axis name must be non-empty")
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} needs at least one value")
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class SweepCell:
    """One resolved cell of a sweep: merged parameters plus the seed."""

    index: int
    params: Mapping[str, Any]
    seed: int

    @property
    def call_params(self) -> dict[str, Any]:
        """Keyword arguments for the cell kernel (parameters + seed)."""
        return {**self.params, "seed": self.seed}


@dataclass(frozen=True)
class CellResult:
    """Measured outputs of one executed cell."""

    index: int
    params: Mapping[str, Any]
    seed: int
    outputs: Mapping[str, Any]
    wall_seconds: float = 0.0

    def row(self) -> dict[str, Any]:
        """Default row shape: swept parameters, seed, then the outputs."""
        return {**self.params, "seed": self.seed, **self.outputs}


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one figure-style parameter sweep."""

    name: str
    title: str
    #: measurement kernel; module-level callable ``cell(**params, seed=...)``.
    cell: Callable[..., dict[str, Any]]
    #: figure of the paper this reproduces (``None`` for new workloads).
    figure: str | None = None
    description: str = ""
    #: fixed parameters shared by every cell (topology, workload, fault plan).
    base: Mapping[str, Any] = field(default_factory=dict)
    #: swept parameters; the sweep is the cartesian product in declared order.
    axes: tuple[Axis, ...] = ()
    #: seed axis, innermost in the cell ordering.
    seeds: tuple[int, ...] = (0,)
    #: names of the outputs each cell measures (documentation + validation).
    outputs: tuple[str, ...] = ()
    #: named parameter presets (e.g. ``tiny``); keys matching an axis name
    #: replace that axis' values, the key ``seeds`` replaces the seed axis,
    #: anything else overrides ``base``.
    scales: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    #: extra platform components every cell instantiates: ``{"name":
    #: "inject.churn", "params": {...}}`` entries resolved through
    #: :mod:`repro.platform.registry`.  Parameter values of the form
    #: ``"$key"`` are interpolated against the cell's merged parameters,
    #: so swept axes can drive component parameters.  Folded into the cell
    #: parameters as ``components`` at resolution time (the cell kernel must
    #: accept that keyword — :func:`~repro.scenarios.engine.benchmark_cell`
    #: does); a scale preset may override the list under the same key.
    components: tuple[Mapping[str, Any], ...] = ()
    #: wall-clock budget per cell, in seconds.  ``None`` (default) never
    #: interrupts a cell; with a budget the runner executes each cell in a
    #: disposable child process, kills it at the deadline and records
    #: ``{"timed_out": True, "cell_timeout": <budget>}`` as the cell's
    #: outputs instead of hanging the sweep (a ``reduce`` must tolerate such
    #: cells when a spec opts in).
    cell_timeout: float | None = None
    #: axes whose arms must see *identical* fault schedules (common random
    #: numbers).  Cells differing only in these axes (same seed, same other
    #: parameters) are required to report byte-identical ``fault_streams``
    #: fingerprints; the runner asserts this after the sweep.  The cell
    #: kernel must record the fingerprints (``record_fault_streams``) and
    #: key its fault draws off ``crn.*`` streams with a shared ``crn_seed``.
    paired_axes: tuple[str, ...] = ()
    #: optional aggregation of cell results into the figure's rows.
    reduce: Callable[[list[CellResult]], list[dict[str, Any]]] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not callable(self.cell):
            raise ConfigurationError(f"scenario {self.name!r} cell must be callable")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigurationError(
                f"scenario {self.name!r} cell_timeout must be positive"
            )
        axis_names = [axis.name for axis in self.axes]
        if len(set(axis_names)) != len(axis_names):
            raise ConfigurationError(f"scenario {self.name!r} has duplicate axes")
        overlap = set(axis_names) & set(self.base)
        if overlap:
            raise ConfigurationError(
                f"scenario {self.name!r}: {sorted(overlap)} both fixed and swept"
            )
        object.__setattr__(self, "paired_axes", tuple(self.paired_axes))
        unknown_paired = set(self.paired_axes) - set(axis_names)
        if unknown_paired:
            raise ConfigurationError(
                f"scenario {self.name!r}: paired_axes {sorted(unknown_paired)} "
                "are not axes of this scenario"
            )
        if self.components:
            if "components" in self.base or "components" in axis_names:
                raise ConfigurationError(
                    f"scenario {self.name!r} declares components both as a "
                    "spec field and as a parameter"
                )
            normalised = []
            for entry in self.components:
                if not isinstance(entry, Mapping) or "name" not in entry:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: component entries must be "
                        "mappings with a 'name' key"
                    )
                normalised.append(
                    {"name": entry["name"], "params": dict(entry.get("params") or {})}
                )
            object.__setattr__(self, "components", tuple(normalised))

    # ------------------------------------------------------------- resolution
    @property
    def scale_names(self) -> tuple[str, ...]:
        """The named scales this scenario defines (beyond the default)."""
        return tuple(sorted(self.scales))

    def resolve(
        self,
        scale: str | None = None,
        seeds: Sequence[int] | None = None,
        axes: Mapping[str, Sequence[Any]] | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> "SweepPlan":
        """Merge the scale preset and explicit overrides into a concrete plan.

        Precedence, lowest to highest: spec defaults, ``scale`` preset,
        ``axes``/``params``/``seeds`` arguments.
        """
        base = dict(self.base)
        if self.components:
            base["components"] = [
                {"name": e["name"], "params": dict(e["params"])}
                for e in self.components
            ]
        axis_values = {axis.name: axis.values for axis in self.axes}
        plan_seeds = tuple(self.seeds)

        overrides: dict[str, Any] = {}
        if scale is not None and scale != "paper":
            try:
                overrides = dict(self.scales[scale])
            except KeyError:
                known = ", ".join(("paper", *self.scale_names))
                raise ConfigurationError(
                    f"scenario {self.name!r} has no scale {scale!r} (known: {known})"
                ) from None
        for key, value in overrides.items():
            if key == "seeds":
                plan_seeds = tuple(value)
            elif key in axis_values:
                axis_values[key] = tuple(value)
            else:
                base[key] = value

        for key, values in (axes or {}).items():
            if key not in axis_values:
                raise ConfigurationError(
                    f"scenario {self.name!r} has no axis {key!r}"
                )
            axis_values[key] = tuple(values)
        for key, value in (params or {}).items():
            if key in axis_values:
                raise ConfigurationError(
                    f"{key!r} is an axis of scenario {self.name!r}; override it "
                    "through 'axes'"
                )
            base[key] = value
        if seeds is not None:
            plan_seeds = tuple(seeds)
        if not plan_seeds:
            raise ConfigurationError(f"scenario {self.name!r} resolved to no seeds")

        return SweepPlan(
            spec=self,
            scale=scale or "paper",
            base=base,
            axes=tuple(Axis(axis.name, axis_values[axis.name]) for axis in self.axes),
            seeds=plan_seeds,
        )

    # ------------------------------------------------------------ fingerprint
    def manifest(self, plan: "SweepPlan | None" = None) -> dict[str, Any]:
        """JSON-able description of the spec (or of one resolved plan)."""
        plan = plan or self.resolve()
        manifest: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "title": self.title,
            "figure": self.figure,
            "cell": f"{self.cell.__module__}.{self.cell.__qualname__}",
            "scale": plan.scale,
            "base": _jsonable(plan.base),
            "axes": [
                {"name": axis.name, "values": _jsonable(axis.values)}
                for axis in plan.axes
            ],
            "seeds": list(plan.seeds),
            "outputs": list(self.outputs),
        }
        # Only stamped when set, so specs without a budget keep their
        # historical spec hashes (and their resume checkpoints).
        if self.cell_timeout is not None:
            manifest["cell_timeout"] = self.cell_timeout
        if self.paired_axes:
            manifest["paired_axes"] = list(self.paired_axes)
        return manifest

    def spec_hash(self, plan: "SweepPlan | None" = None) -> str:
        """Stable fingerprint of the resolved sweep (name, cell, parameters)."""
        payload = json.dumps(self.manifest(plan), sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """A copy of this spec with dataclass fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SweepPlan:
    """One concrete resolution of a spec: the cells it will run."""

    spec: ScenarioSpec
    scale: str
    base: Mapping[str, Any]
    axes: tuple[Axis, ...]
    seeds: tuple[int, ...]

    def cells(self) -> list[SweepCell]:
        """Enumerate every (axis-point × seed) cell, in deterministic order."""
        cells: list[SweepCell] = []
        names = [axis.name for axis in self.axes]
        for point in product(*(axis.values for axis in self.axes)):
            swept = dict(zip(names, point))
            for seed in self.seeds:
                cells.append(
                    SweepCell(
                        index=len(cells),
                        params={**self.base, **swept},
                        seed=seed,
                    )
                )
        return cells

    @property
    def n_cells(self) -> int:
        """Number of cells without materialising them."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total * len(self.seeds)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serialisable structures."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
