"""Core of the discrete-event simulation kernel.

The kernel follows the process-interaction world view:

* an :class:`Environment` owns the virtual clock and the pending-event
  schedule;
* a :class:`Process` wraps a Python generator; each value the generator yields
  must be an :class:`Event`; the process is resumed when that event fires;
* :class:`Timeout` is the elementary "wait for some virtual time" event;
* :class:`AnyOf` / :class:`AllOf` compose events;
* processes can be interrupted (:class:`Interrupt`) or killed
  (:class:`ProcessKilled`), which is how node crashes are modelled;
* waits are *cancellable*: :meth:`Timeout.cancel` removes a wheel-staged
  timer on the spot and tombstones a heap-resident one (lazily removed from
  the heap, compacted in bulk when dead entries pile up),
  :meth:`Event.cancel_wait` detaches a waiter, and :func:`wait_any` races a
  set of events against an optional timeout with guaranteed cleanup.

Cancellation matters because the RPC-V protocol is timeout-driven end to end:
every request races a reply against a retry timer, and the losing side of the
race must not linger.  Abandoned waits cascade: when the last waiter of an
event is detached the event's *abandon hook* runs, which cancels orphaned
timeouts, withdraws conditions from their constituent events, and purges
store getter queues — so a killed process reclaims everything it was blocked
on, and the heap does not fill with dead timers at scale.

Scheduling is split over **four lanes** (see :class:`Environment`): an
urgent same-tick deque, a normal same-tick deque, a hashed timer wheel for
future timers within its horizon, and the time-ordered heap; the heap
carries both full events and bare ``call_at`` callback entries.  Wheel
entries are staged as ready-made heap tuples (their sequence number is drawn
at schedule time) and are flushed into the heap before the clock can reach
their window, so same-timestamp ordering is bit-for-bit identical whether a
timer rode the wheel or went straight to the heap.

The implementation is intentionally dependency-free and deterministic: events
scheduled at the same virtual time fire in lane order (urgent before normal)
and FIFO within a lane (a monotonically increasing sequence number breaks
heap ties).
"""

from __future__ import annotations

import gc
import itertools
from collections import deque
from collections.abc import Callable, Generator, Iterable
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Any

__all__ = [
    "SimulationError",
    "Interrupt",
    "ProcessKilled",
    "StopProcess",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "CallHandle",
    "PeriodicHandle",
    "Environment",
    "WaitOutcome",
    "wait_any",
]

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not for modelled faults)."""


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why the
    interruption happened (e.g. ``"node-crash"``).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Thrown into a process that is being killed (crash semantics).

    Unlike :class:`Interrupt`, a killed process is not expected to recover:
    the kernel silences any ``ProcessKilled`` escaping the generator.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Internal: raised to return a value from a process (like StopIteration)."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


_PENDING = object()


class Event:
    """A waitable, one-shot occurrence.

    An event has three states: *pending* (created, not yet triggered),
    *triggered* (scheduled on the environment queue), and *processed* (its
    callbacks have run).  Processes wait on events by yielding them.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_processed",
        "_defused",
        "_cancelled",
        "_abandon_hook",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        #: called with the event when its last waiter detaches; lets owners
        #: (stores, timeouts, conditions) reclaim resources nobody waits for.
        self._abandon_hook: Callable[[Event], None] | None = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self._processed

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled (it will never fire)."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        A triggered event fires in the current tick: it joins the same-tick
        FIFO lane and never touches the time-ordered heap.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._tick.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the event.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._tick.append(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise it."""
        self._defused = True

    # -- waiter management ---------------------------------------------------
    def cancel_wait(self, waiter: "Process | Callable[[Event], None]") -> bool:
        """Detach ``waiter`` (a :class:`Process` or raw callback) from this event.

        The caller is responsible for the detached process: it will not be
        resumed by this event anymore.  Returns True when something was
        removed.  If the event ends up with no waiters its abandon hook runs,
        cascading the cleanup (orphaned timers are cancelled, store getter
        queues purged, conditions withdrawn from their constituents).
        """
        callback = waiter._resume if isinstance(waiter, Process) else waiter
        callbacks = self.callbacks
        if callbacks is None:
            return False
        try:
            callbacks.remove(callback)
        except ValueError:
            return False
        if isinstance(waiter, Process) and waiter._target is self:
            waiter._target = None
        self._maybe_abandon()
        return True

    def _maybe_abandon(self) -> None:
        """Run the abandon hook once the last waiter has been detached."""
        if (
            self._abandon_hook is not None
            and self.callbacks is not None
            and not self.callbacks
        ):
            hook, self._abandon_hook = self._abandon_hook, None
            hook(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "processed" if self._processed else (
                "triggered" if self.triggered else "pending"
            )
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


def _cancel_on_abandon(timeout: "Timeout") -> None:
    """Abandon hook shared by every timeout: nobody waits for it anymore."""
    timeout.cancel()


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time in the future.

    A zero-delay timeout joins the same-tick FIFO lane (no heap traffic); a
    positive delay is staged on the timer wheel (or pushed on the heap past
    the wheel horizon).  A pending timeout can be :meth:`cancel`-led: a
    wheel entry is swap-removed immediately, a heap entry is tombstoned
    (skipped on pop, removed in bulk by compaction) — either way its
    callbacks never run.  Timeouts also cancel
    *themselves* when their last waiter detaches — the abandon cascade — so
    the losing timer of a reply-vs-timeout race does not linger in the heap.
    """

    __slots__ = ("delay", "_in_wheel", "_wheel_pos")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # Timeouts dominate event allocation on the protocol hot paths, so
        # Event.__init__ is inlined here (one call fewer per timer), and the
        # heap push is inlined too (no Environment._schedule indirection).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self._abandon_hook = _cancel_on_abandon
        self.delay = delay
        self._in_wheel = False
        if delay > 0.0:
            when = env._now + delay
            entry = (when, next(env._counter), self)
            # Inlined Environment._wheel_schedule: timeouts dominate the
            # schedule rate, so the wheel placement is done without the
            # method-call round trip (same logic, same counters).
            size = env._wheel_size
            if size:
                granularity = env._wheel_granularity
                if not env._wheel_count:
                    base = int(env._now / granularity)
                    if base > env._wheel_next_slot:
                        env._wheel_next_slot = base
                        env._wheel_next_boundary = base * granularity
                index = int(when / granularity)
                if index * granularity > when:
                    index -= 1
                offset = index - env._wheel_next_slot
                if 0 <= offset < size:
                    slot_index = index % size
                    slot = env._wheel_slots[slot_index]
                    # Truthy slot token (index + 1) plus the in-slot position:
                    # cancel swap-removes the entry at exactly this spot.
                    self._wheel_pos = len(slot)
                    slot.append(entry)
                    env._wheel_count += 1
                    self._in_wheel = slot_index + 1
                else:
                    if offset >= size:
                        env.wheel_overflows += 1
                    _heappush(env._queue, entry)
            else:
                _heappush(env._queue, entry)
        elif delay == 0.0:
            env._tick.append(self)
        else:
            raise SimulationError(f"negative delay {delay!r}")

    def cancel(self) -> bool:
        """Cancel the timeout before it fires.

        Returns True when the timeout was still pending (its callbacks will
        never run), False when it had already fired or been cancelled.  A
        wheel-staged timer is swap-removed from its slot; a heap-resident
        one becomes a tombstone counted by the compactor; a same-tick
        (zero-delay) timer is simply skipped when its lane drains.
        """
        # callbacks is None from the moment the event is popped off the
        # schedule: a fired timeout is no longer a queue entry, so cancelling
        # it must not create a phantom tombstone (even mid-resume, before
        # _processed).
        if self._processed or self._cancelled or self.callbacks is None:
            return False
        self._cancelled = True
        if self.delay == 0.0:
            # Same-tick lane: the drain loop skips cancelled events; the lane
            # empties every tick, so no tombstone accounting is needed.
            return True
        # Inlined Environment._note_cancellation (cancellation is hot).
        env = self.env
        if self._in_wheel:
            # Wheel-resident timer: swap-remove the entry from its slot (a
            # window is an unordered bag, so order need not be preserved —
            # only the displaced entry's recorded position moves with it).
            slot = env._wheel_slots[self._in_wheel - 1]
            pos = self._wheel_pos
            last = slot.pop()
            if pos < len(slot):
                slot[pos] = last
                marker = last[2]
                if marker is not None:
                    marker._wheel_pos = pos
            env._wheel_count -= 1
            self._in_wheel = False
            return True
        env._dead_entries += 1
        if (
            env._dead_entries >= env._COMPACTION_MIN_DEAD
            and 2 * env._dead_entries >= len(env._queue)
        ):
            env._compact()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self._cancelled else ""
        return f"<Timeout delay={self.delay!r}{state}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._urgent.append(self)


class CallHandle:
    """Cancellation token for a :meth:`Environment.call_at_cancellable` entry.

    The heap entry itself is a bare tuple; this handle is the only per-call
    allocation, and only cancellable calls pay it.  A wheel-staged entry is
    swap-removed on cancel (no residue); a heap-resident one becomes a
    tombstone exactly like a cancelled :class:`Timeout` — counted in
    :meth:`Environment.queue_stats`, skipped when it surfaces at the top,
    and dropped in bulk by :meth:`Environment._compact`.
    """

    __slots__ = ("env", "_cancelled", "_fired", "_in_wheel", "_wheel_pos")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._cancelled = False
        self._fired = False
        self._in_wheel = False

    @property
    def cancelled(self) -> bool:
        """True once the scheduled call has been cancelled."""
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the scheduled call has neither fired nor been cancelled."""
        return not (self._fired or self._cancelled)

    def cancel(self) -> bool:
        """Cancel the scheduled call; True when it was still pending."""
        if self._fired or self._cancelled:
            return False
        self._cancelled = True
        env = self.env
        if self._in_wheel:
            slot = env._wheel_slots[self._in_wheel - 1]
            pos = self._wheel_pos
            last = slot.pop()
            if pos < len(slot):
                slot[pos] = last
                marker = last[2]
                if marker is not None:
                    marker._wheel_pos = pos
            env._wheel_count -= 1
            self._in_wheel = False
            return True
        env._dead_entries += 1
        if (
            env._dead_entries >= env._COMPACTION_MIN_DEAD
            and 2 * env._dead_entries >= len(env._queue)
        ):
            env._compact()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<CallHandle {state}>"


class PeriodicHandle:
    """A self-re-arming periodic callback (see :meth:`Environment.call_periodic`).

    One handle serves the whole lifetime of a periodic activity: each firing
    runs ``fn(arg)`` and then re-arms the *same* handle at the next beat —
    per beat the only kernel traffic is one schedule (wheel append or heap
    push), no per-beat :class:`Event`, :class:`Timeout` or handle allocation.
    The next-beat delay comes from ``interval`` or, when given, from
    ``interval_fn()`` (evaluated after ``fn`` runs, so jittered cadences draw
    their randomness at exactly the position a hand-rolled re-arming callback
    would).  Cancellation is O(1) and may happen at any time, including from
    inside ``fn`` itself (the handle then simply never re-arms).
    """

    __slots__ = (
        "env",
        "fn",
        "arg",
        "interval",
        "interval_fn",
        "when",
        "fired",
        "_cancelled",
        "_in_wheel",
        "_wheel_pos",
        "_armed",
    )

    def __init__(
        self,
        env: "Environment",
        interval: float | None,
        fn: Callable[[Any], None],
        arg: Any = None,
        interval_fn: Callable[[], float] | None = None,
    ) -> None:
        self.env = env
        self.fn = fn
        self.arg = arg
        self.interval = interval
        self.interval_fn = interval_fn
        #: virtual time of the next scheduled beat (observability / tests).
        self.when = env._now
        #: number of beats fired so far.
        self.fired = 0
        self._cancelled = False
        self._in_wheel = False
        self._armed = False

    @property
    def cancelled(self) -> bool:
        """True once the periodic activity has been cancelled."""
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while a next beat is scheduled."""
        return self._armed and not self._cancelled

    def cancel(self) -> bool:
        """Stop the periodic activity; True unless already cancelled."""
        if self._cancelled:
            return False
        self._cancelled = True
        env = self.env
        if self._in_wheel:
            slot = env._wheel_slots[self._in_wheel - 1]
            pos = self._wheel_pos
            last = slot.pop()
            if pos < len(slot):
                slot[pos] = last
                marker = last[2]
                if marker is not None:
                    marker._wheel_pos = pos
            env._wheel_count -= 1
            self._in_wheel = False
        elif self._armed:
            env._dead_entries += 1
            if (
                env._dead_entries >= env._COMPACTION_MIN_DEAD
                and 2 * env._dead_entries >= len(env._queue)
            ):
                env._compact()
        # Not armed (cancelled from inside fn, mid-fire): nothing is queued,
        # so there is no tombstone to account for.
        return True

    def _arm(self, delay: float) -> None:
        if delay <= 0.0:
            raise SimulationError(f"periodic interval must be positive, got {delay!r}")
        env = self.env
        when = env._now + delay
        self.when = when
        entry = (when, next(env._counter), self)
        self._armed = True
        # Inlined Environment._wheel_schedule (one call fewer per beat; the
        # re-arm is the whole per-beat cost of a periodic).
        size = env._wheel_size
        if size:
            granularity = env._wheel_granularity
            if not env._wheel_count:
                base = int(env._now / granularity)
                if base > env._wheel_next_slot:
                    env._wheel_next_slot = base
                    env._wheel_next_boundary = base * granularity
            index = int(when / granularity)
            if index * granularity > when:
                index -= 1
            offset = index - env._wheel_next_slot
            if 0 <= offset < size:
                slot_index = index % size
                slot = env._wheel_slots[slot_index]
                self._wheel_pos = len(slot)
                slot.append(entry)
                env._wheel_count += 1
                self._in_wheel = slot_index + 1
                return
            if offset >= size:
                env.wheel_overflows += 1
        _heappush(env._queue, entry)

    def _fire(self) -> None:
        """Kernel callback: run one beat, then re-arm in place."""
        self._in_wheel = False
        self._armed = False
        self.fired += 1
        self.fn(self.arg)
        if self._cancelled:
            return
        interval_fn = self.interval_fn
        self._arm(self.interval if interval_fn is None else interval_fn())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "armed" if self._armed else "idle"
        )
        return f"<PeriodicHandle {state} fired={self.fired} next={self.when!r}>"


class Process(Event):
    """A running process.

    A process is itself an event: it triggers when the wrapped generator
    terminates, with the value passed to ``return`` (or the exception that
    escaped it).  Other processes may therefore wait for its completion by
    yielding it.
    """

    __slots__ = ("generator", "name", "_target", "is_alive_override")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None when running
        #: or terminated)
        self._target: Event | None = None
        Initialize(env, self)

    # -- public API ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is _PENDING

    @property
    def target(self) -> Event | None:
        """The event the process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        env = self.env
        env._urgent.append(_InterruptEvent(env, self, Interrupt(cause)))

    def wait_any(self, events: Iterable[Event], timeout: float | None = None):
        """Process fragment racing ``events`` against an optional ``timeout``.

        Convenience for :func:`wait_any` — use inside this process's generator
        as ``outcome = yield from process.wait_any([...], timeout=...)``; the
        cleanup guarantees of :func:`wait_any` apply.
        """
        return wait_any(self.env, events, timeout)

    def kill(self, cause: Any = None) -> None:
        """Throw :class:`ProcessKilled` into the process at the current time.

        Used for crash semantics: the process is not expected to survive; if
        :class:`ProcessKilled` escapes the generator, it is silently dropped
        (the process just terminates without value).
        """
        if not self.is_alive:
            return
        env = self.env
        env._urgent.append(_InterruptEvent(env, self, ProcessKilled(cause)))

    # -- kernel callbacks ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        exc_to_throw: BaseException | None = None
        value: Any = None
        if event is not None:
            if event._ok:
                value = event._value
            else:
                event._defused = True
                exc_to_throw = event._value

        while True:
            try:
                if exc_to_throw is not None:
                    exc, exc_to_throw = exc_to_throw, None
                    target = self.generator.throw(exc)
                else:
                    target = self.generator.send(value)
            except StopIteration as stop:
                self._target = None
                self.env._active_process = None
                if not self.triggered:
                    self._ok = True
                    self._value = stop.value
                    self.env._tick.append(self)
                return
            except ProcessKilled:
                # Crash semantics: a killed process simply disappears.
                self._target = None
                self.env._active_process = None
                if not self.triggered:
                    self._ok = True
                    self._value = None
                    self.env._tick.append(self)
                return
            except BaseException as err:  # escaped process failure
                self._target = None
                self.env._active_process = None
                if not self.triggered:
                    self._ok = False
                    self._value = err
                    self.env._tick.append(self)
                return

            if not isinstance(target, Event):
                exc_to_throw = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                continue
            if target.env is not self.env:
                exc_to_throw = SimulationError(
                    "yielded an event bound to a different environment"
                )
                continue
            if target._cancelled:
                exc_to_throw = SimulationError(
                    f"process {self.name!r} yielded a cancelled event: {target!r}"
                )
                continue

            if target.callbacks is None:
                # Already processed (callbacks is None only once processed):
                # resume immediately with its outcome.
                if target._ok:
                    value = target._value
                    continue
                target._defused = True
                exc_to_throw = target._value
                continue

            # Wait for the target event.
            self._target = target
            target.callbacks.append(self._resume)  # type: ignore[union-attr]
            break

        self.env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.is_alive else "terminated"
        return f"<Process {self.name!r} {status}>"


class _InterruptEvent(Event):
    """Internal event delivering an interrupt/kill to a process."""

    __slots__ = ("process", "exception")

    def __init__(
        self, env: "Environment", process: Process, exception: BaseException
    ) -> None:
        super().__init__(env)
        self.process = process
        self.exception = exception
        self._ok = True
        self._value = None
        self.callbacks = [self._deliver]

    def _deliver(self, _event: Event) -> None:
        process = self.process
        if not process.is_alive:
            return
        # Detach the process from whatever it is currently waiting on; the
        # abandon cascade then reclaims anything only that wait kept alive
        # (a sleep timer is cancelled, a store getter is purged, a condition
        # withdraws from its constituent events).
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
            else:
                target._maybe_abandon()
        process._target = None
        failed = Event(process.env)
        failed._ok = False
        failed._value = self.exception
        failed._defused = True
        process._resume(failed)


# ---------------------------------------------------------------------------
# Composite conditions
# ---------------------------------------------------------------------------


def _cancel_condition_on_abandon(condition: "Condition") -> None:
    """Abandon hook for conditions: withdraw from the constituent events."""
    condition.cancel()


class Condition(Event):
    """Base class for :class:`AnyOf` / :class:`AllOf`.

    On trigger the condition *detaches* itself from every constituent event
    that has not fired, so losing events are not left holding a stale
    ``_check`` callback (and, through the abandon cascade, losing timeouts
    are cancelled and losing store getters purged).  The same cleanup runs
    through :meth:`cancel` when the condition itself is abandoned — e.g. the
    waiting process was killed.
    """

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        # Conditions guard every racing wait of the protocol layers, so
        # Event.__init__ is inlined (one call fewer per race).
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self._abandon_hook = _cancel_condition_on_abandon
        self.events = tuple(events)
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            # Validate before any subscription: failing halfway through the
            # subscribe loop would leak this half-built condition's _check
            # onto the earlier events.
            if event.env is not env:
                raise SimulationError("condition mixes environments")
        check = self._check  # bind once: this loop runs on the hot path
        for event in self.events:
            callbacks = event.callbacks
            if callbacks is not None:
                callbacks.append(check)
            else:
                # callbacks is None only once processed; re-check the value.
                check(event)
                if self._value is not _PENDING:
                    break

    def cancel(self) -> None:
        """Withdraw from every constituent event that has not fired yet.

        Safe to call at any time (idempotent); the condition itself is left
        untriggered when still pending — nobody is waiting for it anymore.
        """
        check = self._check
        env = self.env
        dead = 0
        for event in self.events:
            callbacks = event.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(check)
                except ValueError:
                    continue
                if callbacks:
                    continue
                # Inlined Event._maybe_abandon (this is the race-loser path),
                # with the ubiquitous timeout hook dispatched without the
                # double indirection of hook -> Timeout.cancel.
                hook = event._abandon_hook
                if hook is None:
                    continue
                event._abandon_hook = None
                if hook is _cancel_on_abandon:
                    # Inlined Timeout.cancel: the event still held callbacks
                    # a moment ago, so it is a pending (never-fired) timer —
                    # only the already-cancelled guard applies.
                    if event._cancelled:
                        continue
                    event._cancelled = True
                    if event.delay != 0.0:
                        if event._in_wheel:
                            # Wheel-staged loser: swap-removed on the spot
                            # (inlined Timeout.cancel wheel branch).
                            slot = env._wheel_slots[event._in_wheel - 1]
                            pos = event._wheel_pos
                            last = slot.pop()
                            if pos < len(slot):
                                slot[pos] = last
                                marker = last[2]
                                if marker is not None:
                                    marker._wheel_pos = pos
                            env._wheel_count -= 1
                            event._in_wheel = False
                        else:
                            # Heap-resident loser: tombstoned (the same-tick
                            # ones just drain).
                            dead += 1
                else:
                    hook(event)
        if dead:
            # One batched tombstone-accounting pass for the whole loser set.
            env._dead_entries += dead
            if (
                env._dead_entries >= env._COMPACTION_MIN_DEAD
                and 2 * env._dead_entries >= len(env._queue)
            ):
                env._compact()

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._value is not _PENDING and e._ok}

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self._count += 1
            if self._satisfied():
                # Inlined succeed(): the condition trigger is the single
                # hottest succeed call site in the protocol layers.
                self._ok = True
                self._value = self._collect()
                self.env._tick.append(self)
        if self._value is not _PENDING:
            # Detach from the losers so they do not keep a stale callback.
            self.cancel()


class AnyOf(Condition):
    """Triggers as soon as any of the given events triggers."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1

    def _check(self, event: Event) -> None:
        # Specialised Condition._check: the first success always satisfies,
        # so the _satisfied() dispatch is skipped — this is the protocol
        # layers' hottest trigger path (every reply-vs-timeout race).
        if self._value is not _PENDING:
            return
        if event._ok:
            self._count += 1
            self._ok = True
            self._value = self._collect()
            self.env._tick.append(self)
        else:
            event._defused = True
            self.fail(event._value)
        # Detach from the losers so they do not keep a stale callback.
        self.cancel()


class AllOf(Condition):
    """Triggers once all of the given events have triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)


# ---------------------------------------------------------------------------
# Cancellable racing waits
# ---------------------------------------------------------------------------


class WaitOutcome:
    """Result of a :func:`wait_any` race.

    ``events`` maps each *payload* event that triggered to its value (the
    expiry timer is never included); ``expired`` tells whether the race was
    decided by the timeout.
    """

    __slots__ = ("events", "expired")

    def __init__(self, events: dict[Event, Any], expired: bool) -> None:
        self.events = events
        self.expired = expired

    @property
    def timed_out(self) -> bool:
        """True when the timeout fired and no payload event did."""
        return self.expired and not self.events

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def get(self, event: Event, default: Any = None) -> Any:
        """Value of ``event`` if it triggered, else ``default``."""
        return self.events.get(event, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WaitOutcome fired={len(self.events)} expired={self.expired}>"


def wait_any(env: "Environment", events: Iterable[Event], timeout: float | None = None):
    """Race ``events`` (optionally against a ``timeout``), with guaranteed cleanup.

    Process fragment: use as ``outcome = yield from wait_any(env, [...], ...)``
    (or the :meth:`Environment.wait_any` / :meth:`Process.wait_any` shorthands).
    Returns a :class:`WaitOutcome`.  Whatever way the wait ends — a payload
    event fires, the timeout expires, the process is interrupted or killed —
    every losing event is detached from and a losing (or pending) expiry timer
    is cancelled, so racing waits leave neither stale callbacks on long-lived
    events nor dead timers in the heap.
    """
    events = list(events)
    expiry = Timeout(env, timeout) if timeout is not None else None
    race: list[Event] = list(events)
    if expiry is not None:
        race.append(expiry)
    condition = AnyOf(env, race)
    try:
        yield condition
    finally:
        condition.cancel()
        if expiry is not None and not expiry._processed:
            expiry.cancel()
    # "Fired" means processed by the time the race resolved: a Timeout holds
    # its value from construction (triggered at birth), so the triggered flag
    # would wrongly report raced-and-cancelled timers as winners.
    fired = {event: event._value for event in events if event._processed}
    return WaitOutcome(fired, expired=expiry is not None and expiry._processed)


# ---------------------------------------------------------------------------
# Environment
# ---------------------------------------------------------------------------


class Environment:
    """The simulation environment: virtual clock plus a four-lane schedule.

    Work pending at the current tick is kept out of the heap entirely:

    * **urgent lane** — a FIFO deque for kernel-priority events (process
      initialisation, interrupt/kill delivery).  Always drained first, so an
      interrupt scheduled mid-tick preempts every normal event of that tick.
    * **same-tick lane** — a FIFO deque for everything triggered at the
      current time: ``succeed``/``fail`` chains, condition triggers,
      zero-delay timeouts, and zero-delay :meth:`call_at` callbacks.  Drained
      after the urgent lane, before the clock may advance.
    * **timer wheel** — a hashed wheel of ``wheel_slots`` fixed windows of
      ``wheel_granularity`` virtual seconds each.  Future timers within the
      wheel horizon are *staged* here as ready-made heap tuples — their
      sequence number is drawn at schedule time — and the whole window is
      flushed into the heap just before the clock can reach it, so ordering
      is bit-for-bit what a direct heap push would have produced.  A window
      is an *unordered* staging bag — each entry carries its own (time, seq)
      key — so schedule and cancel are both true O(1): an append, and a
      swap-remove of the entry at its recorded slot position.  The dense
      periodic traffic of the protocol layers (heartbeats, retry ladders,
      replication cadences, detector timeouts) never pays O(log n) heap
      churn, and the cancelled majority of raced timers leaves no residue
      at all — no tombstone, no compaction debt, no cache footprint.
      Timers beyond the horizon (and timers whose window already flushed)
      cascade to the heap; ``wheel_slots=0`` disables the lane entirely.
    * **event heap** — the time-ordered heap for near-term and overflow
      work.  It holds both full events (``(time, seq, event)``) and bare
      callback entries scheduled with :meth:`call_at` (``(time, seq, None,
      fn, arg)``, with a :class:`CallHandle` in place of ``None`` for
      cancellable calls) — the callback lane costs one tuple per call
      instead of an :class:`Event` allocation, which is what keeps
      per-message transport delivery allocation-free.

    Within a lane, ordering is FIFO; across lanes at one tick it is urgent →
    same-tick → heap entries due now (wheel entries re-join the heap before
    they can be due).  Cancelled heap entries (timers and call handles) stay
    behind as *tombstones*: they are skipped when they surface at the top,
    and when they outnumber half of the heap (past a small floor) the whole
    schedule is compacted in one O(n) pass; cancelled wheel entries are
    swap-removed on the spot and need no compaction.  This keeps both
    cancellation and scheduling O(log live) amortised, no matter how many
    raced-and-lost
    timers the protocol layers churn through.
    """

    #: never compact below this many tombstones (avoids thrashing tiny heaps).
    _COMPACTION_MIN_DEAD = 64
    #: gen-0 GC threshold applied while run() drains the schedule (see run()).
    _GC_BATCH_GEN0 = 100_000

    def __init__(
        self,
        initial_time: float = 0.0,
        *,
        wheel_granularity: float = 1.0,
        wheel_slots: int = 256,
    ) -> None:
        self._now = float(initial_time)
        #: time-ordered heap of (time, seq, event) / (time, seq, fn, arg[, handle]).
        self._queue: list[tuple] = []
        #: same-tick FIFO lane: events and (fn, arg) callback pairs.
        self._tick: deque = deque()
        #: urgent same-tick FIFO lane: kernel-priority events only.
        self._urgent: deque = deque()
        self._counter = itertools.count()
        self._active_process: Process | None = None
        #: cancelled entries still sitting in the heap.
        self._dead_entries = 0
        #: number of bulk compactions performed (observability / tests).
        self.compactions = 0
        #: number of events actually processed (tombstones excluded).
        self.events_processed = 0
        #: high-water mark of the heap size, tombstones included (observed
        #: at stats snapshots and compactions; see queue_stats()).
        self.peak_heap_size = 0
        # Timer-wheel lane state (see the class docstring).
        if wheel_granularity <= 0.0:
            raise SimulationError("wheel_granularity must be positive")
        if wheel_slots < 0:
            raise SimulationError("wheel_slots must be non-negative")
        self._wheel_granularity = float(wheel_granularity)
        self._wheel_size = int(wheel_slots)
        self._wheel_slots: list[list[tuple]] = [[] for _ in range(self._wheel_size)]
        #: absolute index of the first window not yet flushed into the heap.
        base = int(self._now / self._wheel_granularity)
        self._wheel_next_slot = base
        self._wheel_next_boundary = base * self._wheel_granularity
        #: entries currently staged on the wheel (all live: a cancel removes
        #: its entry from the slot in place, so the wheel holds no tombstones).
        self._wheel_count = 0
        #: number of non-empty windows flushed into the heap.
        self.wheel_flushes = 0
        #: entries that overflowed the horizon and cascaded to the heap.
        self.wheel_overflows = 0
        #: high-water mark of staged wheel entries (sampled like peak_heap_size).
        self.peak_wheel_size = 0

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a new :class:`Process` wrapping ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Shorthand for :class:`AnyOf`."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Shorthand for :class:`AllOf`."""
        return AllOf(self, events)

    def wait_any(self, events: Iterable[Event], timeout: float | None = None):
        """Shorthand for :func:`wait_any` (a ``yield from``-able fragment)."""
        return wait_any(self, events, timeout)

    # -- callback lane -------------------------------------------------------
    def call_at(self, when: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at virtual time ``when`` (fire-and-forget).

        The cheap lane for hot paths that need neither an :class:`Event` to
        wait on nor cancellation: one bare tuple on the heap (or a same-tick
        lane entry when ``when`` is not in the future) instead of an event
        allocation.  ``fn`` must not block; it runs exactly like an event
        callback.
        """
        if when <= self._now:
            self._tick.append((fn, arg))
            return
        entry = (when, next(self._counter), None, fn, arg)
        if not self._wheel_schedule(when, entry):
            _heappush(self._queue, entry)

    def call_at_cancellable(
        self, when: float, fn: Callable[[Any], None], arg: Any = None
    ) -> CallHandle:
        """Schedule ``fn(arg)`` at ``when``; returns a :class:`CallHandle`.

        Like :meth:`call_at` plus one :class:`CallHandle` allocation; the
        handle's :meth:`~CallHandle.cancel` is O(1) in either lane — a
        wheel-staged entry is swap-removed, a heap-resident one tombstoned
        exactly like a cancelled timer.  Entries due in the past fire at the
        current tick.
        """
        handle = CallHandle(self)
        if when < self._now:
            when = self._now
        entry = (when, next(self._counter), handle, fn, arg)
        slot_token = self._wheel_schedule(when, entry)
        if slot_token:
            handle._in_wheel = slot_token
        else:
            _heappush(self._queue, entry)
        return handle

    def call_periodic(
        self,
        interval: float | None,
        fn: Callable[[Any], None],
        arg: Any = None,
        *,
        first_delay: float | None = None,
        interval_fn: Callable[[], float] | None = None,
    ) -> PeriodicHandle:
        """Schedule ``fn(arg)`` every ``interval``; returns a :class:`PeriodicHandle`.

        The returned handle re-arms itself *in place* after each beat: the
        whole periodic activity costs one handle allocation up front and one
        O(1) wheel append per beat — no per-beat Event/Timeout/handle churn.
        ``first_delay`` (default: one interval) desynchronises the first
        beat; ``interval_fn``, when given, supplies each next-beat delay
        (evaluated *after* ``fn`` runs) for jittered cadences — ``interval``
        may then be ``None``.  Cancel with
        :meth:`PeriodicHandle.cancel` (O(1), allowed from inside ``fn``).
        """
        if interval is None and interval_fn is None:
            raise SimulationError("call_periodic needs interval or interval_fn")
        if interval is not None and interval <= 0.0:
            raise SimulationError(f"periodic interval must be positive, got {interval!r}")
        handle = PeriodicHandle(self, interval, fn, arg, interval_fn)
        delay = first_delay
        if delay is None:
            delay = interval if interval_fn is None else interval_fn()
        handle._arm(delay)
        return handle

    # -- timer wheel ---------------------------------------------------------
    def _wheel_schedule(self, when: float, entry: tuple) -> int:
        """Stage ``entry`` on the wheel; 0 (falsy) → the caller must heap-push.

        On success the return value is the slot token (slot index + 1, always
        truthy) the caller stores in its ``_in_wheel``; the in-slot position
        is recorded on the entry's marker (``entry[2]``, when present) so a
        later cancel can swap-remove exactly that entry.

        Entries land in the window containing ``when``; a window is flushed
        into the heap (in one batch, before the clock can reach it) by
        :meth:`_skim`.  Entries whose window already flushed, and entries
        beyond the horizon (counted in ``wheel_overflows``), go straight to
        the heap.  The entry's sequence number was drawn by the caller, so
        flushing preserves exactly the (time, seq) order a direct push would
        have produced.
        """
        size = self._wheel_size
        if not size:
            return 0
        granularity = self._wheel_granularity
        if not self._wheel_count:
            # Empty wheel: drag the flush cursor up to the present so a long
            # quiet spell does not leave the horizon anchored in the past.
            base = int(self._now / granularity)
            if base > self._wheel_next_slot:
                self._wheel_next_slot = base
                self._wheel_next_boundary = base * granularity
        index = int(when / granularity)
        if index * granularity > when:
            # Float-division rounding put `when` past its true window; a
            # window must never start after an entry it holds fires.
            index -= 1
        offset = index - self._wheel_next_slot
        if offset < 0:
            return 0
        if offset >= size:
            self.wheel_overflows += 1
            return 0
        slot_index = index % size
        slot = self._wheel_slots[slot_index]
        marker = entry[2]
        if marker is not None:
            marker._wheel_pos = len(slot)
        slot.append(entry)
        self._wheel_count += 1
        return slot_index + 1

    def _flush_wheel(self) -> None:
        """Flush matured windows into the heap (every entry is live).

        Called by :meth:`_skim` when the next unflushed window starts at or
        before the heap top (or the heap is empty): windows are pushed in
        batch while their boundary does not exceed the next live heap entry,
        so every staged entry re-joins the heap strictly before the clock
        can reach its window.  Empty windows just advance the cursor.
        Cancels swap-removed their entries at cancel time, so a slot never
        holds dead entries to skip.
        """
        queue = self._queue
        slots = self._wheel_slots
        size = self._wheel_size
        granularity = self._wheel_granularity
        next_slot = self._wheel_next_slot
        while self._wheel_count:
            if queue and next_slot * granularity > queue[0][0]:
                break
            slot = slots[next_slot % size]
            next_slot += 1
            if slot:
                self.wheel_flushes += 1
                self._wheel_count -= len(slot)
                for entry in slot:
                    marker = entry[2]
                    if marker is not None:
                        marker._in_wheel = False
                    _heappush(queue, entry)
                slot.clear()
        self._wheel_next_slot = next_slot
        self._wheel_next_boundary = next_slot * granularity

    # -- tombstone bookkeeping -----------------------------------------------
    # Cancellation accounting lives inline in Timeout.cancel / CallHandle.cancel
    # (dead-entry count + compaction trigger); dead heap tops are skimmed by
    # _skim(), shared by peek(), step() and the run() drain loop.

    def _compact(self) -> None:
        """Drop every heap tombstone in one pass (filter + re-heapify).

        Both tombstone kinds are handled — cancelled events and cancelled
        :meth:`call_at_cancellable` / :meth:`call_periodic` handles
        (entry[2] is the event, the handle, or None for an uncancellable
        :meth:`call_at` entry).  The wheel needs no pass: a wheel cancel
        swap-removes its entry immediately, so only heap entries tombstone.
        """
        heap_size = len(self._queue)
        if heap_size > self.peak_heap_size:
            self.peak_heap_size = heap_size
        self._queue = [
            entry for entry in self._queue
            if entry[2] is None or not entry[2]._cancelled
        ]
        _heapify(self._queue)
        self._dead_entries = 0
        self.compactions += 1

    def _skim(self) -> list[tuple]:
        """Pop dead entries off the heap top; returns the heap (shared helper).

        The single tombstone-pop loop used by :meth:`peek`, :meth:`step` and
        the :meth:`run` drain loop, so the top-of-heap scan is written (and
        paid) once.  Also the wheel's integration point: once the next
        unflushed window starts at or before the (live) heap top — or the
        heap is empty — the matured windows are flushed into the heap before
        the caller may pop, which is exactly what keeps wheel residency
        invisible to event ordering.
        """
        queue = self._queue
        while queue:
            marker = queue[0][2]
            if marker is None or not marker._cancelled:
                break
            _heappop(queue)
            self._dead_entries -= 1
        if self._wheel_count:
            if not queue or self._wheel_next_boundary <= queue[0][0]:
                self._flush_wheel()
        return queue

    def queue_stats(self) -> dict[str, int]:
        """Schedule occupancy snapshot: live vs dead entries, peaks, compactions.

        ``dead_entries`` counts cancelled timers and cancelled handle entries
        still sitting in the heap (the wheel never holds tombstones — a
        wheel cancel swap-removes its entry immediately); ``live_entries``
        spans both lanes (``wheel_entries`` + live heap entries).
        ``peak_heap_size`` / ``peak_wheel_size`` are high-water marks
        observed at the sampling points (stats snapshots and compactions —
        the lanes are largest right before a compaction, so those points
        bracket the true peak) rather than being re-checked on every push,
        which keeps the per-event schedule path free of bookkeeping.
        """
        heap_size = len(self._queue)
        if heap_size > self.peak_heap_size:
            self.peak_heap_size = heap_size
        wheel_size = self._wheel_count
        if wheel_size > self.peak_wheel_size:
            self.peak_wheel_size = wheel_size
        return {
            "heap_size": heap_size,
            "dead_entries": self._dead_entries,
            "live_entries": heap_size - self._dead_entries + self._wheel_count,
            "tick_queued": len(self._tick),
            "urgent_queued": len(self._urgent),
            "peak_heap_size": self.peak_heap_size,
            "compactions": self.compactions,
            "events_processed": self.events_processed,
            "wheel_entries": self._wheel_count,
            "wheel_slots": self._wheel_size,
            "wheel_flushes": self.wheel_flushes,
            "wheel_overflows": self.wheel_overflows,
            "peak_wheel_size": self.peak_wheel_size,
        }

    def reset_counters(self) -> None:
        """Reset the event sequence counter (long-run hygiene).

        The tie-breaking counter grows without bound — harmless for any one
        scenario, but a very long realtime session (or a process embedding
        many back-to-back runs in one Environment) can reset it between
        runs.  Only legal while the schedule is completely empty: a pending
        entry holds a drawn sequence number, and resetting under it would
        break FIFO ordering.
        """
        if self._queue or self._tick or self._urgent or self._wheel_count:
            raise SimulationError("reset_counters() requires an empty schedule")
        self._counter = itertools.count()

    def peek(self) -> float:
        """Time of the next *live* scheduled work item, or ``inf`` if none.

        Same-tick lanes pend at the current time; dead entries (cancelled
        zero-delay events at the lane head, heap tombstones at the top) are
        dropped on the way.
        """
        if self._urgent:
            return self._now
        tick = self._tick
        while tick:
            entry = tick[0]
            if type(entry) is tuple or not entry._cancelled:
                return self._now
            tick.popleft()
        queue = self._skim()
        return queue[0][0] if queue else _INF

    def step(self) -> None:
        """Process the next live scheduled work item (one lane entry).

        Mirrors one iteration of the :meth:`run` drain loop (which inlines
        this logic for speed); keep the two in sync.
        """
        event: Event | None = None
        if self._urgent:
            event = self._urgent.popleft()
        else:
            tick = self._tick
            while tick:
                entry = tick.popleft()
                if type(entry) is tuple:
                    self.events_processed += 1
                    entry[0](entry[1])
                    return
                if not entry._cancelled:
                    event = entry
                    break
        if event is None:
            queue = self._skim()
            if not queue:
                raise SimulationError("step() on an empty schedule")
            entry = _heappop(queue)
            self._now = entry[0]
            marker = entry[2]
            if marker is None or marker.__class__ is CallHandle:
                self.events_processed += 1
                if marker is not None:
                    marker._fired = True
                entry[3](entry[4])
                return
            if marker.__class__ is PeriodicHandle:
                self.events_processed += 1
                marker._fire()
                return
            event = marker
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        # Processed before the callbacks run: from their perspective (and
        # that of anything they resume) the event has fired.
        event._processed = True
        for callback in callbacks or ():
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure: surface it to the caller of run().
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the schedule drains;
        * a number — run until that virtual time (the clock is advanced to it);
        * an :class:`Event` — run until that event has been processed and
          return its value.

        For the duration of the drain the gen-0 GC threshold is raised (and
        restored on exit): event churn allocates tens of tracked objects per
        protocol round, and default thresholds make the collector rescan the
        same surviving timers thousands of times per simulated second.  The
        kernel's abandon cascade keeps the event graph acyclic once a race
        resolves, so practically all garbage is reclaimed by reference
        counting and delaying cycle detection is safe.
        """
        stop_event: Event | None = None
        stop_time: float | None = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time!r} is in the past (now={self._now!r})"
                )

        restore_gc_threshold: tuple[int, int, int] | None = None
        if gc.isenabled():
            thresholds = gc.get_threshold()
            if 0 < thresholds[0] < self._GC_BATCH_GEN0:
                restore_gc_threshold = thresholds
                gc.set_threshold(self._GC_BATCH_GEN0, *thresholds[1:])
        try:
            return self._drain(stop_event, stop_time)
        finally:
            if restore_gc_threshold is not None:
                gc.set_threshold(*restore_gc_threshold)

    def _drain(self, stop_event: Event | None, stop_time: float | None) -> Any:
        # Hot drain loop: the body of step() is inlined (locals bound once,
        # no per-event method dispatch); keep it in sync with step().
        urgent = self._urgent
        tick = self._tick
        heappop = _heappop
        while True:
            if stop_event is not None and stop_event._processed:
                if not stop_event._ok and not stop_event._defused:
                    raise stop_event._value
                return stop_event._value
            if urgent:
                event = urgent.popleft()
            elif tick:
                event = tick.popleft()
                if type(event) is tuple:
                    self.events_processed += 1
                    event[0](event[1])
                    continue
                if event._cancelled:
                    continue
            else:
                queue = self._skim()
                if not queue:
                    if stop_time is not None:
                        self._now = stop_time
                    if stop_event is not None:
                        raise SimulationError(
                            "run() until an event, but the schedule drained first"
                        )
                    return None
                entry = queue[0]
                when = entry[0]
                if stop_time is not None and when > stop_time:
                    self._now = stop_time
                    return None
                heappop(queue)
                self._now = when
                marker = entry[2]
                if marker is None or marker.__class__ is CallHandle:
                    self.events_processed += 1
                    if marker is not None:
                        marker._fired = True
                    entry[3](entry[4])
                    continue
                if marker.__class__ is PeriodicHandle:
                    self.events_processed += 1
                    marker._fire()
                    continue
                event = marker
            self.events_processed += 1
            callbacks, event.callbacks = event.callbacks, None
            event._processed = True
            for callback in callbacks or ():
                callback(event)
            if not event._ok and not event._defused:
                raise event._value

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Drain the schedule (optionally at most ``max_events`` steps).

        Returns the number of events processed.  Useful in tests.  The
        unbounded form delegates to :meth:`run`, so it pays the top-of-heap
        scan once per event instead of peek-then-step's twice.
        """
        before = self.events_processed
        if max_events is None:
            self.run()
            return self.events_processed - before
        while self.events_processed - before < max_events and self.peek() != _INF:
            # peek() already skimmed dead entries, so step() finds a live
            # head without re-scanning.
            self.step()
        return self.events_processed - before

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = (
            len(self._queue) - self._dead_entries + self._wheel_count
            + len(self._tick) + len(self._urgent)
        )
        return f"<Environment now={self._now!r} pending={live}>"
