"""Core of the discrete-event simulation kernel.

The kernel follows the process-interaction world view:

* an :class:`Environment` owns the virtual clock and the pending-event heap;
* a :class:`Process` wraps a Python generator; each value the generator yields
  must be an :class:`Event`; the process is resumed when that event fires;
* :class:`Timeout` is the elementary "wait for some virtual time" event;
* :class:`AnyOf` / :class:`AllOf` compose events;
* processes can be interrupted (:class:`Interrupt`) or killed
  (:class:`ProcessKilled`), which is how node crashes are modelled.

The implementation is intentionally dependency-free and deterministic: events
scheduled at the same virtual time fire in scheduling order (FIFO tie-break on
a monotonically increasing sequence number).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "SimulationError",
    "Interrupt",
    "ProcessKilled",
    "StopProcess",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Environment",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not for modelled faults)."""


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why the
    interruption happened (e.g. ``"node-crash"``).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Thrown into a process that is being killed (crash semantics).

    Unlike :class:`Interrupt`, a killed process is not expected to recover:
    the kernel silences any ``ProcessKilled`` escaping the generator.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Internal: raised to return a value from a process (like StopIteration)."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


_PENDING = object()


class Event:
    """A waitable, one-shot occurrence.

    An event has three states: *pending* (created, not yet triggered),
    *triggered* (scheduled on the environment queue), and *processed* (its
    callbacks have run).  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the event.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay!r}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, priority=Environment._PRIORITY_URGENT)


class Process(Event):
    """A running process.

    A process is itself an event: it triggers when the wrapped generator
    terminates, with the value passed to ``return`` (or the exception that
    escaped it).  Other processes may therefore wait for its completion by
    yielding it.
    """

    __slots__ = ("generator", "name", "_target", "is_alive_override")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None when running
        #: or terminated)
        self._target: Event | None = None
        Initialize(env, self)

    # -- public API ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is _PENDING

    @property
    def target(self) -> Event | None:
        """The event the process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        self.env._schedule(
            _InterruptEvent(self.env, self, Interrupt(cause)),
            priority=Environment._PRIORITY_URGENT,
        )

    def kill(self, cause: Any = None) -> None:
        """Throw :class:`ProcessKilled` into the process at the current time.

        Used for crash semantics: the process is not expected to survive; if
        :class:`ProcessKilled` escapes the generator, it is silently dropped
        (the process just terminates without value).
        """
        if not self.is_alive:
            return
        self.env._schedule(
            _InterruptEvent(self.env, self, ProcessKilled(cause)),
            priority=Environment._PRIORITY_URGENT,
        )

    # -- kernel callbacks ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        exc_to_throw: BaseException | None = None
        value: Any = None
        if event is not None:
            if event._ok:
                value = event._value
            else:
                event._defused = True
                exc_to_throw = event._value

        while True:
            try:
                if exc_to_throw is not None:
                    exc, exc_to_throw = exc_to_throw, None
                    target = self.generator.throw(exc)
                else:
                    target = self.generator.send(value)
            except StopIteration as stop:
                self._target = None
                self.env._active_process = None
                if not self.triggered:
                    self._ok = True
                    self._value = stop.value
                    self.env._schedule(self)
                return
            except ProcessKilled:
                # Crash semantics: a killed process simply disappears.
                self._target = None
                self.env._active_process = None
                if not self.triggered:
                    self._ok = True
                    self._value = None
                    self.env._schedule(self)
                return
            except BaseException as err:  # escaped process failure
                self._target = None
                self.env._active_process = None
                if not self.triggered:
                    self._ok = False
                    self._value = err
                    self.env._schedule(self)
                return

            if not isinstance(target, Event):
                exc_to_throw = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                continue
            if target.env is not self.env:
                exc_to_throw = SimulationError(
                    "yielded an event bound to a different environment"
                )
                continue

            if target.triggered and target.callbacks is None:
                # Already processed: resume immediately with its outcome.
                if target._ok:
                    value = target._value
                    continue
                target._defused = True
                exc_to_throw = target._value
                continue

            # Wait for the target event.
            self._target = target
            target.callbacks.append(self._resume)  # type: ignore[union-attr]
            break

        self.env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.is_alive else "terminated"
        return f"<Process {self.name!r} {status}>"


class _InterruptEvent(Event):
    """Internal event delivering an interrupt/kill to a process."""

    __slots__ = ("process", "exception")

    def __init__(
        self, env: "Environment", process: Process, exception: BaseException
    ) -> None:
        super().__init__(env)
        self.process = process
        self.exception = exception
        self._ok = True
        self._value = None
        self.callbacks = [self._deliver]

    def _deliver(self, _event: Event) -> None:
        process = self.process
        if not process.is_alive:
            return
        # Detach the process from whatever it is currently waiting on.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        process._target = None
        failed = Event(process.env)
        failed._ok = False
        failed._value = self.exception
        failed._defused = True
        process._resume(failed)


# ---------------------------------------------------------------------------
# Composite conditions
# ---------------------------------------------------------------------------


class Condition(Event):
    """Base class for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: tuple[Event, ...] = tuple(events)
        self._count = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes environments")
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.triggered and event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)  # type: ignore[union-attr]
            if self.triggered:
                break

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._ok}

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers as soon as any of the given events triggers."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(Condition):
    """Triggers once all of the given events have triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)


# ---------------------------------------------------------------------------
# Environment
# ---------------------------------------------------------------------------


class Environment:
    """The simulation environment: virtual clock plus pending-event heap."""

    _PRIORITY_URGENT = 0
    _PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Process | None = None

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a new :class:`Process` wrapping ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Shorthand for :class:`AnyOf`."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Shorthand for :class:`AllOf`."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int | None = None
    ) -> None:
        if priority is None:
            priority = self._PRIORITY_NORMAL
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._counter), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        event._processed = True
        if not event._ok and not event._defused:
            # An unhandled failure: surface it to the caller of run().
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the schedule drains;
        * a number — run until that virtual time (the clock is advanced to it);
        * an :class:`Event` — run until that event has been processed and
          return its value.
        """
        stop_event: Event | None = None
        stop_time: float | None = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time!r} is in the past (now={self._now!r})"
                )

        while True:
            if stop_event is not None and stop_event.processed:
                if not stop_event._ok and not stop_event._defused:
                    raise stop_event._value
                return stop_event._value
            if not self._queue:
                if stop_time is not None:
                    self._now = stop_time
                if stop_event is not None:
                    raise SimulationError(
                        "run() until an event, but the schedule drained first"
                    )
                return None
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                return None
            self.step()

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Drain the queue (optionally at most ``max_events`` steps).

        Returns the number of events processed.  Useful in tests.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment now={self._now!r} pending={len(self._queue)}>"
