"""Instrumentation: counters, time series and event traces.

Experiments need two kinds of observations:

* scalar counters / gauges (number of faults injected, messages sent, tasks
  re-executed, ...);
* time series of ``(time, value)`` samples — the completed-task curves of
  Figures 9-11 are exactly this.

The :class:`Monitor` aggregates both and is passed around by the grid runner;
components record into it through small, allocation-light helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

import numpy as np

__all__ = ["Counter", "TimeSeries", "Monitor", "TraceRecord"]


@dataclass
class TraceRecord:
    """One structured trace event (used by tests and debugging)."""

    time: float
    category: str
    payload: dict[str, Any] = field(default_factory=dict)


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r}: non-monotonic sample "
                f"{time} after {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the series as a pair of numpy arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)

    def value_at(self, time: float, default: float = 0.0) -> float:
        """Last sampled value at or before ``time`` (step interpolation)."""
        index = int(np.searchsorted(np.asarray(self.times), time, side="right")) - 1
        if index < 0:
            return default
        return self.values[index]

    def resample(self, times: "np.ndarray | list[float]", default: float = 0.0) -> np.ndarray:
        """Step-interpolate the series on the given time grid."""
        grid = np.asarray(times, dtype=float)
        if len(self.times) == 0:
            return np.full_like(grid, default, dtype=float)
        own_times = np.asarray(self.times)
        own_values = np.asarray(self.values)
        idx = np.searchsorted(own_times, grid, side="right") - 1
        out = np.where(idx >= 0, own_values[np.clip(idx, 0, None)], default)
        return out.astype(float)

    def final_value(self, default: float = 0.0) -> float:
        """The last recorded value (or ``default`` if empty)."""
        return self.values[-1] if self.values else default


class Counter:
    """A pre-resolved counter handle: one name lookup at creation, never after.

    Hot paths obtain the handle once (``sent = monitor.counter("net.sent")``)
    and then increment through it — ``sent.add()``, or ``sent.value += n``
    where the call overhead matters — with zero per-increment dict-by-string
    work.  The handle and the monitor share state: :meth:`Monitor.count` and
    :meth:`Monitor.counters` read the same value.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increment the counter by ``amount``."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Monitor:
    """Collects counters, gauges, time series and trace records for one run."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self.gauges: dict[str, float] = {}
        self.series: dict[str, TimeSeries] = {}
        self.traces: list[TraceRecord] = []
        self.trace_enabled = True
        self.trace_limit = 200_000

    # -- counters / gauges ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the :class:`Counter` handle for ``name``."""
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount`` (by-name convenience)."""
        self.counter(name).value += amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = float(value)

    def count(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        handle = self._counters.get(name)
        return handle.value if handle is not None else 0.0

    @property
    def counters(self) -> Mapping[str, float]:
        """Read-only snapshot of every counter as a name-to-value mapping.

        Writes go through :meth:`incr` or a :meth:`counter` handle; the
        mapping is a frozen snapshot, so an accidental ``counters[x] += 1``
        raises instead of silently updating a throwaway dict.
        """
        return MappingProxyType(
            {name: handle.value for name, handle in self._counters.items()}
        )

    # -- time series ----------------------------------------------------------
    def timeseries(self, name: str) -> TimeSeries:
        """Return (creating if needed) the time series called ``name``."""
        series = self.series.get(name)
        if series is None:
            series = TimeSeries(name)
            self.series[name] = series
        return series

    def sample(self, name: str, time: float, value: float) -> None:
        """Append one sample to the time series ``name``."""
        self.timeseries(name).record(time, value)

    # -- traces ---------------------------------------------------------------
    def trace(self, time: float, category: str, **payload: Any) -> None:
        """Record a structured trace event (bounded by ``trace_limit``)."""
        if not self.trace_enabled or len(self.traces) >= self.trace_limit:
            return
        self.traces.append(TraceRecord(time=time, category=category, payload=payload))

    def traces_of(self, category: str) -> list[TraceRecord]:
        """All trace records with the given category."""
        return [t for t in self.traces if t.category == category]

    # -- reporting --------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """A plain-dict snapshot of counters, gauges and series lengths."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "series": {name: len(ts) for name, ts in self.series.items()},
            "traces": len(self.traces),
        }
