"""Discrete-event simulation kernel used by every RPC-V substrate.

The kernel is deliberately small and self-contained (no third-party
dependency): an event queue driven by :class:`~repro.sim.core.Environment`,
generator-based :class:`~repro.sim.core.Process` objects that ``yield``
waitable :class:`~repro.sim.core.Event` instances, plus a handful of
conveniences (timeouts, stores, composite conditions, interrupts) modelled
after the classical process-interaction style of SimPy.

Every experiment of the paper runs on this kernel in *virtual* time, which is
what makes high-frequency correlated fault injection both possible and
reproducible (the paper itself had to build a dedicated fault generator and a
confined cluster for the same reason).
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    CallHandle,
    Environment,
    Event,
    Interrupt,
    PeriodicHandle,
    Process,
    ProcessKilled,
    SimulationError,
    Timeout,
    WaitOutcome,
    wait_any,
)
from repro.sim.monitor import Counter, Monitor, TimeSeries
from repro.sim.rng import RandomStreams
from repro.sim.store import FilterStore, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CallHandle",
    "Counter",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "Monitor",
    "PeriodicHandle",
    "PriorityStore",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "SimulationError",
    "Store",
    "TimeSeries",
    "Timeout",
    "WaitOutcome",
    "wait_any",
]
