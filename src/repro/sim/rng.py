"""Deterministic, named random-number streams.

Every stochastic element of a scenario (network jitter, task durations, fault
inter-arrival times, scheduler tie-breaking ...) draws from its own named
stream derived from a single master seed.  This gives two properties the
paper's confined-cluster methodology was after:

* **reproducibility** — the same scenario seed always produces the same run;
* **variance isolation** — changing, say, the fault model does not perturb the
  task-duration draws, so sweeps compare like with like.

A third property rides on top for paired policy comparisons: streams whose
name starts with the ``crn.`` prefix re-key off an optional *common random
numbers* seed (``crn_seed``) instead of the master seed.  Two runs that
differ in master seed (or in nothing but the policy under test) but share a
``crn_seed`` draw identical fault/churn schedules from their ``crn.*``
streams, so survival differences between policy arms are attributable to
the policies rather than to fault-schedule noise.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

__all__ = ["CRN_PREFIX", "RandomStreams"]

#: stream-name prefix whose streams re-key off ``crn_seed`` when it is set.
CRN_PREFIX = "crn."


class RandomStreams:
    """A factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0, crn_seed: int | None = None) -> None:
        self.master_seed = int(master_seed)
        #: common-random-numbers seed for ``crn.*`` streams; ``None`` keys
        #: them off the master seed like every other stream.  May be set any
        #: time before the first ``crn.*`` stream is created.
        self.crn_seed = None if crn_seed is None else int(crn_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            base = self.master_seed
            if self.crn_seed is not None and name.startswith(CRN_PREFIX):
                base = self.crn_seed
            digest = hashlib.sha256(f"{base}:{name}".encode("utf-8")).digest()
            seed = int.from_bytes(digest[:8], "little")
            generator = np.random.default_rng(seed)
            self._streams[name] = generator
        return generator

    def fingerprint(self, prefixes: tuple[str, ...] = ()) -> dict[str, str]:
        """Digest of each stream's current generator state, by stream name.

        ``prefixes`` restricts the fingerprint to streams whose name starts
        with any of them (empty = all streams).  Two runs whose fingerprints
        match created the same streams *and* consumed the same number of
        draws from each — the paired-CRN sweeps assert exactly this for the
        fault streams of two policy arms.
        """
        out: dict[str, str] = {}
        for name in sorted(self._streams):
            if prefixes and not any(name.startswith(p) for p in prefixes):
                continue
            state = self._streams[name].bit_generator.state
            payload = json.dumps(state, sort_keys=True, default=str)
            out[name] = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        return out

    def __call__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def bound(self, name: str, method: str = "random"):
        """Pre-resolved draw handle: the bound ``method`` of stream ``name``.

        Hot paths (e.g. the per-message loss roll in the transport) call the
        returned bound method directly, skipping both the stream-registry
        lookup and the generator attribute lookup on every draw.  The handle
        stays coupled to the named stream, so by-name draws and handle draws
        consume the same deterministic sequence.
        """
        return getattr(self.stream(name), method)

    # -- convenience draws used across the codebase -------------------------
    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw in ``[low, high)`` from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def lognormal(self, name: str, mean: float, sigma: float) -> float:
        """One log-normal draw (of the underlying normal) from ``name``."""
        return float(self.stream(name).lognormal(mean, sigma))

    def choice(self, name: str, options: list) -> object:
        """Pick one element of ``options`` uniformly from stream ``name``."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        index = int(self.stream(name).integers(0, len(options)))
        return options[index]

    def shuffled(self, name: str, items: list) -> list:
        """Return a shuffled copy of ``items`` using stream ``name``."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per node) from this one.

        The CRN seed propagates, so a child's ``crn.*`` streams stay paired
        across arms the same way the parent's do.
        """
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return RandomStreams(
            int.from_bytes(digest[8:16], "little"), crn_seed=self.crn_seed
        )
