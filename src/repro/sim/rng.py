"""Deterministic, named random-number streams.

Every stochastic element of a scenario (network jitter, task durations, fault
inter-arrival times, scheduler tie-breaking ...) draws from its own named
stream derived from a single master seed.  This gives two properties the
paper's confined-cluster methodology was after:

* **reproducibility** — the same scenario seed always produces the same run;
* **variance isolation** — changing, say, the fault model does not perturb the
  task-duration draws, so sweeps compare like with like.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            generator = np.random.default_rng(seed)
            self._streams[name] = generator
        return generator

    def __call__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def bound(self, name: str, method: str = "random"):
        """Pre-resolved draw handle: the bound ``method`` of stream ``name``.

        Hot paths (e.g. the per-message loss roll in the transport) call the
        returned bound method directly, skipping both the stream-registry
        lookup and the generator attribute lookup on every draw.  The handle
        stays coupled to the named stream, so by-name draws and handle draws
        consume the same deterministic sequence.
        """
        return getattr(self.stream(name), method)

    # -- convenience draws used across the codebase -------------------------
    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw in ``[low, high)`` from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def lognormal(self, name: str, mean: float, sigma: float) -> float:
        """One log-normal draw (of the underlying normal) from ``name``."""
        return float(self.stream(name).lognormal(mean, sigma))

    def choice(self, name: str, options: list) -> object:
        """Pick one element of ``options`` uniformly from stream ``name``."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        index = int(self.stream(name).integers(0, len(options)))
        return options[index]

    def shuffled(self, name: str, items: list) -> list:
        """Return a shuffled copy of ``items`` using stream ``name``."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per node) from this one."""
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[8:16], "little"))
