"""Waitable stores (mailboxes, queues) for the simulation kernel.

A :class:`Store` is the classical producer/consumer channel: ``put`` never
blocks (unbounded by default, or fails the put event when a capacity is set
and exceeded), ``get`` returns an event that triggers once an item is
available.  :class:`FilterStore` and :class:`PriorityStore` refine the
retrieval order; they are used for protocol mailboxes and scheduler queues.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from collections.abc import Callable
from typing import Any

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Store", "FilterStore", "PriorityStore", "StoreClosed"]


class StoreClosed(RuntimeError):
    """Raised (as an event failure) on pending gets when a store is closed."""


class _BatchGet(Event):
    """Marker event for :meth:`Store.get_all` (batched, coalescing gets).

    ``_wake_armed`` is True while a same-tick finalize callback is queued:
    every further put in that tick just appends its item — the waiting
    receiver is resumed once, with the whole batch.
    """

    __slots__ = ("_wake_armed",)

    def __init__(self, env: Environment) -> None:
        super().__init__(env)
        self._wake_armed = False


class Store:
    """An unbounded (or capacity-bounded) FIFO store of arbitrary items."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._closed = False

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    @property
    def closed(self) -> bool:
        """Whether the store has been closed (no further puts accepted)."""
        return self._closed

    # -- operations ----------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Deposit ``item``; returns an already-succeeded event.

        If the store is closed or full the returned event is failed instead,
        which models a mailbox of a crashed node silently dropping traffic
        when the caller does not look at the outcome.
        """
        event = Event(self.env)
        if self._closed:
            event.fail(StoreClosed("store is closed"))
            event.defuse()
            return event
        if len(self.items) >= self.capacity:
            event.fail(SimulationError("store full"))
            event.defuse()
            return event
        self.items.append(item)
        event.succeed(item)
        self._dispatch()
        return event

    def put_nowait(self, item: Any) -> bool:
        """Deposit ``item`` without allocating an outcome event.

        The cheap path for producers that never look at the put outcome
        (e.g. transport delivery): returns False instead of failing an event
        when the store is closed or full.  Getter dispatch is identical to
        :meth:`put`.
        """
        if self._closed or len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        if self._getters:
            self._dispatch()
        return True

    def get(self) -> Event:
        """Return an event that triggers with the next available item."""
        event = Event(self.env)
        event._abandon_hook = self._abandon_getter
        self._getters.append(event)
        self._dispatch()
        return event

    def get_all(self) -> Event:
        """Return an event that triggers with *all* available items (a list).

        Batched, coalescing semantics: if items are already queued the event
        triggers in the current tick with the whole backlog; otherwise the
        first put arms a same-tick finalize callback and every further
        same-tick put joins the batch — the waiter is resumed exactly once
        per tick however many items arrive.  FIFO order is preserved both
        within the batch and across getters (a batch getter waits its turn
        behind earlier plain getters).
        """
        event = _BatchGet(self.env)
        event._abandon_hook = self._abandon_getter
        self._getters.append(event)
        if self.items:
            self._dispatch()
        return event

    def _finalize_batch(self, getter: _BatchGet) -> None:
        """Same-tick callback draining the batch into a parked batch getter."""
        getter._wake_armed = False
        if getter.triggered or not self.items or getter not in self._getters:
            # Raced with close()/abandon, or the items were taken by an
            # earlier getter: leave the getter parked for the next put.
            return
        if self._getters[0] is not getter:
            # Earlier getters still queued (plain gets registered after the
            # items arrived would have consumed them in _dispatch already;
            # this is purely defensive FIFO protection).
            self._dispatch()
            if getter.triggered or not self.items or getter not in self._getters:
                return
        self._getters.remove(getter)
        items = list(self.items)
        self.items.clear()
        getter.succeed(items)

    def _abandon_getter(self, event: Event) -> None:
        """Purge a getter whose last waiter detached (killed / lost a race).

        Without this, a process killed while blocked on ``get`` (or a getter
        losing an :class:`~repro.sim.core.AnyOf` race) would leave a zombie
        waiter that silently swallows the next item put into the store.
        """
        if event.triggered:
            return
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def try_get(self) -> Any | None:
        """Non-blocking get: pop an item if one is available, else ``None``."""
        if self.items and not self._getters:
            return self.items.popleft()
        return None

    def clear(self) -> int:
        """Drop all stored items (crash semantics); returns how many."""
        n = len(self.items)
        self.items.clear()
        return n

    def close(self, exc: BaseException | None = None) -> None:
        """Close the store: fail all pending getters and refuse new puts."""
        self._closed = True
        error = exc or StoreClosed("store closed")
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(error)

    def reopen(self) -> None:
        """Re-open a previously closed store (node restart)."""
        self._closed = False

    # -- internals -----------------------------------------------------------
    def _dispatch(self) -> None:
        getters = self._getters
        while getters and self.items:
            getter = getters[0]
            if getter.triggered:  # cancelled getter
                getters.popleft()
                continue
            if type(getter) is _BatchGet:
                # Park the batch getter until the end of the current tick:
                # one finalize callback drains everything that arrived by
                # then in a single receiver resume.  Later getters stay
                # queued behind it (FIFO).
                if not getter._wake_armed:
                    getter._wake_armed = True
                    self.env.call_at(self.env.now, self._finalize_batch, getter)
                return
            getters.popleft()
            item = self._select_item(getter)
            if item is _NO_ITEM:
                # No item matches this getter: park it back and stop; a later
                # put may satisfy it.
                getters.appendleft(getter)
                return
            getter.succeed(item)

    def _select_item(self, _getter: Event) -> Any:
        return self.items.popleft()


_NO_ITEM = object()


class FilterStore(Store):
    """A store whose ``get`` can take a predicate selecting the item."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._predicates: dict[Event, Callable[[Any], bool] | None] = {}

    def get(self, predicate: Callable[[Any], bool] | None = None) -> Event:  # type: ignore[override]
        event = Event(self.env)
        event._abandon_hook = self._abandon_getter
        self._predicates[event] = predicate
        self._getters.append(event)
        self._dispatch()
        return event

    def _abandon_getter(self, event: Event) -> None:
        super()._abandon_getter(event)
        if not event.triggered:
            self._predicates.pop(event, None)

    def get_all(self) -> Event:  # pragma: no cover - misuse guard
        raise SimulationError("get_all() is only supported on plain Store")

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for getter in list(self._getters):
                if getter.triggered:
                    self._getters.remove(getter)
                    self._predicates.pop(getter, None)
                    continue
                predicate = self._predicates.get(getter)
                for index, item in enumerate(self.items):
                    if predicate is None or predicate(item):
                        del self.items[index]
                        self._getters.remove(getter)
                        self._predicates.pop(getter, None)
                        getter.succeed(item)
                        progressed = True
                        break

    def _select_item(self, getter: Event) -> Any:  # pragma: no cover - unused
        return super()._select_item(getter)


class PriorityStore(Store):
    """A store returning items in ``(priority, fifo)`` order.

    Items are ``(priority, item)`` pairs on ``put``; ``get`` returns the item
    with the smallest priority (ties broken FIFO).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: list[tuple[Any, int, Any]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: Any, priority: Any = 0) -> Event:  # type: ignore[override]
        event = Event(self.env)
        if self._closed:
            event.fail(StoreClosed("store is closed"))
            event.defuse()
            return event
        if len(self._heap) >= self.capacity:
            event.fail(SimulationError("store full"))
            event.defuse()
            return event
        heapq.heappush(self._heap, (priority, next(self._seq), item))
        event.succeed(item)
        self._dispatch()
        return event

    def get_all(self) -> Event:  # pragma: no cover - misuse guard
        raise SimulationError("get_all() is only supported on plain Store")

    def try_get(self) -> Any | None:
        if self._heap and not self._getters:
            return heapq.heappop(self._heap)[2]
        return None

    def clear(self) -> int:
        n = len(self._heap)
        self._heap.clear()
        return n

    def _dispatch(self) -> None:
        while self._getters and self._heap:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(heapq.heappop(self._heap)[2])
