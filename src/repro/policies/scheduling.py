"""Coordinator-side scheduling policies (``policy.sched.*``).

The paper's coordinator uses "a basic first-come first-serve scheduling
policy" together with a simple replica-coordination scheme that prevents most
duplicate executions when several server partitions talk to different
coordinators:

* **finished** tasks are never scheduled by a coordinator replica;
* **ongoing** tasks are not scheduled until the replica suspects the
  disconnection of its predecessor (the coordinator that assigned them);
* **pending** tasks are scheduled.

Scheduling is pull-based (servers request work), so "scheduling" here means
answering one server's work request with the most appropriate eligible task.
The de-duplication scheme above is shared by every policy; what varies is
:meth:`SchedulerPolicy.choose` — which eligible task answers the request:

* ``policy.sched.fifo-reschedule`` — the paper's FCFS order (oldest
  submission first);
* ``policy.sched.random``          — uniform over the eligible set, drawn
  from a deterministic per-coordinator stream;
* ``policy.sched.round-robin``     — a rotating cursor over the FCFS order,
  spreading assignments across the backlog;
* ``policy.sched.fastest-first``   — shortest declared execution time first
  (ties broken FCFS), the classic SJF heuristic.

Every policy takes ``reschedule=`` (the "on suspicion" replication switch the
baselines ablate) and is registered in the platform registry, so scenario
specs and ``--set policy.scheduler=...`` select one by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.platform.registry import component
from repro.policies.base import PolicyBase
from repro.types import Address, TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle through
    # repro.core.__init__, which itself imports the policy layer)
    from repro.core.protocol import TaskRecord
    from repro.core.taskindex import TaskIndex

__all__ = [
    "SchedulingDecision",
    "SchedulerPolicy",
    "FifoReschedulePolicy",
    "RandomSchedulerPolicy",
    "RoundRobinSchedulerPolicy",
    "FastestFirstSchedulerPolicy",
    "fcfs_key",
]


@dataclass
class SchedulingDecision:
    """Outcome of one work request."""

    task: TaskRecord | None
    reason: str = ""


def fcfs_key(record: TaskRecord) -> tuple:
    """The paper's FCFS order: submission time, then call identity.

    Unique per task (the identity is unique), so every FCFS sort is total:
    any source of the same candidate set — the legacy table scan or the
    task index's pending heap — produces the same order bit for bit.
    """
    return (
        record.submitted_at,
        record.call.identity.user.value,
        record.call.identity.session.value,
        record.call.identity.rpc.value,
    )


#: backwards-compatible alias (the key predates its public export).
_fcfs_key = fcfs_key


class SchedulerPolicy(PolicyBase):
    """Shared machinery: eligibility, assignment bookkeeping, rescheduling.

    Subclasses implement :meth:`choose` — pick one task from the non-empty,
    FCFS-ordered eligible list.
    """

    key = "policy.sched.base"

    def __init__(self, reschedule: bool = True, name: str | None = None) -> None:
        super().__init__(name)
        #: re-schedule all tasks of a suspected server ("on suspicion"
        #: replication) — the switch the degraded baselines turn off.
        self.reschedule = bool(reschedule)
        #: how many assignments this policy has made (reporting).
        self.assignments = 0
        #: how many times the de-duplication policy withheld an ongoing task.
        self.dedup_holds = 0

    # ------------------------------------------------------------- eligibility
    def eligible_tasks(
        self,
        tasks: dict[object, TaskRecord],
        my_name: str,
        owner_suspected: Callable[[str], bool],
    ) -> list[TaskRecord]:
        """Tasks this coordinator may hand out right now, FCFS-ordered."""
        eligible: list[TaskRecord] = []
        for record in tasks.values():
            if record.state is TaskState.FINISHED:
                continue
            if record.state is TaskState.PENDING:
                eligible.append(record)
                continue
            # ONGOING: only reschedulable when the coordinator that assigned
            # it (a different one) is suspected, or when it was assigned by us
            # to a server we have since declared suspect (that transition is
            # done by the coordinator's monitor loop, which resets the task to
            # PENDING, so it is not handled here).
            if record.owner != my_name and owner_suspected(record.owner):
                eligible.append(record)
            else:
                self.dedup_holds += 1
        eligible.sort(key=_fcfs_key)
        return eligible

    # -------------------------------------------------------------- assignment
    def pick(
        self,
        tasks: dict[object, TaskRecord],
        server: Address,
        my_name: str,
        owner_suspected: Callable[[str], bool],
        now: float,
        index: "TaskIndex | None" = None,
    ) -> SchedulingDecision:
        """Answer one work request from ``server``.

        With ``index`` (the coordinator's :class:`TaskIndex`) the eligible
        candidates come from the maintained pending structures instead of a
        full table scan; without it, the legacy scan-and-sort runs.  The
        chosen task is identical either way.  The caller is responsible for
        routing the mutation back through the index (the coordinator does so
        via ``_mark_dirty``).
        """
        if index is None:
            eligible = self.eligible_tasks(tasks, my_name, owner_suspected)
            if not eligible:
                return SchedulingDecision(task=None, reason="no eligible task")
            task = self.choose(eligible, server=server, now=now)
        else:
            extras, held = index.eligible_extras(my_name, owner_suspected)
            self.dedup_holds += held
            task = self.choose_indexed(index, extras, server=server, now=now)
            if task is None:
                return SchedulingDecision(task=None, reason="no eligible task")
        task.state = TaskState.ONGOING
        task.owner = my_name
        task.assigned_server = server
        task.attempts += 1
        task.started_at = now
        self.assignments += 1
        self.incr("assignments")
        return SchedulingDecision(task=task, reason=self.key)

    def choose(
        self, eligible: list[TaskRecord], server: Address, now: float
    ) -> TaskRecord:
        """Pick one task from the non-empty, FCFS-ordered eligible list."""
        raise NotImplementedError

    def choose_indexed(
        self,
        index: "TaskIndex",
        extras: list[TaskRecord],
        server: Address,
        now: float,
    ) -> TaskRecord | None:
        """Pick one task through the index (``None`` when nothing is eligible).

        The default materializes the FCFS-sorted eligible list — positional
        policies (random, round-robin) need it — which is bit-identical to
        the legacy scan's list.  FIFO and fastest-first override this with
        their heap heads.
        """
        eligible = index.eligible_list(extras)
        if not eligible:
            return None
        return self.choose(eligible, server=server, now=now)

    # ------------------------------------------------------------ rescheduling
    def reschedule_for_suspected_server(
        self,
        tasks: dict[object, TaskRecord],
        server: Address,
        my_name: str,
        index: "TaskIndex | None" = None,
    ) -> list[TaskRecord]:
        """"On suspicion" replication: re-queue every ongoing task of ``server``.

        Returns the tasks that were reset to PENDING (empty when the policy
        has rescheduling disabled).  With ``index``, only the suspected
        server's ongoing bucket is touched instead of the whole table; the
        caller routes the resets back through the index when marking them
        dirty.
        """
        if not self.reschedule:
            return []
        reset: list[TaskRecord] = []
        if index is None:
            candidates = (
                record
                for record in tasks.values()
                if record.state is TaskState.ONGOING
                and record.assigned_server == server
            )
        else:
            candidates = (record for _key, record in index.ongoing_on_server(server))
        for record in candidates:
            if record.owner == my_name:
                record.state = TaskState.PENDING
                record.assigned_server = None
                reset.append(record)
        if reset:
            self.incr("reschedules", len(reset))
        return reset


@component("policy.sched.fifo-reschedule")
class FifoReschedulePolicy(SchedulerPolicy):
    """First-come first-served (the paper's policy): oldest submission first."""

    key = "policy.sched.fifo-reschedule"

    def choose(
        self, eligible: list[TaskRecord], server: Address, now: float
    ) -> TaskRecord:
        return eligible[0]

    def choose_indexed(
        self,
        index: "TaskIndex",
        extras: list[TaskRecord],
        server: Address,
        now: float,
    ) -> TaskRecord | None:
        # O(log n): the pending heap head, against the (rare, small) extras.
        head = index.pending_head()
        if extras:
            best_extra = min(extras, key=fcfs_key)
            if head is None or fcfs_key(best_extra) < fcfs_key(head):
                return best_extra
        return head


@component("policy.sched.random")
class RandomSchedulerPolicy(SchedulerPolicy):
    """Uniform over the eligible set, from a deterministic per-owner stream."""

    key = "policy.sched.random"

    def choose(
        self, eligible: list[TaskRecord], server: Address, now: float
    ) -> TaskRecord:
        index = int(self.stream(self.owner).integers(0, len(eligible)))
        return eligible[index]


@component("policy.sched.round-robin")
class RoundRobinSchedulerPolicy(SchedulerPolicy):
    """A rotating cursor over the FCFS order: spread work over the backlog."""

    key = "policy.sched.round-robin"

    def __init__(self, reschedule: bool = True, name: str | None = None) -> None:
        super().__init__(reschedule=reschedule, name=name)
        self._cursor = 0

    def choose(
        self, eligible: list[TaskRecord], server: Address, now: float
    ) -> TaskRecord:
        task = eligible[self._cursor % len(eligible)]
        self._cursor += 1
        return task


@component("policy.sched.fastest-first")
class FastestFirstSchedulerPolicy(SchedulerPolicy):
    """Shortest declared execution time first (SJF), FCFS tie-break.

    Calls that declare no ``exec_time`` sort last (they could run forever,
    so known-short work goes out first).
    """

    key = "policy.sched.fastest-first"

    def choose(
        self, eligible: list[TaskRecord], server: Address, now: float
    ) -> TaskRecord:
        return min(eligible, key=_sjf_key)

    def choose_indexed(
        self,
        index: "TaskIndex",
        extras: list[TaskRecord],
        server: Address,
        now: float,
    ) -> TaskRecord | None:
        # O(log n): the (exec_time, fcfs) heap head, against the extras.
        # The SJF key embeds the unique FCFS key, so there are no ties and
        # the heap head equals the legacy min() over the full list.
        head = index.fastest_head()
        if extras:
            best_extra = min(extras, key=_sjf_key)
            if head is None or _sjf_key(best_extra) < _sjf_key(head):
                return best_extra
        return head


def _sjf_key(record: TaskRecord) -> tuple:
    """Fastest-first order: declared exec time (unknown last), FCFS tie-break."""
    return (
        record.call.exec_time if record.call.exec_time is not None else float("inf"),
        fcfs_key(record),
    )
