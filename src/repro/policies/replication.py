"""Coordinator replication policies (``policy.repl.*``).

The mechanism — building a state abstract, pushing it to the ring successor,
suspecting a silent successor — lives on the coordinator
(:meth:`~repro.core.coordinator.CoordinatorComponent.replicate_once` and
:mod:`repro.core.replication`).  What a policy owns is the *cadence*: when
rounds happen and what triggers them.

* ``policy.repl.passive-periodic`` — the paper's protocol: one round every
  ``period`` seconds (60 s on the Internet testbed, one heart-beat period on
  the confined cluster);
* ``policy.repl.none``             — never replicate (the Ninf/RCS-style and
  NetSolve-style baselines);
* ``policy.repl.on-commit``        — eager: a round fires as soon as state
  becomes dirty (new submission, assignment, completion, requeue), with an
  optional ``min_interval`` damping successive rounds.  Trades bandwidth and
  database writes for a near-zero replica lag.

A policy is installed from the coordinator's ``start()`` — once per
incarnation, so a crashed-and-restarted coordinator re-arms its cadence the
same way its first incarnation did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.platform.registry import component
from repro.policies.base import PolicyBase
from repro.sim.core import ProcessKilled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import CoordinatorComponent

__all__ = [
    "ReplicationPolicy",
    "PassivePeriodicReplication",
    "NoReplication",
    "OnCommitReplication",
    "QuorumReplication",
]


class ReplicationPolicy(PolicyBase):
    """When (and whether) a coordinator propagates state to its successor."""

    key = "policy.repl.base"

    #: whether this policy replicates at all (reporting / describe()).
    enabled = True

    def install(self, coordinator: "CoordinatorComponent") -> None:
        """Arm the cadence on ``coordinator`` (called from its ``start()``)."""

    def on_dirty(self, coordinator: "CoordinatorComponent", key: object) -> None:
        """Notification: ``key`` joined the coordinator's dirty set."""


@component("policy.repl.passive-periodic")
class PassivePeriodicReplication(ReplicationPolicy):
    """One replication round every ``period`` seconds (the paper's protocol)."""

    key = "policy.repl.passive-periodic"

    def __init__(self, period: float | None = None, name: str | None = None) -> None:
        super().__init__(name)
        #: seconds between rounds; ``None`` defers to the coordinator's
        #: :class:`~repro.config.ReplicationConfig` period.
        self.period = period

    def install(self, coordinator: "CoordinatorComponent") -> None:
        coordinator.host.spawn(
            self._loop(coordinator), name=f"{coordinator.name}:replication"
        )

    def _loop(self, coordinator: "CoordinatorComponent"):
        period = (
            self.period
            if self.period is not None
            else coordinator.config.replication.period
        )
        try:
            while True:
                yield coordinator.host.sleep(period)
                yield from coordinator.replicate_once()
                self.incr("rounds")
        except ProcessKilled:  # pragma: no cover - host crash
            return


@component("policy.repl.none")
class NoReplication(ReplicationPolicy):
    """Never replicate: the coordinator is a single point of failure."""

    key = "policy.repl.none"
    enabled = False


@component("policy.repl.on-commit")
class OnCommitReplication(ReplicationPolicy):
    """Replicate eagerly: a round fires as soon as state becomes dirty.

    The driver sleeps on an event while the dirty set is empty;
    :meth:`on_dirty` wakes it.  ``min_interval`` (seconds) spaces successive
    rounds so a submission burst coalesces into one abstract per interval
    instead of one per task.
    """

    key = "policy.repl.on-commit"

    def __init__(
        self,
        min_interval: float = 0.0,
        backoff: float | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if min_interval < 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError("min_interval must be non-negative")
        if backoff is not None and backoff <= 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError("backoff must be positive")
        self.min_interval = float(min_interval)
        #: seconds to wait after a round that went nowhere (no ring
        #: successor); ``None`` falls back to the coordinator's configured
        #: replication period.
        self.backoff = backoff
        self._wake = None

    def install(self, coordinator: "CoordinatorComponent") -> None:
        self._wake = None
        coordinator.host.spawn(
            self._loop(coordinator), name=f"{coordinator.name}:replication"
        )

    def on_dirty(self, coordinator: "CoordinatorComponent", key: object) -> None:
        wake = self._wake
        if wake is not None and not wake.triggered:
            wake.succeed(None)

    def _loop(self, coordinator: "CoordinatorComponent"):
        env = coordinator.env
        try:
            while True:
                if not coordinator._dirty:
                    self._wake = env.event()
                    yield self._wake
                    self._wake = None
                before = env.now
                yield from coordinator.replicate_once()
                self.incr("rounds")
                if self.min_interval > 0:
                    yield coordinator.host.sleep(self.min_interval)
                elif env.now == before:
                    # The round went nowhere without consuming time (no ring
                    # successor): back off by this policy's own interval —
                    # only falling back to the passive period when none was
                    # configured — instead of spinning on the same simulated
                    # instant.
                    yield coordinator.host.sleep(
                        self.backoff
                        if self.backoff is not None
                        else coordinator.config.replication.period
                    )
        except ProcessKilled:  # pragma: no cover - host crash
            return


@component("policy.repl.quorum")
class QuorumReplication(ReplicationPolicy):
    """Replicate to ``successors`` ring successors; commit on majority acks.

    Each round pushes the state abstract to up to ``successors`` ring
    successors in parallel and counts the epoch *committed* — the dirty set
    is only cleared — once ⌈(successors+1)/2⌉ acks arrive (``quorum``
    overrides the majority count explicitly).  A successor with an
    outstanding un-acked push is backed off exponentially (per successor, in
    units of the round period) and suspected after two consecutive misses,
    so one silent replica neither stalls the round nor keeps absorbing
    state pushes it never acknowledges.

    On restart (a fresh incarnation of a crashed coordinator), the policy
    first pulls the replicated state back from the surviving successors and
    elects the freshest replica before resuming the push cadence.
    """

    key = "policy.repl.quorum"

    def __init__(
        self,
        successors: int = 2,
        quorum: int | None = None,
        period: float | None = None,
        max_backoff_rounds: int = 4,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        from repro.errors import ConfigurationError

        if successors < 1:
            raise ConfigurationError("successors must be >= 1")
        if quorum is not None and not 1 <= quorum <= successors:
            raise ConfigurationError("quorum must be in [1, successors]")
        if max_backoff_rounds < 1:
            raise ConfigurationError("max_backoff_rounds must be >= 1")
        self.successors = int(successors)
        self.quorum = quorum
        self.period = period
        self.max_backoff_rounds = int(max_backoff_rounds)
        # per-successor outstanding-push backoff state.
        self._next_allowed: dict = {}
        self._misses: dict = {}

    def quorum_for(self, n_targets: int) -> int:
        """Acks needed to commit a round pushed to ``n_targets`` successors."""
        needed = self.quorum if self.quorum is not None else (self.successors + 2) // 2
        return max(1, min(needed, n_targets))

    def install(self, coordinator: "CoordinatorComponent") -> None:
        self._next_allowed = {}
        self._misses = {}
        coordinator.host.spawn(
            self._loop(coordinator), name=f"{coordinator.name}:replication"
        )

    def _loop(self, coordinator: "CoordinatorComponent"):
        env = coordinator.env
        period = (
            self.period
            if self.period is not None
            else coordinator.config.replication.period
        )
        try:
            if coordinator.host.incarnation > 0:
                yield from self._recover(coordinator)
            while True:
                yield coordinator.host.sleep(period)
                ring = coordinator.registry.ring_successors(
                    coordinator.address, self.successors
                )
                targets = [
                    t for t in ring if self._next_allowed.get(t, 0.0) <= env.now
                ]
                if not targets:
                    self.incr("skipped_rounds")
                    continue
                acks, committed = yield from coordinator.replicate_quorum_once(
                    targets, self.quorum_for(len(targets))
                )
                self.incr("rounds")
                self.incr("commits" if committed else "aborts")
                for target in targets:
                    if target in acks:
                        self._misses.pop(target, None)
                        self._next_allowed.pop(target, None)
                        continue
                    misses = self._misses.get(target, 0) + 1
                    self._misses[target] = misses
                    rounds = min(2 ** (misses - 1), self.max_backoff_rounds)
                    self._next_allowed[target] = env.now + rounds * period
                    self.incr("push_backoffs")
                    if misses >= 2:
                        coordinator.suspect_coordinator(target)
        except ProcessKilled:  # pragma: no cover - host crash
            return

    def _recover(self, coordinator: "CoordinatorComponent"):
        """Pull state back from the surviving successors, elect the freshest."""
        targets = coordinator.registry.ring_successors(
            coordinator.address, self.successors
        )
        if not targets:
            return
        coordinator.pull_replicas(targets)
        self.incr("recovery_pulls", len(targets))
        # One heart-beat period is ample for the pulled abstracts to land on
        # a healthy network; stragglers still merge through the normal
        # REPLICA_STATE path afterwards.
        yield coordinator.host.sleep(coordinator.config.detection.heartbeat_period)
        origin = coordinator.elect_freshest_origin()
        if origin is not None:
            self.incr("recoveries")
