"""Coordinator replication policies (``policy.repl.*``).

The mechanism — building a state abstract, pushing it to the ring successor,
suspecting a silent successor — lives on the coordinator
(:meth:`~repro.core.coordinator.CoordinatorComponent.replicate_once` and
:mod:`repro.core.replication`).  What a policy owns is the *cadence*: when
rounds happen and what triggers them.

* ``policy.repl.passive-periodic`` — the paper's protocol: one round every
  ``period`` seconds (60 s on the Internet testbed, one heart-beat period on
  the confined cluster);
* ``policy.repl.none``             — never replicate (the Ninf/RCS-style and
  NetSolve-style baselines);
* ``policy.repl.on-commit``        — eager: a round fires as soon as state
  becomes dirty (new submission, assignment, completion, requeue), with an
  optional ``min_interval`` damping successive rounds.  Trades bandwidth and
  database writes for a near-zero replica lag.

A policy is installed from the coordinator's ``start()`` — once per
incarnation, so a crashed-and-restarted coordinator re-arms its cadence the
same way its first incarnation did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.platform.registry import component
from repro.policies.base import PolicyBase
from repro.sim.core import ProcessKilled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import CoordinatorComponent

__all__ = [
    "ReplicationPolicy",
    "PassivePeriodicReplication",
    "NoReplication",
    "OnCommitReplication",
]


class ReplicationPolicy(PolicyBase):
    """When (and whether) a coordinator propagates state to its successor."""

    key = "policy.repl.base"

    #: whether this policy replicates at all (reporting / describe()).
    enabled = True

    def install(self, coordinator: "CoordinatorComponent") -> None:
        """Arm the cadence on ``coordinator`` (called from its ``start()``)."""

    def on_dirty(self, coordinator: "CoordinatorComponent", key: object) -> None:
        """Notification: ``key`` joined the coordinator's dirty set."""


@component("policy.repl.passive-periodic")
class PassivePeriodicReplication(ReplicationPolicy):
    """One replication round every ``period`` seconds (the paper's protocol)."""

    key = "policy.repl.passive-periodic"

    def __init__(self, period: float | None = None, name: str | None = None) -> None:
        super().__init__(name)
        #: seconds between rounds; ``None`` defers to the coordinator's
        #: :class:`~repro.config.ReplicationConfig` period.
        self.period = period

    def install(self, coordinator: "CoordinatorComponent") -> None:
        coordinator.host.spawn(
            self._loop(coordinator), name=f"{coordinator.name}:replication"
        )

    def _loop(self, coordinator: "CoordinatorComponent"):
        period = (
            self.period
            if self.period is not None
            else coordinator.config.replication.period
        )
        try:
            while True:
                yield coordinator.host.sleep(period)
                yield from coordinator.replicate_once()
                self.incr("rounds")
        except ProcessKilled:  # pragma: no cover - host crash
            return


@component("policy.repl.none")
class NoReplication(ReplicationPolicy):
    """Never replicate: the coordinator is a single point of failure."""

    key = "policy.repl.none"
    enabled = False


@component("policy.repl.on-commit")
class OnCommitReplication(ReplicationPolicy):
    """Replicate eagerly: a round fires as soon as state becomes dirty.

    The driver sleeps on an event while the dirty set is empty;
    :meth:`on_dirty` wakes it.  ``min_interval`` (seconds) spaces successive
    rounds so a submission burst coalesces into one abstract per interval
    instead of one per task.
    """

    key = "policy.repl.on-commit"

    def __init__(self, min_interval: float = 0.0, name: str | None = None) -> None:
        super().__init__(name)
        if min_interval < 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError("min_interval must be non-negative")
        self.min_interval = float(min_interval)
        self._wake = None

    def install(self, coordinator: "CoordinatorComponent") -> None:
        self._wake = None
        coordinator.host.spawn(
            self._loop(coordinator), name=f"{coordinator.name}:replication"
        )

    def on_dirty(self, coordinator: "CoordinatorComponent", key: object) -> None:
        wake = self._wake
        if wake is not None and not wake.triggered:
            wake.succeed(None)

    def _loop(self, coordinator: "CoordinatorComponent"):
        env = coordinator.env
        try:
            while True:
                if not coordinator._dirty:
                    self._wake = env.event()
                    yield self._wake
                    self._wake = None
                before = env.now
                yield from coordinator.replicate_once()
                self.incr("rounds")
                if self.min_interval > 0:
                    yield coordinator.host.sleep(self.min_interval)
                elif env.now == before:
                    # The round went nowhere without consuming time (no ring
                    # successor): back off one configured period instead of
                    # spinning on the same simulated instant.
                    yield coordinator.host.sleep(
                        coordinator.config.replication.period
                    )
        except ProcessKilled:  # pragma: no cover - host crash
            return
