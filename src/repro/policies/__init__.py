"""Registry-resolved protocol strategies (the ``policy.*`` component family).

The protocol components own their *mechanisms* — work-request handling,
state-abstract rounds, log records — and delegate the *decisions* to small
strategy objects carved out of them:

* :mod:`repro.policies.scheduling`  — which eligible task answers a server's
  work request (``policy.sched.*``);
* :mod:`repro.policies.replication` — when the coordinator propagates state
  to its ring successor (``policy.repl.*``);
* :mod:`repro.policies.logging`     — when log-record durability may delay a
  client communication (``policy.log.*``);
* :mod:`repro.policies.detection`   — when a silent component tips over into
  suspicion (``policy.detect.*``).

Every policy is registered in the platform registry under its ``policy.*``
key, so scenarios select them exactly like injectors: by name with plain
parameters — ``--set policy.scheduler=policy.sched.random`` on the CLI, a
``protocol_overrides`` entry on a spec, or a custom class by dotted path
(see ``examples/custom_policy.py``).  :mod:`repro.policies.resolve` maps the
legacy tier-config flags onto the equivalent built-ins when no entry is set.
"""

from repro.policies.base import PolicyBase
from repro.policies.detection import (
    AdaptiveTimeoutDetection,
    DetectionPolicy,
    FixedTimeoutDetection,
    PhiAccrualDetection,
)
from repro.policies.logging import (
    LoggingPolicy,
    OptimisticLogging,
    PessimisticBlockingLogging,
    PessimisticNonBlockingLogging,
)
from repro.policies.replication import (
    NoReplication,
    OnCommitReplication,
    PassivePeriodicReplication,
    QuorumReplication,
    ReplicationPolicy,
)
from repro.policies.resolve import (
    detection_policy_from,
    logging_policy_from,
    normalize_policy_entry,
    replication_policy_from,
    scheduler_policy_from,
    validate_policy_entries,
)
from repro.policies.scheduling import (
    FastestFirstSchedulerPolicy,
    FifoReschedulePolicy,
    RandomSchedulerPolicy,
    RoundRobinSchedulerPolicy,
    SchedulerPolicy,
    SchedulingDecision,
)

__all__ = [
    "AdaptiveTimeoutDetection",
    "DetectionPolicy",
    "FastestFirstSchedulerPolicy",
    "FifoReschedulePolicy",
    "FixedTimeoutDetection",
    "LoggingPolicy",
    "NoReplication",
    "OnCommitReplication",
    "OptimisticLogging",
    "PassivePeriodicReplication",
    "PessimisticBlockingLogging",
    "PessimisticNonBlockingLogging",
    "PhiAccrualDetection",
    "PolicyBase",
    "QuorumReplication",
    "RandomSchedulerPolicy",
    "ReplicationPolicy",
    "RoundRobinSchedulerPolicy",
    "SchedulerPolicy",
    "SchedulingDecision",
    "detection_policy_from",
    "logging_policy_from",
    "normalize_policy_entry",
    "replication_policy_from",
    "scheduler_policy_from",
    "validate_policy_entries",
]
