"""The policy contract shared by every ``policy.*`` strategy.

A *policy* is a small strategy object carved out of a protocol component:
the coordinator's scheduling decisions, its replication cadence, the
client's logging strategy.  Policies are ordinary plugin components — they
satisfy the :class:`~repro.platform.component.Component` protocol and are
registered under ``policy.*`` string keys in the platform registry — so a
scenario selects one exactly like it selects an injector: by name, with
plain JSON-able parameters (``"$param"`` interpolation included).

Unlike injectors, a policy instance belongs to *one* protocol component
(schedulers keep cursors, loggers keep overhead accounting), so the tier
components instantiate their own instance from the configured entry (see
:mod:`repro.policies.resolve`) and :meth:`PolicyBase.bind` it to their
name, RNG streams and monitor at start time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.platform.component import BaseComponent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.monitor import Monitor
    from repro.sim.rng import RandomStreams

__all__ = ["PolicyBase"]


class PolicyBase(BaseComponent):
    """Common trunk of every ``policy.*`` strategy object.

    ``key`` is the registry name the policy is published under; it doubles
    as the prefix of the policy's monitor counters, so ``grid.stats()`` can
    report per-policy activity without knowing any policy by name.
    """

    #: registry key, e.g. ``"policy.sched.fifo-reschedule"``.
    key = "policy.base"

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name or self.key)
        self.owner: str = ""
        self._rng: "RandomStreams | None" = None
        self._monitor: "Monitor | None" = None
        #: short counter name -> pre-resolved Counter handle, so request-path
        #: incrs skip the per-call f-string and by-name registry lookup.
        self._counter_handles: dict[str, Any] = {}

    def bind(
        self,
        owner: str,
        rng: "RandomStreams | None" = None,
        monitor: "Monitor | None" = None,
    ) -> "PolicyBase":
        """Attach the policy to its owning component's substrate.

        ``owner`` is the component's name (used for per-owner RNG streams),
        ``rng`` its host's stream factory, ``monitor`` the shared monitor
        counters land in.  Returns self for chaining.
        """
        self.owner = owner
        self._rng = rng
        self._monitor = monitor
        self._counter_handles = {}
        return self

    def incr(self, counter: str, amount: float = 1.0) -> None:
        """Bump the per-policy monitor counter ``<key>.<counter>``.

        Handles are resolved lazily on first use (never pre-registered, so
        a policy that never bumps a counter never publishes it) and cached
        for every bump after that.
        """
        if self._monitor is None:
            return
        handle = self._counter_handles.get(counter)
        if handle is None:
            handle = self._counter_handles[counter] = self._monitor.counter(
                f"{self.key}.{counter}"
            )
        handle.value += amount

    def stream(self, suffix: str = ""):
        """The policy's deterministic RNG stream (requires a bound RNG)."""
        if self._rng is None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"policy {self.key!r} needs an RNG but was never bound "
                "(call policy.bind(owner, rng=host.rng) first)"
            )
        name = f"{self.key}.{suffix}" if suffix else self.key
        return self._rng.stream(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key!r} owner={self.owner!r}>"
