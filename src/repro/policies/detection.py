"""Failure-detection policies (``policy.detect.*``).

The mechanism — tracking last-heard timestamps, latching suspicion
transitions, recording :class:`~repro.detect.detector.SuspicionEvent`
history and wrong-suspicion accounting — stays in
:class:`~repro.detect.detector.FailureDetector`.  What a policy owns is the
*rule*: given the current silence for a subject (and whatever gap statistics
the policy accumulated from past heartbeats), is the subject suspected?

* ``policy.detect.fixed-timeout``    — the paper's detector: suspect after a
  fixed ``suspicion_timeout`` seconds of silence.  Stateless; byte-identical
  to the historical flag-driven rule and therefore the default.
* ``policy.detect.adaptive-timeout`` — Jacobson-style RTO estimation over
  inter-heartbeat gaps: suspect when silence exceeds ``mean + k * var``
  (EWMA smoothed), floored at two heartbeat periods and ceilinged at the
  configured fixed timeout, so adaptation can only *tighten* detection.
* ``policy.detect.phi-accrual``      — Hayashibara-style accrual detection:
  a sliding window of gaps yields a suspicion level
  ``phi = -log10 P(gap > silence)`` under a normal fit; suspect when phi
  crosses ``threshold``.

Every policy sees the same heartbeat stream (``observe``), the same
new-incarnation resets (``forget``), and answers through the same
``suspects`` seam, so the detector-ablation scenarios compare them on
identical inputs.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict

from repro.errors import ConfigurationError
from repro.platform.registry import component
from repro.policies.base import PolicyBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import FaultDetectionConfig

__all__ = [
    "DetectionPolicy",
    "FixedTimeoutDetection",
    "AdaptiveTimeoutDetection",
    "PhiAccrualDetection",
]


class DetectionPolicy(PolicyBase):
    """When a silent subject tips over into suspicion."""

    key = "policy.detect.base"

    def observe(self, subject: object, gap: float) -> None:
        """Record one inter-arrival gap (seconds) for ``subject``."""

    def forget(self, subject: object) -> None:
        """Drop accumulated statistics for ``subject`` (new incarnation)."""

    def suspects(
        self, subject: object, silence: float, config: "FaultDetectionConfig"
    ) -> bool:
        """Whether ``silence`` seconds without news makes ``subject`` suspect."""
        raise NotImplementedError


@component("policy.detect.fixed-timeout")
class FixedTimeoutDetection(DetectionPolicy):
    """Suspect after a fixed silence threshold (the paper's detector)."""

    key = "policy.detect.fixed-timeout"

    def __init__(self, timeout: float | None = None, name: str | None = None) -> None:
        super().__init__(name)
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        #: seconds of silence before suspicion; ``None`` defers to the
        #: detector's :class:`~repro.config.FaultDetectionConfig` timeout.
        self.timeout = timeout

    def suspects(
        self, subject: object, silence: float, config: "FaultDetectionConfig"
    ) -> bool:
        timeout = self.timeout if self.timeout is not None else config.suspicion_timeout
        return silence > timeout


@component("policy.detect.adaptive-timeout")
class AdaptiveTimeoutDetection(DetectionPolicy):
    """Jacobson-style adaptive timeout over inter-heartbeat gaps.

    Per subject, an EWMA of the gap (``srtt``) and its mean deviation
    (``rttvar``) yield a threshold ``srtt + k * rttvar``.  The threshold is
    floored at ``floor`` (default: two heartbeat periods, so one lost beat
    never trips it) and ceilinged at the configured fixed timeout, so the
    adaptive detector is never *slower* than the paper's.  Until
    ``min_samples`` gaps have been seen the fixed rule applies.
    """

    key = "policy.detect.adaptive-timeout"

    def __init__(
        self,
        k: float = 4.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        min_samples: int = 3,
        floor: float | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if k <= 0 or not 0 < alpha < 1 or not 0 < beta < 1:
            raise ConfigurationError(
                "adaptive-timeout needs k > 0 and alpha, beta in (0, 1)"
            )
        self.k = float(k)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.min_samples = int(min_samples)
        #: explicit lower bound on the threshold; ``None`` derives
        #: ``2 * heartbeat_period`` from the detector's config at query time.
        self.floor = floor
        # subject -> (srtt, rttvar, n_samples)
        self._estimates: Dict[object, tuple[float, float, int]] = {}

    def observe(self, subject: object, gap: float) -> None:
        if gap <= 0:
            return
        state = self._estimates.get(subject)
        if state is None:
            self._estimates[subject] = (gap, gap / 2.0, 1)
            return
        srtt, rttvar, n = state
        rttvar = (1.0 - self.beta) * rttvar + self.beta * abs(srtt - gap)
        srtt = (1.0 - self.alpha) * srtt + self.alpha * gap
        self._estimates[subject] = (srtt, rttvar, n + 1)

    def forget(self, subject: object) -> None:
        self._estimates.pop(subject, None)

    def threshold(self, subject: object, config: "FaultDetectionConfig") -> float:
        """The current silence threshold for ``subject`` (seconds)."""
        state = self._estimates.get(subject)
        if state is None or state[2] < self.min_samples:
            return config.suspicion_timeout
        srtt, rttvar, _ = state
        floor = self.floor if self.floor is not None else 2.0 * config.heartbeat_period
        adaptive = max(srtt + self.k * rttvar, floor)
        return min(adaptive, config.suspicion_timeout)

    def suspects(
        self, subject: object, silence: float, config: "FaultDetectionConfig"
    ) -> bool:
        return silence > self.threshold(subject, config)


@component("policy.detect.phi-accrual")
class PhiAccrualDetection(DetectionPolicy):
    """Accrual detection: suspicion as a continuous level, thresholded.

    A sliding window of the last ``window`` inter-heartbeat gaps is fit with
    a normal distribution; the suspicion level for a silence ``t`` is
    ``phi(t) = -log10 P(gap > t)``.  A subject is suspected once
    ``phi >= threshold`` (8 ~= "one wrong suspicion per 10^8 checks" under
    the fit).  Below ``min_samples`` observed gaps the fixed-timeout rule
    applies, and silences beyond the configured fixed timeout are always
    suspect regardless of the fit — the accrual detector may fire earlier
    than the paper's, never later.
    """

    key = "policy.detect.phi-accrual"

    def __init__(
        self,
        threshold: float = 8.0,
        window: int = 100,
        min_samples: int = 10,
        min_std: float = 0.1,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if threshold <= 0 or window < 2 or min_samples < 2 or min_std <= 0:
            raise ConfigurationError(
                "phi-accrual needs threshold > 0, window >= 2, "
                "min_samples >= 2, min_std > 0"
            )
        self.threshold = float(threshold)
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.min_std = float(min_std)
        self._gaps: Dict[object, Deque[float]] = {}

    def observe(self, subject: object, gap: float) -> None:
        if gap <= 0:
            return
        gaps = self._gaps.get(subject)
        if gaps is None:
            gaps = self._gaps[subject] = deque(maxlen=self.window)
        gaps.append(gap)

    def forget(self, subject: object) -> None:
        self._gaps.pop(subject, None)

    def phi(self, subject: object, silence: float) -> float | None:
        """The suspicion level for ``subject``; ``None`` below min_samples."""
        gaps = self._gaps.get(subject)
        if gaps is None or len(gaps) < self.min_samples:
            return None
        n = len(gaps)
        mean = sum(gaps) / n
        variance = sum((g - mean) ** 2 for g in gaps) / n
        std = max(math.sqrt(variance), self.min_std)
        # P(gap > silence) under the normal fit, via the complementary
        # error function (numerically stable far into the tail).
        tail = 0.5 * math.erfc((silence - mean) / (std * math.sqrt(2.0)))
        if tail <= 0.0:
            return float("inf")
        return -math.log10(tail)

    def suspects(
        self, subject: object, silence: float, config: "FaultDetectionConfig"
    ) -> bool:
        if silence > config.suspicion_timeout:
            return True
        level = self.phi(subject, silence)
        if level is None:
            return False
        return level >= self.threshold
