"""Client-side logging policies (``policy.log.*``) — the Figure 4 strategies.

The three strategies differ only in *when* the disk write of the log record
is allowed to delay the communication:

* ``policy.log.pessimistic-blocking``    — the communication may not start
  before the log record is durable (full synchronous write up front, ≈ +30 %
  in the paper);
* ``policy.log.pessimistic-nonblocking`` — the communication starts
  immediately but may not *complete* before the log record is durable
  (small, variable overhead attributed to disc-cache management);
* ``policy.log.optimistic``              — the write happens in the
  background at low priority; the communication is never delayed, but a
  crash before the background write completes loses the record (hence the
  more expensive recovery when both the client and the coordinator crash).

Each policy implements the two process fragments the
:class:`~repro.msglog.strategies.LoggingEngine` wraps around a
communication — ``before_send`` (returns the :class:`LogToken` linking the
halves) and ``after_send`` — operating through the engine's host, log and
overhead accounting.  The engine stays the single mechanism object; the
policy owns the strategy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.platform.registry import component
from repro.policies.base import PolicyBase
from repro.sim.core import ProcessKilled
from repro.types import LoggingStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msglog.strategies import LoggingEngine, LogToken

__all__ = [
    "LoggingPolicy",
    "PessimisticBlockingLogging",
    "PessimisticNonBlockingLogging",
    "OptimisticLogging",
]


def _token(*args: Any, **kwargs: Any) -> "LogToken":
    # Imported lazily: msglog.strategies imports this module for its default
    # policy resolution, so a top-level import would be circular.
    from repro.msglog.strategies import LogToken

    return LogToken(*args, **kwargs)


class LoggingPolicy(PolicyBase):
    """When the durability of a log record may delay the communication."""

    key = "policy.log.base"
    #: the legacy enum value this policy implements (kept in sync with the
    #: :class:`~repro.config.LoggingConfig` mirror flag).
    strategy: LoggingStrategy

    def before_send(
        self, engine: "LoggingEngine", key: Any, payload: dict[str, Any], size_bytes: int
    ):
        """Log ``payload`` under ``key`` and pay any pre-send cost.

        Generator; returns the :class:`~repro.msglog.strategies.LogToken`
        for :meth:`after_send`.
        """
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    def after_send(self, engine: "LoggingEngine", token: "LogToken"):
        """Pay any post-communication cost mandated by the strategy."""
        if token.must_wait_after and token.durability_event is not None:
            if not token.durability_event.processed:
                start = engine.host.env.now
                try:
                    yield token.durability_event
                except ProcessKilled:  # pragma: no cover - host crash mid-wait
                    raise
                engine.blocking_overhead += engine.host.env.now - start
                self.incr("post_send_waits")
        return None


@component("policy.log.pessimistic-blocking")
class PessimisticBlockingLogging(LoggingPolicy):
    """Durable before the communication starts (full synchronous write)."""

    key = "policy.log.pessimistic-blocking"
    strategy = LoggingStrategy.PESSIMISTIC_BLOCKING

    def before_send(self, engine, key, payload, size_bytes):
        engine.log.append(key, payload, size_bytes)
        self.incr("records")
        cost = engine.host.disk.sync_write_time(size_bytes)
        engine.blocking_overhead += cost
        yield engine.host.sleep(cost)
        engine.log.mark_durable(key)
        return _token(key=key, size_bytes=size_bytes)


@component("policy.log.pessimistic-nonblocking")
class PessimisticNonBlockingLogging(LoggingPolicy):
    """Write concurrently; the communication may not complete before it does."""

    key = "policy.log.pessimistic-nonblocking"
    strategy = LoggingStrategy.PESSIMISTIC_NON_BLOCKING

    def before_send(self, engine, key, payload, size_bytes):
        engine.log.append(key, payload, size_bytes)
        self.incr("records")
        # The write proceeds concurrently with the communication; the
        # synchronous remainder is charged when the communication ends.
        host = engine.host
        rng = host.rng.stream(f"disk.cache.{host.address}")
        sync_part = host.disk.cached_write_sync_time(size_bytes, rng)
        durability_event = host.env.timeout(sync_part)
        incarnation = host.incarnation
        durability_event.callbacks.append(
            lambda _e, k=key, i=incarnation: engine._make_durable(k, i)
        )
        return _token(
            key=key,
            size_bytes=size_bytes,
            durability_event=durability_event,
            must_wait_after=True,
        )
        yield  # pragma: no cover - generator marker


@component("policy.log.optimistic")
class OptimisticLogging(LoggingPolicy):
    """Background write at low priority; the communication is never delayed."""

    key = "policy.log.optimistic"
    strategy = LoggingStrategy.OPTIMISTIC

    def before_send(self, engine, key, payload, size_bytes):
        engine.log.append(key, payload, size_bytes)
        self.incr("records")
        host = engine.host
        # A negligible foreground cost is still paid (the paper observes
        # "negligible overhead", not zero), and durability arrives much later.
        foreground = host.disk.background_write_foreground_time(size_bytes)
        if foreground > 0:
            engine.blocking_overhead += foreground
            yield host.sleep(foreground)
        completion = host.disk.background_write_completion_time(size_bytes)
        durability_event = host.env.timeout(completion)
        incarnation = host.incarnation
        durability_event.callbacks.append(
            lambda _e, k=key, i=incarnation: engine._make_durable(k, i)
        )
        return _token(key=key, size_bytes=size_bytes, durability_event=durability_event)
