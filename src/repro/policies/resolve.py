"""Turning configuration into policy instances.

Two inputs meet here:

* the **legacy flags** on the tier configs (``SchedulerConfig.
  reschedule_on_suspicion``, ``ReplicationConfig.enabled``/``period``,
  ``LoggingConfig.strategy``) — the way scenarios tuned behaviour before the
  policy layer existed, still honoured as the defaults;
* the **policy entries** of :class:`~repro.config.PolicyConfig`
  (``protocol.policy.scheduler`` and friends) — a registry key string
  (``"policy.sched.random"``) or a ``{"name": ..., "params": {...}}``
  mapping, resolved through :mod:`repro.platform.registry` so custom
  policies plug in by dotted path exactly like custom injectors.

When an entry is set it wins; when it is ``None`` the flags pick the
equivalent built-in, so a configuration written before the refactor resolves
to byte-identical behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.config import (
    FaultDetectionConfig,
    LoggingConfig,
    ReplicationConfig,
    SchedulerConfig,
)
from repro.errors import ConfigurationError
from repro.platform.registry import create_component, resolve_component

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ProtocolConfig
from repro.policies.detection import DetectionPolicy, FixedTimeoutDetection
from repro.policies.logging import (
    LoggingPolicy,
    OptimisticLogging,
    PessimisticBlockingLogging,
    PessimisticNonBlockingLogging,
)
from repro.policies.replication import (
    NoReplication,
    PassivePeriodicReplication,
    ReplicationPolicy,
)
from repro.policies.scheduling import FifoReschedulePolicy, SchedulerPolicy
from repro.types import LoggingStrategy

__all__ = [
    "SHADOWED_FLAG_PATHS",
    "detection_policy_from",
    "logging_policy_from",
    "normalize_policy_entry",
    "reassert_flag_override",
    "replication_policy_from",
    "scheduler_policy_from",
    "sync_policy_flags",
    "validate_policy_entries",
]

#: legacy flag paths that a set policy entry would otherwise shadow, by the
#: axis whose entry they re-assert when explicitly overridden.  This is the
#: single table the override machinery consults; the mirror direction lives
#: in :func:`sync_policy_flags` below, and the flag->policy derivation in the
#: ``*_policy_from`` functions — extend all three when adding an axis.
#: The scheduler axis is deliberately absent: its only shadowed flag
#: (``reschedule_on_suspicion``) feeds *into* any selected entry via
#: :func:`scheduler_policy_from`'s default, so overriding it must not
#: discard an explicitly requested scheduling order.  The detection axis is
#: absent for the same reason: ``suspicion_timeout`` feeds into every
#: detection policy as its fixed-rule fallback/ceiling, so overriding the
#: flag tunes the selected detector rather than discarding it.
SHADOWED_FLAG_PATHS = {
    "coordinator.replication": "replication",
    "coordinator.replication.enabled": "replication",
    "coordinator.replication.period": "replication",
    "client.logging": "logging",
    "client.logging.strategy": "logging",
}

#: legacy strategy enum -> the logging policy class implementing it.
_STRATEGY_POLICIES = {
    LoggingStrategy.PESSIMISTIC_BLOCKING: PessimisticBlockingLogging,
    LoggingStrategy.PESSIMISTIC_NON_BLOCKING: PessimisticNonBlockingLogging,
    LoggingStrategy.OPTIMISTIC: OptimisticLogging,
}


def normalize_policy_entry(entry: Any) -> tuple[str, dict[str, Any]] | None:
    """``entry`` -> ``(name, params)``, or ``None`` when unset.

    Accepted shapes: ``None``, a registry key / dotted-path string, or a
    mapping with a ``"name"`` key and optional ``"params"``.
    """
    if entry is None:
        return None
    if isinstance(entry, str):
        if not entry:
            raise ConfigurationError("policy entry must be a non-empty name")
        return entry, {}
    if isinstance(entry, Mapping):
        name = entry.get("name")
        if not name:
            raise ConfigurationError(
                f"policy entry {dict(entry)!r} has no 'name' key"
            )
        return str(name), dict(entry.get("params") or {})
    raise ConfigurationError(
        f"policy entry must be a name or a {{'name', 'params'}} mapping, "
        f"got {entry!r}"
    )


def _create(entry: Any, expected: type, what: str):
    name, params = normalize_policy_entry(entry)  # entry is known non-None here
    instance = create_component(name, params)
    if not isinstance(instance, expected):
        raise ConfigurationError(
            f"{what} policy {name!r} resolved to {type(instance).__name__}, "
            f"which is not a {expected.__name__}"
        )
    return instance


def scheduler_policy_from(
    config: SchedulerConfig, entry: Any = None
) -> SchedulerPolicy:
    """The scheduling policy for one coordinator (entry wins over flags).

    An entry that does not spell out ``reschedule`` inherits the configured
    ``reschedule_on_suspicion`` flag — swapping the scheduling order must
    not silently re-enable the fault tolerance a baseline turned off.
    """
    if entry is not None:
        name, params = normalize_policy_entry(entry)
        factory = resolve_component(name)
        # Only inject the default into genuine SchedulerPolicy classes (a
        # wrong-kind entry still fails the type check with its own error,
        # and exotic factories keep their exact signature).
        if isinstance(factory, type) and issubclass(factory, SchedulerPolicy):
            params.setdefault("reschedule", config.reschedule_on_suspicion)
        return _create({"name": name, "params": params}, SchedulerPolicy, "scheduler")
    return FifoReschedulePolicy(reschedule=config.reschedule_on_suspicion)


def replication_policy_from(
    config: ReplicationConfig, entry: Any = None
) -> ReplicationPolicy:
    """The replication policy for one coordinator (entry wins over flags)."""
    if entry is not None:
        return _create(entry, ReplicationPolicy, "replication")
    if not config.enabled:
        return NoReplication()
    return PassivePeriodicReplication(period=config.period)


def detection_policy_from(
    config: FaultDetectionConfig, entry: Any = None
) -> DetectionPolicy:
    """The failure-detection policy for one detector (entry wins over flags).

    ``None`` derives the paper's fixed-timeout rule from the config's
    ``suspicion_timeout`` (the policy defers to the config at query time, so
    the derivation is byte-identical to the historical flag-driven check).
    """
    if entry is not None:
        return _create(entry, DetectionPolicy, "detection")
    return FixedTimeoutDetection()


def logging_policy_from(config: LoggingConfig, entry: Any = None) -> LoggingPolicy:
    """The logging policy for one client (entry wins over the strategy flag)."""
    if entry is not None:
        return _create(entry, LoggingPolicy, "logging")
    return _STRATEGY_POLICIES[config.strategy]()


def reassert_flag_override(protocol: "ProtocolConfig", path: str, value: Any) -> None:
    """Make an explicit legacy-flag override effective despite policy entries.

    For the replication/logging axes the flag fully determines the policy,
    so the shadowing entry is cleared and derivation falls back to the flags
    (``--set coordinator.replication.enabled=false`` keeps disabling
    replication even on a preset that bundles an entry).  The scheduler flag
    only expresses the reschedule switch — the selected ordering is kept and
    the entry's ``reschedule`` param is rewritten instead.
    """
    axis = SHADOWED_FLAG_PATHS.get(path)
    if axis is not None:
        setattr(protocol.policy, axis, None)
        return
    if path == "coordinator.scheduler.reschedule_on_suspicion":
        normalized = normalize_policy_entry(protocol.policy.scheduler)
        if normalized is not None:
            name, params = normalized
            params["reschedule"] = bool(value)
            protocol.policy.scheduler = {"name": name, "params": params}


def validate_policy_entries(policy_config: Any) -> None:
    """Fail fast on unresolvable policy entries (CLI pre-sweep validation).

    Checks that every set entry's name resolves through the registry without
    instantiating anything (parameters are validated at construction time,
    inside the cells).
    """
    for field_name in ("scheduler", "replication", "logging", "detection"):
        entry = getattr(policy_config, field_name, None)
        normalized = normalize_policy_entry(entry)
        if normalized is None:
            continue
        name, _params = normalized
        resolve_component(name)


# ---------------------------------------------------------------------------
# Mirroring policy entries back onto the legacy flags
# ---------------------------------------------------------------------------


def _mirror_entry_flags(
    protocol: "ProtocolConfig", axis: str, name: str, params: Mapping[str, Any]
) -> None:
    """Keep the legacy tier-config flags in sync with one built-in entry.

    Custom (non-built-in) policy names have no flag equivalent; the flags
    then keep their values and the policy entry alone is authoritative.
    """
    if axis == "replication":
        # The policy class carries whether it replicates at all (its
        # `enabled` attribute), so on-commit and custom variants mirror
        # truthfully without being named here.
        try:
            factory = resolve_component(name)
        except ConfigurationError:
            return
        enabled = getattr(factory, "enabled", None)
        if isinstance(enabled, bool):
            protocol.coordinator.replication.enabled = enabled
        if name == "policy.repl.passive-periodic" and params.get("period") is not None:
            protocol.coordinator.replication.period = float(params["period"])
    elif axis == "scheduler":
        if name.startswith("policy.sched.") and "reschedule" in params:
            protocol.coordinator.scheduler.reschedule_on_suspicion = bool(
                params["reschedule"]
            )
    elif axis == "detection":
        # Only an explicit fixed timeout has a flag equivalent; adaptive and
        # accrual detectors read the flag as their ceiling/fallback instead.
        if name == "policy.detect.fixed-timeout" and params.get("timeout") is not None:
            timeout = float(params["timeout"])
            protocol.coordinator.detection.suspicion_timeout = timeout
            protocol.server.detection.suspicion_timeout = timeout
    elif axis == "logging":
        # The policy class itself carries the strategy it implements (its
        # `strategy` attribute) — resolve through the registry rather than
        # duplicating the key->enum mapping here.
        try:
            factory = resolve_component(name)
        except ConfigurationError:
            return
        strategy = getattr(factory, "strategy", None)
        if isinstance(strategy, LoggingStrategy):
            protocol.client.logging.strategy = strategy


def sync_policy_flags(protocol: "ProtocolConfig") -> "ProtocolConfig":
    """Mirror the set policy entries onto the legacy tier-config flags.

    Called by the bundle builder and by override resolution
    (``--set policy.replication=...``), so ``describe()`` and flag-reading
    code never contradict the policies actually in force.  Entries without a
    built-in flag equivalent leave the flags untouched.
    """
    for axis, entry in protocol.policy.entries().items():
        normalized = normalize_policy_entry(entry)
        if normalized is not None:
            name, params = normalized
            _mirror_entry_flags(protocol, axis, name, params)
    return protocol
