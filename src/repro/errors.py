"""Exception hierarchy of the RPC-V reproduction.

Two families are kept strictly apart:

* :class:`ReproError` and its subclasses signal *misuse of the library*
  (bad configuration, calling an API out of order, ...).  They propagate.
* Modelled faults (node crashes, dropped messages, suspicions) never raise:
  they are events of the simulated world and are handled by the protocol.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "SchedulingError",
    "RPCError",
    "RPCTimeout",
    "ServiceNotRegistered",
    "SessionError",
    "LogCorruption",
]


class ReproError(Exception):
    """Base class of all library errors."""


class ConfigurationError(ReproError):
    """A scenario or component was configured with invalid parameters."""


class ProtocolError(ReproError):
    """A protocol component received a message it cannot interpret."""


class SchedulingError(ReproError):
    """The coordinator scheduler was asked to do something impossible."""


class RPCError(ReproError):
    """Base class of errors surfaced through the GridRPC-like client API."""


class RPCTimeout(RPCError):
    """A blocking wait on an RPC exceeded the caller-provided deadline."""


class ServiceNotRegistered(RPCError):
    """An RPC named a service unknown to every reachable server."""


class SessionError(RPCError):
    """The client API was used without (or with a stale) session."""


class LogCorruption(ReproError):
    """A message log replay found records violating its integrity rules."""
