"""The sender-based message log.

A :class:`MessageLog` lives on one host.  Records move through three
durability states:

* **buffered** — accepted by the log but not yet on disk; lost if the host
  crashes (this is the window the optimistic strategy gambles on);
* **durable** — written to the host's persistent space; survives crashes;
* **acknowledged** — the peer has confirmed it holds the information (e.g.
  the coordinator acknowledged an RPC submission), so the record is now only
  needed for fast resynchronisation and may be garbage collected.

Keys are the client timestamps (RPC counters) for client logs, task
identifiers for server logs; the synchronisation protocol only ever compares
keys and replays payloads, so the log is deliberately schema-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import LogCorruption
from repro.nodes.node import Host

__all__ = ["LogRecord", "MessageLog"]


@dataclass
class LogRecord:
    """One logged message."""

    key: Any
    payload: dict[str, Any]
    size_bytes: int
    created_at: float
    durable: bool = False
    acked: bool = False
    durable_at: float | None = None
    acked_at: float | None = None


class MessageLog:
    """Per-host message log with explicit durability tracking."""

    def __init__(self, host: Host, name: str) -> None:
        self.host = host
        self.name = name
        storage_key = f"msglog:{name}"
        #: durable records — stored in the host's persistent space so they
        #: survive crashes.
        self._durable: dict[Any, LogRecord] = host.persistent.setdefault(storage_key, {})
        #: buffered records — volatile; simply not re-created after a crash.
        self._buffered: dict[Any, LogRecord] = {}

    # -- writing -----------------------------------------------------------------
    def append(self, key: Any, payload: dict[str, Any], size_bytes: int) -> LogRecord:
        """Accept a record in the buffered (not yet durable) state."""
        if key in self._buffered or key in self._durable:
            raise LogCorruption(f"duplicate log key {key!r} in log {self.name!r}")
        record = LogRecord(
            key=key,
            payload=dict(payload),
            size_bytes=int(size_bytes),
            created_at=self.host.env.now,
        )
        self._buffered[key] = record
        return record

    def mark_durable(self, key: Any) -> None:
        """Promote a buffered record to durable (it reached the disk)."""
        record = self._buffered.pop(key, None)
        if record is None:
            if key in self._durable:
                return
            raise LogCorruption(f"mark_durable on unknown key {key!r}")
        record.durable = True
        record.durable_at = self.host.env.now
        self._durable[key] = record

    def mark_acked(self, key: Any) -> None:
        """Record that the peer acknowledged holding this information."""
        record = self._durable.get(key) or self._buffered.get(key)
        if record is None:
            # An ack for a record we no longer hold (already GC'ed) is fine.
            return
        record.acked = True
        record.acked_at = self.host.env.now

    def forget(self, key: Any) -> None:
        """Drop a record entirely (garbage collection only)."""
        self._durable.pop(key, None)
        self._buffered.pop(key, None)

    # -- reading -----------------------------------------------------------------
    def get(self, key: Any) -> LogRecord | None:
        """The record under ``key`` (durable or buffered), if any."""
        return self._durable.get(key) or self._buffered.get(key)

    def durable_records(self) -> list[LogRecord]:
        """All durable records, ordered by key."""
        return [self._durable[k] for k in sorted(self._durable, key=_sort_key)]

    def all_records(self) -> list[LogRecord]:
        """Durable and buffered records, ordered by key."""
        merged = dict(self._durable)
        merged.update(self._buffered)
        return [merged[k] for k in sorted(merged, key=_sort_key)]

    def durable_keys(self) -> set[Any]:
        """Keys of durable records."""
        return set(self._durable)

    def keys(self) -> set[Any]:
        """Keys of every record (durable or buffered)."""
        return set(self._durable) | set(self._buffered)

    def unacked_durable(self) -> list[LogRecord]:
        """Durable records not yet acknowledged (what a sync must replay)."""
        return [r for r in self.durable_records() if not r.acked]

    def max_durable_key(self, default: Any = None) -> Any:
        """Largest durable key (the client's last registered timestamp)."""
        if not self._durable:
            return default
        return max(self._durable, key=_sort_key)

    # -- sizes --------------------------------------------------------------------
    def durable_bytes(self) -> int:
        """Bytes of payload held durably."""
        return sum(r.size_bytes for r in self._durable.values())

    def total_bytes(self) -> int:
        """Bytes of payload held in any state."""
        return self.durable_bytes() + sum(r.size_bytes for r in self._buffered.values())

    def __len__(self) -> int:
        return len(self._durable) + len(self._buffered)

    def __contains__(self, key: Any) -> bool:
        return key in self._durable or key in self._buffered

    # -- integrity ----------------------------------------------------------------
    def check_integrity(self) -> None:
        """Raise :class:`LogCorruption` on impossible record states."""
        for key, record in self._durable.items():
            if not record.durable:
                raise LogCorruption(f"record {key!r} in durable store but not durable")
        for key, record in self._buffered.items():
            if record.durable:
                raise LogCorruption(f"record {key!r} durable but still buffered")
            if key in self._durable:
                raise LogCorruption(f"record {key!r} present in both stores")

    def replay_payloads(self, keys: Iterable[Any]) -> list[dict[str, Any]]:
        """Payloads of the durable records with the given keys, in key order."""
        out = []
        for key in sorted(keys, key=_sort_key):
            record = self._durable.get(key)
            if record is not None:
                out.append(dict(record.payload))
        return out


def _sort_key(key: Any):
    """Total order on heterogeneous log keys (ints, id newtypes, tuples)."""
    if isinstance(key, (int, float)):
        return (0, key, "")
    value = getattr(key, "value", None)
    if isinstance(value, (int, float)):
        return (0, value, type(key).__name__)
    return (1, 0, repr(key))
