"""Sender-based message logging.

Every RPC-V component locally logs every message it sends; on each
communication the peers synchronise from these logs, which is what lets a
restarted client resume exactly after its last registered RPC and lets
servers re-execute calls whose results have been lost.  The package provides
the durable log itself, the three client-side logging strategies compared in
Figure 4 (optimistic, blocking pessimistic, non-blocking pessimistic) and the
garbage-collection policies that keep the bounded log space safe.
"""

from repro.msglog.garbage import GarbageCollector, GCReport
from repro.msglog.log import LogRecord, MessageLog
from repro.msglog.strategies import LoggingEngine, LogToken

__all__ = [
    "GCReport",
    "GarbageCollector",
    "LogRecord",
    "LoggingEngine",
    "LogToken",
    "MessageLog",
]
