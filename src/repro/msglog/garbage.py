"""Garbage collection of message logs.

Logging capacity is bounded, so the system must decide "whether flushing some
logs, that may be potentially useful for avoiding re-executions, or stopping
computations".  The collector implemented here is the safe variant used by the
experiments:

* only **acknowledged** records are ever flushed (never the only remaining
  copy of information the peer has not confirmed — protocol invariant 7);
* collection is triggered locally when the configured capacity is exceeded,
  or explicitly by the user;
* when flushing acknowledged records is not enough and
  ``prefer_stall_over_flush`` is set, the collector reports that the caller
  should stall submissions instead of flushing unacknowledged records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LoggingConfig
from repro.msglog.log import MessageLog

__all__ = ["GCReport", "GarbageCollector"]


@dataclass
class GCReport:
    """Outcome of one collection pass."""

    triggered: bool
    records_flushed: int = 0
    bytes_flushed: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    #: True when the collector could not reach its target without touching
    #: unacknowledged records and the policy says to stall submissions.
    should_stall: bool = False


class GarbageCollector:
    """Capacity-driven collector over one :class:`MessageLog`."""

    def __init__(self, log: MessageLog, config: LoggingConfig) -> None:
        self.log = log
        self.config = config
        self.collections = 0
        self.total_flushed_bytes = 0

    def over_capacity(self) -> bool:
        """Whether the log currently exceeds its configured capacity."""
        return self.log.total_bytes() > self.config.capacity_bytes

    def maybe_collect(self) -> GCReport:
        """Run a collection pass if (and only if) the log is over capacity."""
        if not self.over_capacity():
            return GCReport(triggered=False, bytes_before=self.log.total_bytes(),
                            bytes_after=self.log.total_bytes())
        return self.collect()

    def collect(self) -> GCReport:
        """Flush acknowledged records, oldest first, down to the target size."""
        before = self.log.total_bytes()
        target = int(self.config.capacity_bytes * (1.0 - self.config.gc_target_fraction))
        flushed = 0
        flushed_bytes = 0

        # Oldest acknowledged records first: they are the least useful for a
        # future resynchronisation.
        candidates = sorted(
            (r for r in self.log.durable_records() if r.acked),
            key=lambda r: (r.acked_at if r.acked_at is not None else r.created_at),
        )
        current = before
        for record in candidates:
            if current <= target:
                break
            self.log.forget(record.key)
            current -= record.size_bytes
            flushed += 1
            flushed_bytes += record.size_bytes

        self.collections += 1
        self.total_flushed_bytes += flushed_bytes
        after = self.log.total_bytes()
        should_stall = (
            after > self.config.capacity_bytes and self.config.prefer_stall_over_flush
        )
        return GCReport(
            triggered=True,
            records_flushed=flushed,
            bytes_flushed=flushed_bytes,
            bytes_before=before,
            bytes_after=after,
            should_stall=should_stall,
        )
