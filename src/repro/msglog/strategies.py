"""Client-side message-logging strategies (Figure 4).

The three strategies differ only in *when* the disk write of the log record
is allowed to delay the communication:

* **blocking pessimistic** — the communication may not start before the log
  record is durable (full synchronous write up front, ≈ +30 % in the paper);
* **non-blocking pessimistic** — the communication starts immediately but may
  not *complete* before the log record is durable (small, variable overhead
  attributed to disc-cache management);
* **optimistic** — the write happens in the background at low priority; the
  communication is never delayed, but a crash before the background write
  completes loses the record (hence the more expensive recovery when both the
  client and the coordinator crash).

The engine exposes two process fragments, :meth:`LoggingEngine.before_send`
and :meth:`LoggingEngine.after_send`, that the client wraps around its
communication; the returned :class:`LogToken` carries the durability event
between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.config import LoggingConfig
from repro.msglog.log import MessageLog
from repro.nodes.node import Host
from repro.sim.core import Event, ProcessKilled
from repro.types import LoggingStrategy

__all__ = ["LogToken", "LoggingEngine"]


@dataclass
class LogToken:
    """Links the pre-send and post-send halves of one logged communication."""

    key: Any
    size_bytes: int
    #: event triggering once the record is durable (None when it already is,
    #: or when the strategy never waits for durability).
    durability_event: Event | None = None
    #: whether the strategy requires waiting on the event after the send.
    must_wait_after: bool = False


class LoggingEngine:
    """Applies one of the three logging strategies around a communication."""

    def __init__(self, host: Host, log: MessageLog, config: LoggingConfig) -> None:
        self.host = host
        self.log = log
        self.config = config
        #: cumulative simulated time the strategy added in front of / behind
        #: communications (reported by the Fig. 4 experiment).
        self.blocking_overhead = 0.0

    @property
    def strategy(self) -> LoggingStrategy:
        """The configured strategy."""
        return self.config.strategy

    # -- process fragments ---------------------------------------------------------
    def before_send(self, key: Any, payload: dict[str, Any], size_bytes: int):
        """Log ``payload`` under ``key`` and pay any pre-send cost.

        Yields simulation events; returns a :class:`LogToken` (via the
        generator's return value) for :meth:`after_send`.
        """
        self.log.append(key, payload, size_bytes)
        disk = self.host.disk
        strategy = self.config.strategy

        if strategy is LoggingStrategy.PESSIMISTIC_BLOCKING:
            cost = disk.sync_write_time(size_bytes)
            self.blocking_overhead += cost
            yield self.host.sleep(cost)
            self.log.mark_durable(key)
            return LogToken(key=key, size_bytes=size_bytes)

        if strategy is LoggingStrategy.PESSIMISTIC_NON_BLOCKING:
            # The write proceeds concurrently with the communication; the
            # synchronous remainder is charged when the communication ends.
            rng = self.host.rng.stream(f"disk.cache.{self.host.address}")
            sync_part = disk.cached_write_sync_time(size_bytes, rng)
            durability_event = self.host.env.timeout(sync_part)
            incarnation = self.host.incarnation
            durability_event.callbacks.append(
                lambda _e, k=key, i=incarnation: self._make_durable(k, i)
            )
            return LogToken(
                key=key,
                size_bytes=size_bytes,
                durability_event=durability_event,
                must_wait_after=True,
            )

        # Optimistic: low-priority background write; a negligible foreground
        # cost is still paid (the paper observes "negligible overhead", not
        # zero), and durability arrives much later.
        foreground = disk.background_write_foreground_time(size_bytes)
        if foreground > 0:
            self.blocking_overhead += foreground
            yield self.host.sleep(foreground)
        completion = disk.background_write_completion_time(size_bytes)
        durability_event = self.host.env.timeout(completion)
        incarnation = self.host.incarnation
        durability_event.callbacks.append(
            lambda _e, k=key, i=incarnation: self._make_durable(k, i)
        )
        return LogToken(key=key, size_bytes=size_bytes, durability_event=durability_event)

    def after_send(self, token: LogToken):
        """Pay any post-communication cost mandated by the strategy."""
        if token.must_wait_after and token.durability_event is not None:
            if not token.durability_event.processed:
                start = self.host.env.now
                try:
                    yield token.durability_event
                except ProcessKilled:  # pragma: no cover - host crash mid-wait
                    raise
                self.blocking_overhead += self.host.env.now - start
        return None

    # -- helpers ----------------------------------------------------------------------
    def _make_durable(self, key: Any, incarnation: int | None = None) -> None:
        # The host may have crashed while the write was in flight (or even
        # crashed and restarted): in either case the buffered record of the
        # old incarnation must not become durable retroactively.
        if not self.host.up:
            return
        if incarnation is not None and incarnation != self.host.incarnation:
            return
        record = self.log.get(key)
        if record is not None and not record.durable:
            self.log.mark_durable(key)

    def ack(self, key: Any) -> None:
        """Mark a record acknowledged by the peer (GC eligibility)."""
        self.log.mark_acked(key)
