"""Client-side message-logging engine (Figure 4).

The *mechanism* lives here — the durable log, the overhead accounting, the
crash-safe durability callback — while the *strategy* (when durability may
delay the communication) is a pluggable :class:`~repro.policies.logging.
LoggingPolicy` from the ``policy.log.*`` family:

* ``policy.log.pessimistic-blocking``    — durable before the communication
  starts (≈ +30 % in the paper);
* ``policy.log.pessimistic-nonblocking`` — the communication may not
  *complete* before the record is durable;
* ``policy.log.optimistic``              — background write; a crash before
  it completes loses the record.

The engine exposes two process fragments, :meth:`LoggingEngine.before_send`
and :meth:`LoggingEngine.after_send`, that the client wraps around its
communication; the returned :class:`LogToken` carries the durability event
between the two.  Constructing the engine without an explicit policy derives
one from the config's legacy ``strategy`` flag, so direct users of this
module behave exactly as before the policy layer existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.config import LoggingConfig
from repro.msglog.log import MessageLog
from repro.nodes.node import Host
from repro.sim.core import Event
from repro.types import LoggingStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policies.logging import LoggingPolicy

__all__ = ["LogToken", "LoggingEngine"]


@dataclass
class LogToken:
    """Links the pre-send and post-send halves of one logged communication."""

    key: Any
    size_bytes: int
    #: event triggering once the record is durable (None when it already is,
    #: or when the strategy never waits for durability).
    durability_event: Event | None = None
    #: whether the strategy requires waiting on the event after the send.
    must_wait_after: bool = False


class LoggingEngine:
    """Applies one logging policy around every logged communication."""

    def __init__(
        self,
        host: Host,
        log: MessageLog,
        config: LoggingConfig,
        policy: "LoggingPolicy | None" = None,
    ) -> None:
        self.host = host
        self.log = log
        self.config = config
        if policy is None:
            # Deferred import: repro.policies.logging imports this module's
            # LogToken, so the default resolution cannot be a top-level import.
            from repro.policies.resolve import logging_policy_from

            policy = logging_policy_from(config)
        self.policy = policy
        #: cumulative simulated time the strategy added in front of / behind
        #: communications (reported by the Fig. 4 experiment).
        self.blocking_overhead = 0.0

    @property
    def strategy(self) -> LoggingStrategy:
        """The strategy the active policy implements."""
        return self.policy.strategy

    # -- process fragments ---------------------------------------------------------
    def before_send(self, key: Any, payload: dict[str, Any], size_bytes: int):
        """Log ``payload`` under ``key`` and pay any pre-send cost.

        Yields simulation events; returns a :class:`LogToken` (via the
        generator's return value) for :meth:`after_send`.
        """
        token = yield from self.policy.before_send(self, key, payload, size_bytes)
        return token

    def after_send(self, token: LogToken):
        """Pay any post-communication cost mandated by the strategy."""
        result = yield from self.policy.after_send(self, token)
        return result

    # -- helpers ----------------------------------------------------------------------
    def _make_durable(self, key: Any, incarnation: int | None = None) -> None:
        # The host may have crashed while the write was in flight (or even
        # crashed and restarted): in either case the buffered record of the
        # old incarnation must not become durable retroactively.
        if not self.host.up:
            return
        if incarnation is not None and incarnation != self.host.incarnation:
            return
        record = self.log.get(key)
        if record is not None and not record.durable:
            self.log.mark_durable(key)

    def ack(self, key: Any) -> None:
        """Mark a record acknowledged by the peer (GC eligibility)."""
        self.log.mark_acked(key)
