"""Controllable fault generator.

The paper built "a fault generator, running as a remotely controllable
daemon [that], upon order, or from its own initiative with respect to its
configuration, kills abruptly the RPC-V component of the hosting machine".
This module reproduces both modes:

* :class:`FaultGenerator` — autonomous Poisson (or churn-model driven) kills
  and restarts over a pool of hosts, parameterised by a global fault
  frequency exactly as swept in Figure 7;
* :class:`FaultScript` — an explicit timetable of kill/restart events, used
  for the labelled scenarios of Figures 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

from repro.errors import ConfigurationError
from repro.nodes.churn import ChurnModel
from repro.nodes.node import Host
from repro.sim.core import Environment, ProcessKilled
from repro.sim.monitor import Monitor
from repro.sim.rng import RandomStreams

__all__ = [
    "ChurnInjector",
    "CorrelatedFaults",
    "FaultGenerator",
    "ScriptedEvent",
    "FaultScript",
]


class FaultGenerator:
    """Injects independent, exponentially-distributed faults over a host pool.

    ``faults_per_minute`` is the aggregate rate over the whole pool (the
    x-axis of Figure 7); each fault picks a victim uniformly at random, kills
    it abruptly, then restarts it after ``restart_delay`` seconds (set to
    ``float('inf')`` for permanent failures).
    """

    def __init__(
        self,
        env: Environment,
        hosts: Sequence[Host],
        rng: RandomStreams,
        faults_per_minute: float = 0.0,
        restart_delay: float = 5.0,
        monitor: Monitor | None = None,
        name: str = "faultgen",
    ) -> None:
        if faults_per_minute < 0:
            raise ConfigurationError("faults_per_minute must be non-negative")
        if restart_delay < 0:
            raise ConfigurationError("restart_delay must be non-negative")
        self.env = env
        self.hosts = list(hosts)
        self.rng = rng
        self.faults_per_minute = faults_per_minute
        self.restart_delay = restart_delay
        self.monitor = monitor or Monitor()
        self.name = name
        self.injected = 0
        self._running = False

    def setup(self, builder) -> None:
        """Component lifecycle hook: the generator binds at construction.

        (The declarative, Builder-driven construction lives in
        :class:`repro.platform.library.RateFaultInjector`.)
        """

    # -- autonomous operation -----------------------------------------------------
    def start(self) -> None:
        """Start injecting faults (no-op at rate 0)."""
        if self.faults_per_minute <= 0 or not self.hosts:
            return
        if self._running:
            return
        self._running = True
        self.env.process(self._run(), name=f"{self.name}:driver")

    def stop(self) -> None:
        """Stop injecting further faults (in-flight restarts still happen)."""
        self._running = False

    def _run(self):
        mean_gap = 60.0 / self.faults_per_minute
        while self._running:
            gap = self.rng.exponential(f"{self.name}.gap", mean_gap)
            yield self.env.timeout(gap)
            if not self._running:
                return
            victims = [h for h in self.hosts if h.up]
            if not victims:
                continue
            victim = self.rng.choice(f"{self.name}.victim", victims)
            self.kill(victim)

    # -- manual orders ("upon order") ------------------------------------------------
    def kill(self, host: Host, restart_after: float | None = None) -> None:
        """Kill ``host`` now; schedule its restart unless permanently down."""
        if not host.up:
            return
        self.injected += 1
        self.monitor.incr("faultgen.kills")
        host.crash(cause=f"{self.name}")
        delay = self.restart_delay if restart_after is None else restart_after
        if delay != float("inf"):
            self.env.process(self._restart_later(host, delay), name=f"{self.name}:restart")

    def _restart_later(self, host: Host, delay: float):
        try:
            yield self.env.timeout(delay)
        except ProcessKilled:  # pragma: no cover - defensive
            return
        if not host.up:
            host.restart()
            self.monitor.incr("faultgen.restarts")


class ChurnInjector:
    """Per-host volatility driven by a :class:`~repro.nodes.churn.ChurnModel`.

    Unlike :class:`FaultGenerator` (one aggregate Poisson rate over the pool),
    every host lives through its own up-time / down-time cycle drawn from the
    model, as a volatile desktop-grid node would: it crashes when its up-time
    expires and returns after its down-time — or never, when the model draws a
    permanent departure.
    """

    def __init__(
        self,
        env: Environment,
        hosts: Sequence[Host],
        rng: RandomStreams,
        model: ChurnModel,
        monitor: Monitor | None = None,
        name: str = "churn",
    ) -> None:
        self.env = env
        self.hosts = list(hosts)
        self.rng = rng
        self.model = model
        self.monitor = monitor or Monitor()
        self.name = name
        self.injected = 0
        self.restarts = 0
        self.permanent_departures = 0
        self._running = False

    def setup(self, builder) -> None:
        """Component lifecycle hook: the injector binds at construction.

        (The declarative, Builder-driven construction lives in
        :class:`repro.platform.library.ChurnInjectorComponent`.)
        """

    def start(self) -> None:
        """Start one volatility loop per host (idempotent)."""
        if self._running or not self.hosts:
            return
        self._running = True
        for host in self.hosts:
            self.env.process(
                self._host_loop(host), name=f"{self.name}:{host.address}"
            )

    def stop(self) -> None:
        """Stop injecting further churn (in-flight restarts still happen)."""
        self._running = False

    def _host_loop(self, host: Host):
        node = str(host.address)
        while self._running:
            uptime = self.model.uptime(self.rng, node)
            if uptime == float("inf"):
                return
            yield self.env.timeout(uptime)
            if not self._running:
                return
            downtime = self.model.downtime(self.rng, node)
            if host.up:
                self.injected += 1
                self.monitor.incr("churn.departures")
                host.crash(cause=self.name)
            if downtime == float("inf"):
                self.permanent_departures += 1
                self.monitor.incr("churn.permanent")
                return
            yield self.env.timeout(downtime)
            if not host.up:
                host.restart()
                self.restarts += 1
                self.monitor.incr("churn.returns")


class CorrelatedFaults:
    """Correlated (group) failures: whole groups crash and return together.

    Independent per-host churn underestimates the damage of power or network
    events that take out a whole site at once.  This generator draws group
    failures from a single Poisson process: each event picks one group,
    kills every up member simultaneously, optionally partitions the group
    from the rest of the grid while it is down, and restarts the whole group
    together after an exponentially-distributed downtime.

    All three draws (inter-event gap, group choice, downtime) come from
    ``crn.``-prefixed streams and are made unconditionally per event, so two
    policy arms sharing a ``crn_seed`` see the *identical* fault schedule
    even when a chosen group happens to be already down in one arm.
    """

    def __init__(
        self,
        env: Environment,
        groups: Sequence[Sequence[Host]],
        rng: RandomStreams,
        rate_per_minute: float = 0.0,
        mttr: float = 30.0,
        all_hosts: Sequence[Host] | None = None,
        partitions=None,
        partition: bool = False,
        monitor: Monitor | None = None,
        name: str = "correlated",
    ) -> None:
        if rate_per_minute < 0:
            raise ConfigurationError("rate_per_minute must be non-negative")
        if mttr <= 0:
            raise ConfigurationError("mttr must be positive")
        cleaned = [list(group) for group in groups if group]
        if groups and not cleaned:
            raise ConfigurationError("correlated fault groups must be non-empty")
        self.env = env
        self.groups = cleaned
        self.rng = rng
        self.rate_per_minute = rate_per_minute
        self.mttr = mttr
        self.all_hosts = list(all_hosts) if all_hosts is not None else [
            host for group in self.groups for host in group
        ]
        self.partitions = partitions
        self.partition = partition
        self.monitor = monitor or Monitor()
        self.name = name
        self.injected = 0
        self.events = 0
        self._running = False

    def setup(self, builder) -> None:
        """Component lifecycle hook: the generator binds at construction.

        (The declarative, Builder-driven construction lives in
        :class:`repro.platform.library.CorrelatedFaultInjector`.)
        """

    def start(self) -> None:
        """Start injecting group failures (no-op at rate 0)."""
        if self.rate_per_minute <= 0 or not self.groups:
            return
        if self._running:
            return
        self._running = True
        self.env.process(self._run(), name=f"{self.name}:driver")

    def stop(self) -> None:
        """Stop injecting further events (in-flight recoveries still happen)."""
        self._running = False

    def _run(self):
        mean_gap = 60.0 / self.rate_per_minute
        while self._running:
            # All draws happen before any state-dependent branching so the
            # crn.* streams advance identically across paired policy arms.
            gap = self.rng.exponential(f"crn.{self.name}.gap", mean_gap)
            yield self.env.timeout(gap)
            choice = int(
                self.rng.stream(f"crn.{self.name}.group").integers(0, len(self.groups))
            )
            downtime = self.rng.exponential(f"crn.{self.name}.down", self.mttr)
            if not self._running:
                return
            group = self.groups[choice]
            victims = [host for host in group if host.up]
            partition_name: str | None = None
            if victims:
                self.events += 1
                self.monitor.incr("correlated.events")
                for host in victims:
                    self.injected += 1
                    self.monitor.incr("correlated.kills")
                    host.crash(cause=self.name)
                if self.partition and self.partitions is not None:
                    partition_name = f"{self.name}:{self.events}"
                    inside = [host.address for host in group]
                    outside = [
                        host.address
                        for host in self.all_hosts
                        if host not in group
                    ]
                    if outside:
                        self.partitions.partition(partition_name, inside, outside)
                        self.monitor.incr("correlated.partitions")
                    else:
                        partition_name = None
            self.env.process(
                self._recover(list(group), downtime, partition_name),
                name=f"{self.name}:recover",
            )

    def _recover(self, group: list[Host], downtime: float, partition_name: str | None):
        try:
            yield self.env.timeout(downtime)
        except ProcessKilled:  # pragma: no cover - defensive
            return
        if partition_name is not None:
            self.partitions.heal(partition_name)
        for host in group:
            if not host.up:
                host.restart()
                self.monitor.incr("correlated.restarts")


@dataclass(frozen=True)
class ScriptedEvent:
    """One entry of a :class:`FaultScript` timetable."""

    time: float
    action: Literal["kill", "restart"]
    target: str  # host address string, matched against str(host.address)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("scripted event time must be non-negative")
        if self.action not in ("kill", "restart"):
            raise ConfigurationError(f"unknown scripted action {self.action!r}")


@dataclass
class FaultScript:
    """A deterministic timetable of kills and restarts (Figs. 10-11 scenarios)."""

    events: list[ScriptedEvent] = field(default_factory=list)

    def kill(self, time: float, target: str) -> "FaultScript":
        """Append a kill of ``target`` at ``time``; returns self for chaining."""
        self.events.append(ScriptedEvent(time=time, action="kill", target=target))
        return self

    def restart(self, time: float, target: str) -> "FaultScript":
        """Append a restart of ``target`` at ``time``; returns self for chaining."""
        self.events.append(ScriptedEvent(time=time, action="restart", target=target))
        return self

    def install(self, env: Environment, hosts: Sequence[Host], monitor: Monitor | None = None) -> None:
        """Spawn a driver process executing the timetable on the given hosts."""
        by_name = {str(h.address): h for h in hosts}
        monitor = monitor or Monitor()
        ordered = sorted(self.events, key=lambda e: e.time)

        def driver():
            start = env.now
            for event in ordered:
                delay = max(0.0, start + event.time - env.now)
                if delay:
                    yield env.timeout(delay)
                host = by_name.get(event.target)
                if host is None:
                    raise ConfigurationError(
                        f"fault script targets unknown host {event.target!r}"
                    )
                if event.action == "kill":
                    monitor.incr("faultscript.kills")
                    host.crash(cause="fault-script")
                else:
                    monitor.incr("faultscript.restarts")
                    host.restart()

        env.process(driver(), name="fault-script")

    def targets(self) -> set[str]:
        """All host names referenced by the script."""
        return {event.target for event in self.events}
