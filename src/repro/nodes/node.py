"""Volatile hosts.

A :class:`Host` is one machine of the grid.  It owns:

* a network :class:`~repro.net.transport.Endpoint` (its mailbox),
* a :class:`~repro.nodes.disk.DiskModel` and a *persistent* key/value space
  that survives crashes (this is where message logs and databases live),
* the set of simulation processes currently running on it.

``crash()`` kills every process, empties the mailbox and bumps the
*incarnation* counter; ``restart()`` brings the endpoint back up and invokes
the restart callback installed by the component, which rebuilds its volatile
state from the persistent space — exactly the paper's fault model ("every
restarting component restarts from the beginning of its execution or from its
last local state").
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.errors import ConfigurationError
from repro.net.transport import Endpoint, Network
from repro.nodes.disk import DiskModel
from repro.sim.core import Environment, Process
from repro.sim.monitor import Monitor
from repro.sim.rng import RandomStreams
from repro.types import Address

__all__ = ["Host"]


class Host:
    """One volatile machine hosting exactly one protocol component."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        address: Address,
        disk: DiskModel | None = None,
        rng: RandomStreams | None = None,
        monitor: Monitor | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self.address = address
        self.disk = disk or DiskModel()
        self.rng = rng or RandomStreams(0)
        self.monitor = monitor or Monitor()
        self.endpoint: Endpoint = network.register(address)

        #: True while the machine (and its component) is up.
        self.up = True
        #: incremented on every restart; lets stale callbacks detect they
        #: belong to a previous incarnation.
        self.incarnation = 0
        #: data that survives crashes (disk contents: logs, databases, ...).
        self.persistent: dict[str, Any] = {}
        #: data lost on crash (rebuilt by the component on restart).
        self.volatile: dict[str, Any] = {}

        self._processes: list[Process] = []
        self._restart_callback: Callable[["Host"], None] | None = None
        self._crash_callback: Callable[["Host"], None] | None = None
        #: extra crash hooks (e.g. heartbeat emitters reclaiming their
        #: pending kernel-lane timers); removable, unlike on_crash's slot.
        self._crash_hooks: list[Callable[["Host"], None]] = []
        #: extra restart hooks (e.g. beacons re-arming their emitters);
        #: removable, unlike on_restart's component-owned slot.
        self._restart_hooks: list[Callable[["Host"], None]] = []

        # availability bookkeeping
        self._last_transition = env.now
        self.total_uptime = 0.0
        self.total_downtime = 0.0
        self.crash_count = 0

    # -- component wiring --------------------------------------------------------
    def on_restart(self, callback: Callable[["Host"], None]) -> None:
        """Install the component's restart hook (called by ``restart()``)."""
        self._restart_callback = callback

    def on_crash(self, callback: Callable[["Host"], None]) -> None:
        """Install an optional crash hook (observability only)."""
        self._crash_callback = callback

    def add_crash_hook(self, hook: Callable[["Host"], None]) -> None:
        """Register an additional crash hook (idempotent; see remove_crash_hook).

        Used by helpers that schedule kernel callback-lane work on behalf of
        this host (e.g. heartbeat emitters) so a crash reclaims their pending
        entries the same way it kills the host's processes.
        """
        if hook not in self._crash_hooks:
            self._crash_hooks.append(hook)

    def remove_crash_hook(self, hook: Callable[["Host"], None]) -> None:
        """Deregister a crash hook installed with add_crash_hook (idempotent)."""
        try:
            self._crash_hooks.remove(hook)
        except ValueError:
            pass

    def add_restart_hook(self, hook: Callable[["Host"], None]) -> None:
        """Register an additional restart hook (idempotent).

        Unlike :meth:`on_restart` — a single slot owned by the host's
        protocol component — any number of helpers (e.g. auxiliary heartbeat
        beacons) may subscribe; hooks run after the component's restart
        callback rebuilt its volatile state.
        """
        if hook not in self._restart_hooks:
            self._restart_hooks.append(hook)

    def remove_restart_hook(self, hook: Callable[["Host"], None]) -> None:
        """Deregister a hook installed with add_restart_hook (idempotent)."""
        try:
            self._restart_hooks.remove(hook)
        except ValueError:
            pass

    # -- process management --------------------------------------------------------
    def spawn(
        self, generator: Generator, name: str | None = None
    ) -> Process:
        """Start a simulation process belonging to this host.

        The process is killed if the host crashes.
        """
        if not self.up:
            raise ConfigurationError(f"cannot spawn on crashed host {self.address}")
        process = self.env.process(generator, name=name or f"{self.address}:proc")
        self._processes.append(process)
        self._processes = [p for p in self._processes if p.is_alive]
        return process

    def alive_processes(self) -> list[Process]:
        """Processes of this host that have not terminated yet."""
        self._processes = [p for p in self._processes if p.is_alive]
        return list(self._processes)

    # -- crash / restart --------------------------------------------------------
    def crash(self, cause: Any = "fault-injection") -> None:
        """Abrupt failure: kill processes, drop mailbox and volatile state."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        now = self.env.now
        self.total_uptime += now - self._last_transition
        self._last_transition = now

        for process in self.alive_processes():
            process.kill(cause)
        self._processes.clear()
        self.volatile.clear()
        self.network.set_endpoint_up(self.address, False)
        self.monitor.incr(f"faults.{self.address.kind}")
        self.monitor.trace(now, "crash", address=str(self.address), cause=str(cause))
        for hook in list(self._crash_hooks):  # hooks may deregister themselves
            hook(self)
        if self._crash_callback is not None:
            self._crash_callback(self)

    def restart(self) -> None:
        """Restart after a crash; the component rebuilds from persistent state."""
        if self.up:
            return
        now = self.env.now
        self.total_downtime += now - self._last_transition
        self._last_transition = now
        self.up = True
        self.incarnation += 1
        self.network.set_endpoint_up(self.address, True)
        self.monitor.incr(f"restarts.{self.address.kind}")
        self.monitor.trace(now, "restart", address=str(self.address))
        if self._restart_callback is not None:
            self._restart_callback(self)
        for hook in list(self._restart_hooks):  # hooks may deregister themselves
            hook(self)

    # -- timed local operations ---------------------------------------------------
    def sleep(self, duration: float):
        """Timeout event for ``duration`` seconds of local (in)activity."""
        return self.env.timeout(max(duration, 0.0))

    def disk_write(self, size_bytes: int) -> Generator:
        """Process fragment: a synchronous disk write of ``size_bytes``."""
        yield self.env.timeout(self.disk.sync_write_time(size_bytes))

    def disk_read(self, size_bytes: int) -> Generator:
        """Process fragment: a disk read of ``size_bytes``."""
        yield self.env.timeout(self.disk.read_time(size_bytes))

    # -- messaging ---------------------------------------------------------------
    def send(self, message) -> None:
        """Send a message through the network (no-op while crashed)."""
        if not self.up:
            return
        self.network.send(message)

    def recv(self):
        """Event for the next message delivered to this host."""
        return self.endpoint.recv()

    def recv_many(self):
        """Event for the same-tick batch of delivered messages (FIFO list).

        One receiver resume per tick however many messages land — the
        batched-wakeup drain path (see :meth:`Endpoint.recv_many`).
        """
        return self.endpoint.recv_many()

    # -- reporting ---------------------------------------------------------------
    def availability(self) -> float:
        """Fraction of elapsed time this host has been up so far."""
        now = self.env.now
        up = self.total_uptime
        down = self.total_downtime
        if self.up:
            up += now - self._last_transition
        else:
            down += now - self._last_transition
        total = up + down
        return 1.0 if total == 0 else up / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Host {self.address} {state} incarnation={self.incarnation}>"
