"""Coordinator database cost model and in-simulation record store.

In XtremWeb the coordinator keeps job and task *descriptions* in a MySQL
database (file archives live on the filesystem and are never replicated).
Figure 5 shows that coordinator replication time is dominated by database
operation time at the backup for small records, and grows linearly with the
number of task descriptions because tasks are replicated one after the other.
The model therefore charges a fixed per-operation cost plus a per-byte cost,
and the :class:`Database` object both stores records and accounts for the
time those operations take.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ConfigurationError

__all__ = ["DatabaseModel", "Database"]


@dataclass
class DatabaseModel:
    """Per-operation timing model of the coordinator's description store."""

    #: fixed cost of an INSERT/UPDATE of one description, seconds.  The
    #: confined-cluster coordinators (IDE disks, 2004 MySQL) pay a few ms per
    #: row; the real-life coordinators "exhibit better performance on database
    #: operations" so deployments may lower this.
    write_op_latency: float = 0.004
    #: fixed cost of a SELECT of one description, seconds.
    read_op_latency: float = 0.0015
    #: additional cost per byte of description payload, seconds/byte.
    per_byte: float = 2.0e-8
    #: cost of scanning the task table once (used by schedulers and syncs).
    scan_latency: float = 0.002

    def __post_init__(self) -> None:
        if min(self.write_op_latency, self.read_op_latency, self.scan_latency) < 0:
            raise ConfigurationError("database latencies must be non-negative")
        if self.per_byte < 0:
            raise ConfigurationError("per_byte must be non-negative")

    def write_time(self, size_bytes: int) -> float:
        """Cost of inserting/updating one record of ``size_bytes``."""
        return self.write_op_latency + size_bytes * self.per_byte

    def read_time(self, size_bytes: int) -> float:
        """Cost of reading one record of ``size_bytes``."""
        return self.read_op_latency + size_bytes * self.per_byte

    def scan_time(self, n_records: int) -> float:
        """Cost of scanning ``n_records`` records (index walk)."""
        return self.scan_latency + 0.00002 * n_records


@dataclass
class Database:
    """A keyed record store whose operations are charged to the model.

    The store itself is a plain dict (descriptions are small); callers are
    expected to ``yield env.timeout(db.charge_...)`` around their operations —
    the coordinator component does exactly that — so that the time cost shows
    up in the simulation.  Contents survive crashes: the database sits on the
    coordinator's persistent storage, which is how a restarted coordinator can
    resynchronise.
    """

    model: DatabaseModel = field(default_factory=DatabaseModel)
    records: dict[Any, dict[str, Any]] = field(default_factory=dict)
    #: cumulative simulated time charged by this database (reporting).
    time_charged: float = 0.0
    #: operation counters.
    writes: int = 0
    reads: int = 0
    scans: int = 0

    # -- operations (return the time they cost; caller yields the timeout) ----
    def charge_write(self, key: Any, record: dict[str, Any], size_bytes: int) -> float:
        """Insert or update ``record`` under ``key``; returns the time cost."""
        self.records[key] = dict(record)
        self.writes += 1
        cost = self.model.write_time(size_bytes)
        self.time_charged += cost
        return cost

    def charge_read(self, key: Any, size_bytes: int = 0) -> tuple[dict[str, Any] | None, float]:
        """Read the record under ``key``; returns ``(record, time cost)``."""
        self.reads += 1
        cost = self.model.read_time(size_bytes)
        self.time_charged += cost
        record = self.records.get(key)
        return (dict(record) if record is not None else None), cost

    def charge_scan(self) -> float:
        """Charge one full scan of the table; returns the time cost."""
        self.scans += 1
        cost = self.model.scan_time(len(self.records))
        self.time_charged += cost
        return cost

    # -- cheap, uncharged accessors (in-memory views used by pure logic) ------
    def get(self, key: Any) -> dict[str, Any] | None:
        """Uncharged read used by pure decision logic."""
        record = self.records.get(key)
        return dict(record) if record is not None else None

    def contains(self, key: Any) -> bool:
        """Uncharged existence check."""
        return key in self.records

    def keys(self) -> list[Any]:
        """Uncharged list of keys."""
        return list(self.records)

    def items(self) -> Iterator[tuple[Any, dict[str, Any]]]:
        """Uncharged iterator over (key, record copies)."""
        for key, record in list(self.records.items()):
            yield key, dict(record)

    def __len__(self) -> int:
        return len(self.records)
