"""Volatile node substrate.

Hosts are the machines of the desktop grid: they run protocol components,
crash abruptly (losing all volatile state and every queued message), restart
later — possibly much later, possibly never — and keep only what was written
to their simulated disk.  The package also provides the disk and database
cost models that dominate several of the paper's measurements, the churn
models describing volatility, and the controllable fault generator used to
stress the system far beyond what a real Internet deployment would allow.
"""

from repro.nodes.churn import (
    ChurnModel,
    ExponentialChurn,
    NoChurn,
    TraceChurn,
    WeibullChurn,
)
from repro.nodes.database import Database, DatabaseModel
from repro.nodes.disk import DiskModel
from repro.nodes.faultgen import FaultGenerator, FaultScript, ScriptedEvent
from repro.nodes.node import Host

__all__ = [
    "ChurnModel",
    "Database",
    "DatabaseModel",
    "DiskModel",
    "ExponentialChurn",
    "FaultGenerator",
    "FaultScript",
    "Host",
    "NoChurn",
    "ScriptedEvent",
    "TraceChurn",
    "WeibullChurn",
]
