"""Volatility (churn) models.

The paper characterises Desktop Grid nodes as *volatile*: they leave without
notice (shutdown, suspend-to-disk, idle-time policies, network stalls) and may
come back minutes or days later, or never.  A churn model answers, for one
node, "how long does it stay up, and once down, how long before it returns?"
The fault generator (Fig. 7) and the grid builder consume these models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams

__all__ = ["ChurnModel", "NoChurn", "ExponentialChurn", "WeibullChurn", "TraceChurn"]


class ChurnModel(Protocol):
    """Protocol implemented by volatility models."""

    def uptime(self, rng: RandomStreams, node: str) -> float:
        """Draw the next continuous up-time duration for ``node`` (seconds)."""
        ...

    def downtime(self, rng: RandomStreams, node: str) -> float:
        """Draw the next down-time duration for ``node`` (seconds).

        ``float('inf')`` means a permanent departure.
        """
        ...


@dataclass
class NoChurn:
    """Nodes never fail on their own (faults only come from the fault script)."""

    def uptime(self, rng: RandomStreams, node: str) -> float:
        return float("inf")

    def downtime(self, rng: RandomStreams, node: str) -> float:
        return float("inf")


@dataclass
class ExponentialChurn:
    """Memoryless churn: exponential MTBF and MTTR, as assumed in Fig. 7.

    ``permanent_fraction`` of the failures never recover, modelling permanent
    departures ("volatility implies that crashes may be permanent").
    """

    mtbf: float = 600.0
    mttr: float = 30.0
    permanent_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ConfigurationError("mtbf and mttr must be positive")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ConfigurationError("permanent_fraction must be in [0, 1]")

    def uptime(self, rng: RandomStreams, node: str) -> float:
        return rng.exponential(f"churn.up.{node}", self.mtbf)

    def downtime(self, rng: RandomStreams, node: str) -> float:
        if self.permanent_fraction:
            if float(rng.stream(f"churn.perm.{node}").random()) < self.permanent_fraction:
                return float("inf")
        return rng.exponential(f"churn.down.{node}", self.mttr)


@dataclass
class WeibullChurn:
    """Weibull-distributed availability, the shape measured on real desktop grids.

    ``shape < 1`` gives the bursty, heavy-tailed availability periods reported
    by desktop-grid measurement studies (many short up-times, a few very long
    ones).
    """

    scale_up: float = 600.0
    shape_up: float = 0.7
    scale_down: float = 60.0
    shape_down: float = 0.8

    def __post_init__(self) -> None:
        if min(self.scale_up, self.shape_up, self.scale_down, self.shape_down) <= 0:
            raise ConfigurationError("Weibull parameters must be positive")

    def uptime(self, rng: RandomStreams, node: str) -> float:
        stream = rng.stream(f"churn.up.{node}")
        return float(self.scale_up * stream.weibull(self.shape_up))

    def downtime(self, rng: RandomStreams, node: str) -> float:
        stream = rng.stream(f"churn.down.{node}")
        return float(self.scale_down * stream.weibull(self.shape_down))


@dataclass
class TraceChurn:
    """Replay explicit (uptime, downtime) pairs, cycling when exhausted.

    Useful for regression tests (fully deterministic) and for replaying
    availability traces harvested elsewhere.
    """

    pairs: Sequence[tuple[float, float]] = field(default_factory=lambda: [(3600.0, 60.0)])
    _cursors: dict[str, Iterator[tuple[float, float]]] = field(default_factory=dict, repr=False)
    _pending_down: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ConfigurationError("TraceChurn needs at least one (up, down) pair")
        for up, down in self.pairs:
            if up < 0 or down < 0:
                raise ConfigurationError("trace durations must be non-negative")

    def _advance(self, node: str) -> tuple[float, float]:
        cursor = self._cursors.get(node)
        if cursor is None:
            def cycle() -> Iterator[tuple[float, float]]:
                while True:
                    yield from self.pairs

            cursor = cycle()
            self._cursors[node] = cursor
        return next(cursor)

    def uptime(self, rng: RandomStreams, node: str) -> float:
        up, down = self._advance(node)
        self._pending_down[node] = down
        return up

    def downtime(self, rng: RandomStreams, node: str) -> float:
        return self._pending_down.pop(node, self.pairs[0][1])
