"""Volatility (churn) models.

The paper characterises Desktop Grid nodes as *volatile*: they leave without
notice (shutdown, suspend-to-disk, idle-time policies, network stalls) and may
come back minutes or days later, or never.  A churn model answers, for one
node, "how long does it stay up, and once down, how long before it returns?"
The fault generator (Fig. 7) and the grid builder consume these models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams

__all__ = ["ChurnModel", "NoChurn", "ExponentialChurn", "WeibullChurn", "TraceChurn"]


class ChurnModel(Protocol):
    """Protocol implemented by volatility models."""

    def uptime(self, rng: RandomStreams, node: str) -> float:
        """Draw the next continuous up-time duration for ``node`` (seconds)."""
        ...

    def downtime(self, rng: RandomStreams, node: str) -> float:
        """Draw the next down-time duration for ``node`` (seconds).

        ``float('inf')`` means a permanent departure.
        """
        ...


@dataclass
class NoChurn:
    """Nodes never fail on their own (faults only come from the fault script)."""

    def uptime(self, rng: RandomStreams, node: str) -> float:
        return float("inf")

    def downtime(self, rng: RandomStreams, node: str) -> float:
        return float("inf")


@dataclass
class ExponentialChurn:
    """Memoryless churn: exponential MTBF and MTTR, as assumed in Fig. 7.

    ``permanent_fraction`` of the failures never recover, modelling permanent
    departures ("volatility implies that crashes may be permanent").
    """

    mtbf: float = 600.0
    mttr: float = 30.0
    permanent_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ConfigurationError("mtbf and mttr must be positive")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ConfigurationError("permanent_fraction must be in [0, 1]")

    def uptime(self, rng: RandomStreams, node: str) -> float:
        return rng.exponential(f"churn.up.{node}", self.mtbf)

    def downtime(self, rng: RandomStreams, node: str) -> float:
        if self.permanent_fraction:
            if float(rng.stream(f"churn.perm.{node}").random()) < self.permanent_fraction:
                return float("inf")
        return rng.exponential(f"churn.down.{node}", self.mttr)


@dataclass
class WeibullChurn:
    """Weibull-distributed availability, the shape measured on real desktop grids.

    ``shape < 1`` gives the bursty, heavy-tailed availability periods reported
    by desktop-grid measurement studies (many short up-times, a few very long
    ones).
    """

    scale_up: float = 600.0
    shape_up: float = 0.7
    scale_down: float = 60.0
    shape_down: float = 0.8

    def __post_init__(self) -> None:
        if min(self.scale_up, self.shape_up, self.scale_down, self.shape_down) <= 0:
            raise ConfigurationError("Weibull parameters must be positive")

    def uptime(self, rng: RandomStreams, node: str) -> float:
        stream = rng.stream(f"churn.up.{node}")
        return float(self.scale_up * stream.weibull(self.shape_up))

    def downtime(self, rng: RandomStreams, node: str) -> float:
        stream = rng.stream(f"churn.down.{node}")
        return float(self.scale_down * stream.weibull(self.shape_down))


@dataclass
class TraceChurn:
    """Replay explicit (uptime, downtime) pairs from a trace.

    Useful for regression tests (fully deterministic) and for replaying
    availability traces harvested elsewhere.  ``per_node`` overrides the
    shared ``pairs`` for specific nodes; lookups try the full address first
    and then the bare node name (the part after ``:``), so a trace keyed
    ``s000`` applies to host ``server:s000``.

    ``mode`` decides what happens when a node exhausts its trace:

    * ``"wrap"`` — cycle the pairs again from the start (default);
    * ``"clamp"`` — the node departs permanently (infinite final downtime).
    """

    pairs: Sequence[tuple[float, float]] = field(default_factory=lambda: [(3600.0, 60.0)])
    per_node: dict[str, Sequence[tuple[float, float]]] | None = None
    mode: str = "wrap"
    #: one-shot (uptime, downtime) pair emitted before the cyclic pairs; used
    #: by :meth:`from_csv` for traces whose first up-interval starts after 0.
    leads: dict[str, tuple[float, float]] = field(default_factory=dict)
    _cursors: dict[str, Iterator[tuple[float, float]]] = field(default_factory=dict, repr=False)
    _pending_down: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in ("wrap", "clamp"):
            raise ConfigurationError(f"unknown trace mode {self.mode!r} (wrap or clamp)")
        if not self.pairs and not self.per_node:
            raise ConfigurationError("TraceChurn needs at least one (up, down) pair")
        tables = [("pairs", self.pairs)]
        if self.per_node:
            for node, node_pairs in self.per_node.items():
                if not node_pairs:
                    raise ConfigurationError(f"empty trace for node {node!r}")
                tables.append((node, node_pairs))
        for label, table in tables:
            for up, down in table:
                if up < 0 or down < 0:
                    raise ConfigurationError(
                        f"trace durations must be non-negative ({label})"
                    )

    @classmethod
    def from_csv(cls, path: str, mode: str = "wrap") -> "TraceChurn":
        """Load a trace file of absolute availability intervals.

        One CSV row per interval: ``node,up,down`` — node was up from second
        ``up`` to second ``down``.  ``#`` starts a comment; blank lines are
        skipped.  Intervals per node must be disjoint (touching boundaries
        are fine).  In ``wrap`` mode a node's final downtime equals its first
        interval's start, so the schedule cycles; in ``clamp`` mode the node
        never comes back after its last interval.
        """
        rows: dict[str, list[tuple[float, float]]] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, 1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = [part.strip() for part in line.split(",")]
                if len(parts) != 3:
                    raise ConfigurationError(
                        f"{path}:{lineno}: expected 'node,up,down', got {line!r}"
                    )
                node, up_text, down_text = parts
                try:
                    up, down = float(up_text), float(down_text)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"{path}:{lineno}: non-numeric interval bound"
                    ) from exc
                if up < 0 or down <= up:
                    raise ConfigurationError(
                        f"{path}:{lineno}: interval must satisfy 0 <= up < down"
                    )
                rows.setdefault(node, []).append((up, down))
        if not rows:
            raise ConfigurationError(f"trace file {path} contains no intervals")
        per_node: dict[str, Sequence[tuple[float, float]]] = {}
        leads: dict[str, tuple[float, float]] = {}
        for node, intervals in rows.items():
            intervals.sort()
            for (_, prev_down), (next_up, _) in zip(intervals, intervals[1:]):
                if next_up < prev_down:
                    raise ConfigurationError(
                        f"overlapping availability intervals for node {node!r} in {path}"
                    )
            first_up = intervals[0][0]
            pairs: list[tuple[float, float]] = []
            for index, (up, down) in enumerate(intervals):
                if index + 1 < len(intervals):
                    gap = intervals[index + 1][0] - down
                else:
                    gap = first_up if mode == "wrap" else float("inf")
                pairs.append((down - up, gap))
            if first_up > 0:
                leads[node] = (0.0, first_up)
            per_node[node] = pairs
        return cls(pairs=(), per_node=per_node, mode=mode, leads=leads)

    def _pairs_for(self, node: str) -> Sequence[tuple[float, float]] | None:
        """Pairs for ``node``; ``None`` when a trace does not cover it.

        An uncovered node under a per-node trace simply never churns — a
        harvested trace describes the nodes it observed, not the whole grid.
        """
        if self.per_node:
            for key in (node, node.split(":", 1)[-1]):
                if key in self.per_node:
                    return self.per_node[key]
        return self.pairs or None

    def _lead_for(self, node: str) -> tuple[float, float] | None:
        for key in (node, node.split(":", 1)[-1]):
            if key in self.leads:
                return self.leads[key]
        return None

    def _advance(self, node: str) -> tuple[float, float]:
        cursor = self._cursors.get(node)
        if cursor is None:
            table = self._pairs_for(node)
            pairs = tuple(table) if table is not None else ()
            lead = self._lead_for(node)

            def iterate() -> Iterator[tuple[float, float]]:
                if lead is not None:
                    yield lead
                if pairs and self.mode == "wrap":
                    while True:
                        yield from pairs
                yield from pairs
                while True:
                    yield (float("inf"), float("inf"))

            cursor = iterate()
            self._cursors[node] = cursor
        return next(cursor)

    def uptime(self, rng: RandomStreams, node: str) -> float:
        up, down = self._advance(node)
        self._pending_down[node] = down
        return up

    def downtime(self, rng: RandomStreams, node: str) -> float:
        if node in self._pending_down:
            return self._pending_down.pop(node)
        table = self._pairs_for(node)
        return table[0][1] if table else float("inf")
