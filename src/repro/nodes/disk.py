"""Local disk cost model.

The client-side message-logging comparison of Figure 4 is entirely a story
about disk behaviour: blocking pessimistic logging pays a synchronous write
before each communication (≈ +30 %), non-blocking pessimistic logging pays a
small, *variable* overhead attributed to "disc cache management", and
optimistic logging runs at low priority and costs almost nothing.  The model
therefore distinguishes synchronous writes, cache-assisted writes and
background writes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DiskModel"]


@dataclass
class DiskModel:
    """Per-operation timing model of a commodity IDE disk (2004 vintage)."""

    #: fixed cost of a synchronous write (seek + rotational latency), seconds.
    write_latency: float = 0.008
    #: sustained write bandwidth, bytes per second (~35 MB/s IDE).
    write_bandwidth_bps: float = 35e6
    #: fixed cost of a read, seconds.
    read_latency: float = 0.006
    #: sustained read bandwidth, bytes per second.
    read_bandwidth_bps: float = 40e6
    #: portion of a cache-assisted (non-blocking pessimistic) write that must
    #: still be paid synchronously before the communication may complete.
    cache_sync_fraction: float = 0.25
    #: relative jitter on cache-assisted writes ("disc cache management" makes
    #: the overhead small *and variable* in the paper).
    cache_jitter: float = 0.6
    #: fraction of a background (optimistic) write that steals foreground time
    #: (runs at low priority, hence "negligible overhead").
    background_foreground_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.write_bandwidth_bps <= 0 or self.read_bandwidth_bps <= 0:
            raise ConfigurationError("disk bandwidth must be positive")
        if not 0 <= self.cache_sync_fraction <= 1:
            raise ConfigurationError("cache_sync_fraction must be in [0, 1]")
        if not 0 <= self.background_foreground_fraction <= 1:
            raise ConfigurationError(
                "background_foreground_fraction must be in [0, 1]"
            )

    # -- raw costs -------------------------------------------------------------
    def sync_write_time(self, size_bytes: int) -> float:
        """Full cost of a synchronous (blocking) write of ``size_bytes``."""
        return self.write_latency + size_bytes / self.write_bandwidth_bps

    def read_time(self, size_bytes: int) -> float:
        """Cost of reading ``size_bytes`` back from disk."""
        return self.read_latency + size_bytes / self.read_bandwidth_bps

    def cached_write_sync_time(
        self, size_bytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """Synchronous part of a cache-assisted write (non-blocking pessimistic).

        The remainder of the write completes in the background; only this
        fraction delays the communication.  Jitter models cache flush
        interference.
        """
        base = self.sync_write_time(size_bytes) * self.cache_sync_fraction
        if rng is not None and self.cache_jitter:
            base *= float(rng.uniform(1.0 - self.cache_jitter, 1.0 + self.cache_jitter))
            base = max(base, 0.0)
        return base

    def background_write_foreground_time(self, size_bytes: int) -> float:
        """Foreground time stolen by a low-priority background write."""
        return self.sync_write_time(size_bytes) * self.background_foreground_fraction

    def background_write_completion_time(self, size_bytes: int) -> float:
        """Time until a background write is actually durable on the platter."""
        # Low-priority IO completes noticeably later than a dedicated write.
        return 2.0 * self.sync_write_time(size_bytes)
