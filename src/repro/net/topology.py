"""Sites and site maps.

The Internet testbed of the paper places machines at three sites (Orsay/LRI,
Lille, Wisconsin) plus the client; the confined cluster is a single site.  A
:class:`SiteMap` records which endpoint lives where and derives the composite
link model used by the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.net.latency import (
    CompositeLinkModel,
    InternetLinkModel,
    LanLinkModel,
    LinkModel,
)
from repro.types import Address

__all__ = ["Site", "SiteMap"]


@dataclass
class Site:
    """One administrative site of the testbed."""

    name: str
    #: human-readable location, purely documentary.
    location: str = ""
    #: additional one-way latency to reach this site from a remote site, in
    #: seconds (e.g. the transatlantic hop to Wisconsin).
    extra_wan_latency: float = 0.0


@dataclass
class SiteMap:
    """Assignment of endpoints to sites plus the derived link model."""

    sites: dict[str, Site] = field(default_factory=dict)
    membership: dict[Address, str] = field(default_factory=dict)
    intra_site_model: LinkModel = field(default_factory=LanLinkModel)
    inter_site_model: LinkModel = field(default_factory=InternetLinkModel)

    def add_site(self, site: Site) -> Site:
        """Register a site (idempotent by name)."""
        self.sites[site.name] = site
        return site

    def place(self, address: Address, site_name: str) -> None:
        """Place an endpoint at a site."""
        if site_name not in self.sites:
            raise ConfigurationError(f"unknown site {site_name!r}")
        self.membership[address] = site_name

    def site_of(self, address: Address) -> str:
        """Site of an endpoint (raises if never placed)."""
        try:
            return self.membership[address]
        except KeyError:
            raise ConfigurationError(f"{address} was never placed on a site") from None

    def same_site(self, a: Address, b: Address) -> bool:
        """True when both endpoints are placed at the same site."""
        return self.site_of(a) == self.site_of(b)

    def link_model(self) -> CompositeLinkModel:
        """Composite link model choosing intra- or inter-site costs per message."""
        return CompositeLinkModel(
            site_of=dict(self.membership),
            intra_site=self.intra_site_model,
            inter_site=self.inter_site_model,
        )

    def addresses_at(self, site_name: str) -> list[Address]:
        """All endpoints placed at ``site_name``."""
        return [a for a, s in self.membership.items() if s == site_name]

    @classmethod
    def single_site(cls, name: str = "cluster", model: LinkModel | None = None) -> "SiteMap":
        """A one-site map (the confined cluster): every link uses the LAN model."""
        site_map = cls(intra_site_model=model or LanLinkModel())
        site_map.add_site(Site(name=name, location="confined cluster"))
        # With a single site the inter-site model is never used, but keep it
        # identical to the intra-site one for safety.
        site_map.inter_site_model = site_map.intra_site_model
        return site_map
