"""Simulated best-effort network substrate.

This package models the two platforms of the paper's evaluation:

* the **confined cluster** — a single 100 Mbit/s switched LAN with small,
  stable latencies;
* the **Internet testbed** — sites in Orsay, Lille and Wisconsin connected by
  a best-effort WAN with widely fluctuating latency and bandwidth and a
  non-zero loss probability.

Interactions are *connection-less*: every send is an independent datagram-like
exchange (a connection opened, used and closed immediately), so a broken
connection can never serve as a fault detector — exactly the design constraint
that forces RPC-V to rely on heart-beats.
"""

from repro.net.latency import (
    CompositeLinkModel,
    InternetLinkModel,
    LanLinkModel,
    LinkModel,
    PerfectLinkModel,
)
from repro.net.message import Message, MessageType
from repro.net.partition import PartitionManager
from repro.net.topology import Site, SiteMap
from repro.net.transport import Endpoint, Network

__all__ = [
    "CompositeLinkModel",
    "Endpoint",
    "InternetLinkModel",
    "LanLinkModel",
    "LinkModel",
    "Message",
    "MessageType",
    "Network",
    "PartitionManager",
    "PerfectLinkModel",
    "Site",
    "SiteMap",
]
