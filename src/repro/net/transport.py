"""Connection-less message transport over the simulation kernel.

The :class:`Network` is the only way components exchange data.  Its semantics
reflect the paper's platform assumptions:

* **best effort** — messages can be lost (link model) or blocked (partitions);
* **asynchronous** — per-message delays are unbounded in distribution tail;
* **connection-less** — a send is fire-and-forget; the sender learns nothing
  from the transport itself (no broken-connection fault detection);
* **volatile endpoints** — a message arriving at a crashed endpoint is lost;
  a crashed endpoint's mailbox is emptied (its volatile state is gone).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.net.latency import LinkModel, PerfectLinkModel
from repro.net.message import Message
from repro.net.partition import PartitionManager
from repro.sim.core import Environment
from repro.sim.monitor import Monitor
from repro.sim.rng import RandomStreams
from repro.sim.store import Store
from repro.types import Address

__all__ = ["Endpoint", "Network"]


class Endpoint:
    """A component's attachment point to the network (its mailbox)."""

    def __init__(self, env: Environment, address: Address) -> None:
        self.env = env
        self.address = address
        self.mailbox: Store = Store(env)
        self.up = True
        #: bumped on every mark_up(): a message stamped with an older
        #: incarnation at send time is dropped at delivery time, so traffic
        #: addressed to a dead incarnation cannot leak into the next one.
        self.incarnation = 0
        #: number of messages delivered to this endpoint since creation.
        self.delivered = 0
        #: number of messages dropped because the endpoint was down.
        self.dropped_down = 0
        #: number of messages dropped because they crossed a restart.
        self.dropped_stale = 0

    def recv(self):
        """Event triggering with the next delivered :class:`Message`."""
        return self.mailbox.get()

    def recv_many(self):
        """Event triggering with the same-tick *batch* of delivered messages.

        The value is a non-empty list in delivery (FIFO) order.  Same-tick
        deliveries are coalesced: however many messages land at one tick,
        the receiver is resumed once, with all of them — the batched-wakeup
        path for server/coordinator drain loops.  Messages already queued
        trigger immediately (with the whole backlog).
        """
        return self.mailbox.get_all()

    def try_recv(self) -> Message | None:
        """Non-blocking receive."""
        return self.mailbox.try_get()

    def mark_down(self) -> int:
        """Crash semantics: drop queued messages and refuse new deliveries.

        Pooled protocol-internal envelopes among the dropped messages go
        back to their free list — a crashed mailbox is a guaranteed
        nobody-retains-it drop point.
        """
        self.up = False
        for message in self.mailbox.items:
            release = getattr(message, "release", None)
            if release is not None:
                release()
        return self.mailbox.clear()

    def mark_up(self) -> None:
        """Restart semantics: accept deliveries again (mailbox starts empty).

        The restarted endpoint is a *new incarnation*: anything still in
        flight from before (sent while it was down, or to its previous life)
        is dropped on arrival rather than delivered to the fresh mailbox.
        Idempotent — re-asserting "up" on a live endpoint must not invalidate
        its in-flight traffic.
        """
        if self.up:
            return
        self.up = True
        self.incarnation += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Endpoint {self.address} {state} queued={len(self.mailbox)}>"


class Network:
    """The shared transport connecting every component of a scenario."""

    def __init__(
        self,
        env: Environment,
        link_model: LinkModel | None = None,
        rng: RandomStreams | None = None,
        monitor: Monitor | None = None,
        partitions: PartitionManager | None = None,
    ) -> None:
        self.env = env
        self._link_model: LinkModel = link_model or PerfectLinkModel()
        self._rng = rng or RandomStreams(0)
        self._monitor = monitor or Monitor()
        self.partitions = partitions or PartitionManager()
        self._endpoints: dict[Address, Endpoint] = {}
        #: optional hooks called on every successful delivery (testing aid).
        self._delivery_hooks: list[Callable[[Message], None]] = []
        #: per-(source, dest) cache of (transfer_time, loss_probability):
        #: the link-model resolution (e.g. the composite's site lookups) is
        #: paid once per pair, not once per message.
        self._routes: dict[tuple[Address, Address], tuple] = {}
        self._routes_hooked = False
        # Hot-path handles, resolved once per network instead of once per
        # message; the rng/monitor setters re-resolve them so reassignment
        # cannot desync the handles from the by-name paths.
        self._rebind_rng_handles()
        self._rebind_counter_handles()

    def _rebind_rng_handles(self) -> None:
        self._loss_random = self._rng.bound("net.loss", "random")
        self._delay_stream = self._rng.stream("net.delay")

    def _rebind_counter_handles(self) -> None:
        monitor = self._monitor
        self._c_sent = monitor.counter("net.sent")
        self._c_bytes_sent = monitor.counter("net.bytes_sent")
        self._c_delivered = monitor.counter("net.delivered")
        self._c_bytes_delivered = monitor.counter("net.bytes_delivered")

    @property
    def rng(self) -> RandomStreams:
        """The network's random streams; reassigning re-binds the handles."""
        return self._rng

    @rng.setter
    def rng(self, rng: RandomStreams) -> None:
        self._rng = rng
        self._rebind_rng_handles()

    @property
    def monitor(self) -> Monitor:
        """The network's monitor; reassigning re-binds the counter handles."""
        return self._monitor

    @monitor.setter
    def monitor(self, monitor: Monitor) -> None:
        self._monitor = monitor
        self._rebind_counter_handles()

    @property
    def link_model(self) -> LinkModel:
        """The link cost model; assigning a new one flushes the route cache."""
        return self._link_model

    @link_model.setter
    def link_model(self, model: LinkModel) -> None:
        self._link_model = model
        self.flush_routes()

    def flush_routes(self) -> None:
        """Drop the per-pair route cache (after link-model reconfiguration)."""
        self._routes.clear()
        self._routes_hooked = False

    # -- endpoint management ---------------------------------------------------
    def register(self, address: Address) -> Endpoint:
        """Create and register the endpoint for ``address``."""
        if address in self._endpoints:
            raise ConfigurationError(f"{address} already registered")
        endpoint = Endpoint(self.env, address)
        self._endpoints[address] = endpoint
        return endpoint

    def endpoint(self, address: Address) -> Endpoint:
        """Look up a registered endpoint."""
        try:
            return self._endpoints[address]
        except KeyError:
            raise ConfigurationError(f"{address} is not registered") from None

    def addresses(self) -> list[Address]:
        """All registered addresses."""
        return list(self._endpoints)

    def is_registered(self, address: Address) -> bool:
        """Whether ``address`` has an endpoint."""
        return address in self._endpoints

    def set_endpoint_up(self, address: Address, up: bool) -> None:
        """Mark an endpoint up/down (called by the node substrate)."""
        endpoint = self.endpoint(address)
        if up:
            endpoint.mark_up()
        else:
            endpoint.mark_down()

    def add_delivery_hook(self, hook: Callable[[Message], None]) -> None:
        """Register a callable invoked with every delivered message."""
        self._delivery_hooks.append(hook)

    # -- sending -----------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Fire-and-forget send of ``message``.

        The message is lost when: the link model rolls a loss, the partition
        manager blocks the pair (checked both at send and at delivery time),
        the destination endpoint is down at delivery time, or the endpoint
        restarted in between (incarnation mismatch).

        Event-allocation-free per message: the delivery is a bare ``call_at``
        callback entry carrying an (message, incarnation) pair — no
        per-message Timeout/Event/closure — the loss roll and delay draw use
        the pre-bound stream handles, the link model is resolved through the
        per-pair route cache, and the counters are pre-resolved handles.
        """
        env = self.env
        message.sent_at = env.now
        self._c_sent.value += 1.0
        wire = message.wire_bytes
        self._c_bytes_sent.value += wire

        dest_endpoint = self._endpoints.get(message.dest)
        if dest_endpoint is None:
            self.monitor.incr("net.dropped.unknown_dest")
            message.release()
            return
        if not self.partitions.allows(message.source, message.dest):
            self.monitor.incr("net.dropped.partition")
            message.release()
            return

        # Determinism: consume exactly one draw from the dedicated loss
        # stream for every send, whether or not the pair is lossy, so that
        # reconfiguring the link model never reshuffles the stream for the
        # sends that follow (sweeps compare like with like).
        loss_roll = self._loss_random()
        route = self._routes.get((message.source, message.dest))
        if route is None:
            route = self._resolve_route(message.source, message.dest)
        loss_probability = route[1]
        if loss_probability > 0.0 and loss_roll < loss_probability:
            self.monitor.incr("net.dropped.loss")
            message.release()
            return

        delay = route[0](message.source, message.dest, wire, self._delay_stream)
        # Capture the destination's incarnation at send time (per delivery,
        # not on the message — a caller may legally re-send the same Message
        # object): a restart while in flight invalidates the delivery.
        env.call_at(
            env.now + delay if delay > 0.0 else env.now,
            self._deliver,
            (message, dest_endpoint.incarnation),
        )

    def _resolve_route(self, source: Address, dest: Address) -> tuple:
        """Resolve and cache the (transfer_time, loss_probability) for a pair.

        Composite models resolve to the concrete per-pair leaf model once, so
        the per-message path skips the site lookups entirely.  The first
        resolution subscribes the cache to the model's topology-change hook
        (when it offers one) so site reassignment invalidates stale routes.
        """
        model = self._link_model
        resolve = getattr(model, "resolve_link", None)
        leaf = model if resolve is None else resolve(source, dest)
        route = (leaf.transfer_time, float(leaf.loss_probability(source, dest)))
        self._routes[(source, dest)] = route
        if not self._routes_hooked:
            subscribe = getattr(model, "on_topology_change", None)
            if subscribe is not None:
                subscribe(self._routes.clear)
            self._routes_hooked = True
        return route

    def _deliver(self, in_flight: "tuple[Message, int | None]") -> None:
        message, send_incarnation = in_flight
        endpoint = self._endpoints.get(message.dest)
        if endpoint is None:  # pragma: no cover - endpoint removed mid-flight
            self.monitor.incr("net.dropped.unknown_dest")
            message.release()
            return
        if not self.partitions.allows(message.source, message.dest):
            self.monitor.incr("net.dropped.partition")
            message.release()
            return
        if not endpoint.up:
            endpoint.dropped_down += 1
            self.monitor.incr("net.dropped.endpoint_down")
            message.release()
            return
        if send_incarnation is not None and endpoint.incarnation != send_incarnation:
            # Sent to a previous life of this endpoint (it was down, or it
            # restarted, in between): the volatile destination that message
            # was addressed to no longer exists.
            endpoint.dropped_stale += 1
            self.monitor.incr("net.dropped.stale_incarnation")
            message.release()
            return
        endpoint.delivered += 1
        self._c_delivered.value += 1.0
        self._c_bytes_delivered.value += message.wire_bytes
        # put_nowait: the transport never observes the put outcome, so the
        # per-delivery Event allocation of Store.put would be pure waste.
        endpoint.mailbox.put_nowait(message)
        for hook in self._delivery_hooks:
            hook(message)

    # -- convenience -------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Snapshot of the transport counters."""
        keys = [
            "net.sent",
            "net.delivered",
            "net.bytes_sent",
            "net.bytes_delivered",
            "net.dropped.loss",
            "net.dropped.partition",
            "net.dropped.endpoint_down",
            "net.dropped.stale_incarnation",
            "net.dropped.unknown_dest",
        ]
        return {key: self.monitor.count(key) for key in keys}
