"""Protocol message envelope.

Every exchange between components is a :class:`Message`: a typed, sized
envelope whose payload is a plain dictionary of identifiers and
:class:`~repro.types.SizedPayload` values.  The *size* is what the network,
disk and database cost models act upon; the content is what the protocol state
machines act upon.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.types import Address

__all__ = ["MessageType", "Message"]

_MESSAGE_SEQ = itertools.count(1)

#: Fixed per-message envelope overhead in bytes (headers, identifiers, the
#: ~300-byte task descriptions of Fig. 5 are dominated by this kind of data).
ENVELOPE_OVERHEAD_BYTES = 256


class MessageType(enum.Enum):
    """Every message type exchanged by the RPC-V protocol."""

    # client -> coordinator
    RPC_SUBMIT = "rpc-submit"
    RESULT_PULL = "result-pull"
    CLIENT_SYNC = "client-sync"
    CLIENT_HEARTBEAT = "client-heartbeat"

    # coordinator -> client
    SUBMIT_ACK = "submit-ack"
    RESULT_REPLY = "result-reply"
    COORD_SYNC_REPLY = "coord-sync-reply"

    # server -> coordinator
    WORK_REQUEST = "work-request"
    TASK_RESULT = "task-result"
    SERVER_HEARTBEAT = "server-heartbeat"
    SERVER_SYNC = "server-sync"

    # coordinator -> server
    TASK_ASSIGN = "task-assign"
    TASK_RESULT_ACK = "task-result-ack"
    NO_WORK = "no-work"

    # coordinator <-> coordinator
    REPLICA_STATE = "replica-state"
    REPLICA_ACK = "replica-ack"
    REPLICA_PULL = "replica-pull"
    COORD_HEARTBEAT = "coord-heartbeat"
    ARCHIVE_FETCH = "archive-fetch"
    ARCHIVE_REPLY = "archive-reply"

    # generic
    PING = "ping"
    PONG = "pong"


@dataclass
class Message:
    """One connection-less protocol message."""

    mtype: MessageType
    source: Address
    dest: Address
    payload: dict[str, Any] = field(default_factory=dict)
    #: application bytes carried (arguments, results, archives, state deltas).
    size_bytes: int = 0
    #: unique, monotonically increasing message identifier (debugging, logs).
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_SEQ))
    #: virtual time at which the message was handed to the network.
    sent_at: float | None = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size must be non-negative")

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire (payload plus envelope overhead)."""
        return self.size_bytes + ENVELOPE_OVERHEAD_BYTES

    def reply(
        self,
        mtype: MessageType,
        payload: dict[str, Any] | None = None,
        size_bytes: int = 0,
    ) -> "Message":
        """Build a reply addressed back to this message's source."""
        return Message(
            mtype=mtype,
            source=self.dest,
            dest=self.source,
            payload=payload or {},
            size_bytes=size_bytes,
        )

    def describe(self) -> str:
        """Compact one-line description used in traces."""
        return (
            f"{self.mtype.value} {self.source}->{self.dest} "
            f"({self.size_bytes} B, id={self.msg_id})"
        )
