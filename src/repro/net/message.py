"""Protocol message envelope (and the envelope free-list).

Every exchange between components is a :class:`Message`: a typed, sized
envelope whose payload is a plain dictionary of identifiers and
:class:`~repro.types.SizedPayload` values.  The *size* is what the network,
disk and database cost models act upon; the content is what the protocol state
machines act upon.

High-rate protocol-internal traffic (heartbeats, pings) can recycle its
envelopes through a :class:`MessagePool` instead of allocating a fresh slotted
dataclass per send.  Pooling is **opt-in per message**: only envelopes
acquired from a pool ever return to it, and only code that provably does not
retain the message past its handling may release it (see the pooling contract
in the README).  User-constructed messages are never pooled — ``release()``
on them is a no-op — so correctness never depends on callers knowing about
the pool.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.types import Address

__all__ = ["MessageType", "Message", "MessagePool", "default_pool", "reset_message_seq"]

_MESSAGE_SEQ = itertools.count(1)


def reset_message_seq() -> None:
    """Restart msg_id numbering from 1 (long-realtime-run hygiene).

    Pairs with :meth:`repro.sim.core.Environment.reset_counters`: both
    counters grow without bound across back-to-back runs in one process.
    Only call between runs — ids are only guaranteed unique within a run.
    """
    global _MESSAGE_SEQ
    _MESSAGE_SEQ = itertools.count(1)

#: Fixed per-message envelope overhead in bytes (headers, identifiers, the
#: ~300-byte task descriptions of Fig. 5 are dominated by this kind of data).
ENVELOPE_OVERHEAD_BYTES = 256


class MessageType(enum.Enum):
    """Every message type exchanged by the RPC-V protocol."""

    # client -> coordinator
    RPC_SUBMIT = "rpc-submit"
    RESULT_PULL = "result-pull"
    CLIENT_SYNC = "client-sync"
    CLIENT_HEARTBEAT = "client-heartbeat"

    # coordinator -> client
    SUBMIT_ACK = "submit-ack"
    RESULT_REPLY = "result-reply"
    COORD_SYNC_REPLY = "coord-sync-reply"

    # server -> coordinator
    WORK_REQUEST = "work-request"
    TASK_RESULT = "task-result"
    SERVER_HEARTBEAT = "server-heartbeat"
    SERVER_SYNC = "server-sync"

    # coordinator -> server
    TASK_ASSIGN = "task-assign"
    TASK_RESULT_ACK = "task-result-ack"
    NO_WORK = "no-work"

    # coordinator <-> coordinator
    REPLICA_STATE = "replica-state"
    REPLICA_ACK = "replica-ack"
    REPLICA_PULL = "replica-pull"
    COORD_HEARTBEAT = "coord-heartbeat"
    ARCHIVE_FETCH = "archive-fetch"
    ARCHIVE_REPLY = "archive-reply"

    # crowd tier <-> coordinator (aggregated envelopes; see repro.crowd)
    CROWD_SUBMIT_BATCH = "crowd-submit-batch"
    CROWD_SUBMIT_ACK = "crowd-submit-ack"
    CROWD_RESULT_BATCH = "crowd-result-batch"
    CROWD_HEARTBEAT = "crowd-heartbeat"

    # generic
    PING = "ping"
    PONG = "pong"


@dataclass(slots=True)
class Message:
    """One connection-less protocol message."""

    mtype: MessageType
    source: Address
    dest: Address
    payload: dict[str, Any] = field(default_factory=dict)
    #: application bytes carried (arguments, results, archives, state deltas).
    size_bytes: int = 0
    #: unique, monotonically increasing message identifier (debugging, logs).
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_SEQ))
    #: virtual time at which the message was handed to the network.
    sent_at: float | None = None
    #: owning pool for recycled envelopes; None (the default) marks an
    #: ordinary user-held message that is never pooled.
    _pool: "MessagePool | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size must be non-negative")

    def release(self) -> bool:
        """Return a pooled envelope to its pool; no-op for ordinary messages.

        Only the owner of the handling context may call this (transport drop
        paths, receivers of protocol-internal traffic that do not retain the
        message).  Returns True when the envelope actually went back.
        """
        pool = self._pool
        if pool is None:
            return False
        return pool.release(self)

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire (payload plus envelope overhead)."""
        return self.size_bytes + ENVELOPE_OVERHEAD_BYTES

    def reply(
        self,
        mtype: MessageType,
        payload: dict[str, Any] | None = None,
        size_bytes: int = 0,
    ) -> "Message":
        """Build a reply addressed back to this message's source."""
        return Message(
            mtype=mtype,
            source=self.dest,
            dest=self.source,
            payload=payload or {},
            size_bytes=size_bytes,
        )

    def describe(self) -> str:
        """Compact one-line description used in traces."""
        return (
            f"{self.mtype.value} {self.source}->{self.dest} "
            f"({self.size_bytes} B, id={self.msg_id})"
        )


class MessagePool:
    """A size-bucketed free list of :class:`Message` envelopes.

    Buckets are keyed by *payload shape* — the tuple of payload keys — so an
    acquire for a given protocol message kind (heartbeats all carry the same
    fields) almost always finds an envelope whose last life had the same
    shape.  Re-acquired envelopes get a **fresh** ``msg_id`` from the global
    sequence: id monotonicity (and uniqueness within a run) survives pooling.

    The contract (see the README's pooling section): only pool-acquired
    envelopes return to the pool; only the handling context that provably
    does not retain the message may :meth:`release` it; after release the
    envelope contents must not be read — the next acquire rewrites them.
    """

    __slots__ = ("max_per_bucket", "hits", "misses", "releases", "dropped", "_buckets")

    def __init__(self, max_per_bucket: int = 1024) -> None:
        self.max_per_bucket = max_per_bucket
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.dropped = 0
        self._buckets: dict[tuple, list[Message]] = {}

    def acquire(
        self,
        mtype: MessageType,
        source: Address,
        dest: Address,
        payload: dict[str, Any] | None = None,
        size_bytes: int = 0,
    ) -> Message:
        """Build (or recycle) an envelope; fields are fully rewritten."""
        if payload is None:
            payload = {}
        bucket = self._buckets.get(tuple(payload))
        if bucket:
            self.hits += 1
            message = bucket.pop()
            message.mtype = mtype
            message.source = source
            message.dest = dest
            message.payload = payload
            message.size_bytes = size_bytes
            message.msg_id = next(_MESSAGE_SEQ)
            message.sent_at = None
            return message
        self.misses += 1
        return Message(
            mtype=mtype,
            source=source,
            dest=dest,
            payload=payload,
            size_bytes=size_bytes,
            _pool=self,
        )

    def release(self, message: Message) -> bool:
        """Return ``message`` to its shape bucket (full buckets drop it)."""
        if message._pool is not self:
            return False
        bucket = self._buckets.setdefault(tuple(message.payload), [])
        if len(bucket) >= self.max_per_bucket:
            self.dropped += 1
            return False
        self.releases += 1
        bucket.append(message)
        return True

    def stats(self) -> dict[str, float]:
        """Hit-rate and churn counters (benchmarks / diagnostics)."""
        acquires = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "releases": self.releases,
            "dropped": self.dropped,
            "pooled": sum(len(b) for b in self._buckets.values()),
            "hit_rate": self.hits / acquires if acquires else 0.0,
        }


_DEFAULT_POOL: MessagePool | None = None


def default_pool() -> MessagePool:
    """The process-wide pool used by protocol-internal traffic."""
    global _DEFAULT_POOL
    if _DEFAULT_POOL is None:
        _DEFAULT_POOL = MessagePool()
    return _DEFAULT_POOL
