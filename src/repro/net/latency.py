"""Link cost models: latency, bandwidth, jitter and loss.

A :class:`LinkModel` answers one question — *how long does it take to move N
bytes from A to B, and does the message get lost?* — so that the confined
cluster and the Internet testbed of the paper are just two parameter sets:

* :class:`LanLinkModel` — the 100 Mbit/s switched Ethernet of the confined
  cluster (16 servers + 4 coordinators + 1 client on a single 48-port switch);
* :class:`InternetLinkModel` — the best-effort WAN between Orsay, Lille and
  Wisconsin, with fluctuating latency/bandwidth and a small loss probability;
* :class:`CompositeLinkModel` — picks LAN or WAN per message depending on
  whether the two endpoints are in the same site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Address

__all__ = [
    "LinkModel",
    "PerfectLinkModel",
    "LanLinkModel",
    "InternetLinkModel",
    "CompositeLinkModel",
]


class LinkModel(Protocol):
    """Protocol implemented by every link cost model.

    Caching contract: the transport resolves each (source, dest) pair once —
    through ``resolve_link(source, dest)`` when the model defines it (see
    :class:`CompositeLinkModel`), identity otherwise — and caches the
    resulting ``transfer_time`` / ``loss_probability``.  Models are therefore
    treated as static per pair; a model whose per-pair answers can change
    mid-run must expose ``on_topology_change(hook)`` and invoke the hooks on
    every change (or the owner must call ``Network.flush_routes()`` /
    reassign ``Network.link_model``, which also flushes).
    """

    def transfer_time(
        self, source: Address, dest: Address, size_bytes: int, rng: np.random.Generator
    ) -> float:
        """Seconds needed to deliver ``size_bytes`` from ``source`` to ``dest``."""
        ...

    def loss_probability(self, source: Address, dest: Address) -> float:
        """Probability that the message is silently lost."""
        ...


@dataclass
class PerfectLinkModel:
    """Zero-latency, infinite-bandwidth, lossless link (unit tests)."""

    latency: float = 0.0

    def transfer_time(
        self, source: Address, dest: Address, size_bytes: int, rng: np.random.Generator
    ) -> float:
        return self.latency

    def loss_probability(self, source: Address, dest: Address) -> float:
        return 0.0


@dataclass
class LanLinkModel:
    """Switched-Ethernet model for the confined cluster.

    Defaults correspond to the paper's platform: 100 Mbit/s links, sub-
    millisecond base latency, negligible loss.
    """

    #: one-way base latency in seconds.
    latency: float = 0.0005
    #: usable bandwidth in bytes per second (100 Mbit/s ~ 11.5 MB/s usable).
    bandwidth_bps: float = 11.5e6
    #: relative jitter applied to the transfer time (uniform +/- jitter).
    jitter: float = 0.05
    #: loss probability (a switched LAN essentially never drops).
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not 0 <= self.loss < 1:
            raise ConfigurationError("loss must be in [0, 1)")

    def transfer_time(
        self, source: Address, dest: Address, size_bytes: int, rng: np.random.Generator
    ) -> float:
        base = self.latency + size_bytes / self.bandwidth_bps
        if self.jitter:
            base *= float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))
        return max(base, 0.0)

    def loss_probability(self, source: Address, dest: Address) -> float:
        return self.loss


@dataclass
class InternetLinkModel:
    """Best-effort WAN model for the Internet testbed.

    Latency is drawn per message around ``latency`` with a heavy right tail
    (log-normal), reproducing the "wide performance fluctuations" that make
    wrong suspicions unavoidable; bandwidth is far below the LAN's.
    """

    #: median one-way latency in seconds (Orsay<->Lille ~ 15 ms; add more for
    #: transatlantic links via the site map's distance factor).
    latency: float = 0.015
    #: usable bandwidth in bytes per second (the paper observes Internet
    #: transfers an order of magnitude slower than the confined cluster).
    bandwidth_bps: float = 1.0e6
    #: sigma of the log-normal latency multiplier (tail heaviness).
    latency_sigma: float = 0.45
    #: relative bandwidth fluctuation (uniform +/-).
    bandwidth_fluctuation: float = 0.35
    #: probability that a message is silently lost.
    loss: float = 0.002
    #: probability of a long stall (congestion episode) and its mean duration.
    stall_probability: float = 0.005
    stall_mean: float = 3.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not 0 <= self.loss < 1:
            raise ConfigurationError("loss must be in [0, 1)")
        if not 0 <= self.stall_probability < 1:
            raise ConfigurationError("stall_probability must be in [0, 1)")

    def transfer_time(
        self, source: Address, dest: Address, size_bytes: int, rng: np.random.Generator
    ) -> float:
        latency = self.latency * float(rng.lognormal(0.0, self.latency_sigma))
        bandwidth = self.bandwidth_bps * float(
            rng.uniform(1.0 - self.bandwidth_fluctuation, 1.0 + self.bandwidth_fluctuation)
        )
        duration = latency + size_bytes / max(bandwidth, 1.0)
        if self.stall_probability and float(rng.random()) < self.stall_probability:
            duration += float(rng.exponential(self.stall_mean))
        return duration

    def loss_probability(self, source: Address, dest: Address) -> float:
        return self.loss


class CompositeLinkModel:
    """Chooses between an intra-site and an inter-site model per message.

    Consumers that cache per-pair routes (the transport does) can resolve the
    concrete leaf model once via :meth:`resolve_link` and subscribe to
    :meth:`on_topology_change` so a later :meth:`assign` invalidates their
    cache.
    """

    def __init__(
        self,
        site_of: "dict[Address, str]",
        intra_site: LinkModel,
        inter_site: LinkModel,
        default_site: str = "default",
    ) -> None:
        self._site_of = dict(site_of)
        self._intra = intra_site
        self._inter = inter_site
        self._default_site = default_site
        self._topology_hooks: list = []

    def assign(self, address: Address, site: str) -> None:
        """Register (or update) the site of an endpoint."""
        self._site_of[address] = site
        for hook in self._topology_hooks:
            hook()

    def on_topology_change(self, hook) -> None:
        """Register a callable invoked whenever a site assignment changes."""
        if hook not in self._topology_hooks:
            self._topology_hooks.append(hook)

    def resolve_link(self, source: Address, dest: Address) -> LinkModel:
        """The concrete leaf model governing the ``source`` → ``dest`` pair."""
        return self._intra if self._same_site(source, dest) else self._inter

    def site_of(self, address: Address) -> str:
        """Site an endpoint belongs to (``default_site`` when unknown)."""
        return self._site_of.get(address, self._default_site)

    def _same_site(self, source: Address, dest: Address) -> bool:
        return self.site_of(source) == self.site_of(dest)

    def transfer_time(
        self, source: Address, dest: Address, size_bytes: int, rng: np.random.Generator
    ) -> float:
        model = self._intra if self._same_site(source, dest) else self._inter
        return model.transfer_time(source, dest, size_bytes, rng)

    def loss_probability(self, source: Address, dest: Address) -> float:
        model = self._intra if self._same_site(source, dest) else self._inter
        return model.loss_probability(source, dest)
