"""Network partitions and forced, inconsistent component views.

Figure 11 of the paper is produced by *hiding* the Lille coordinator from the
servers and forcing the client to only talk to Lille, while the two
coordinators still see each other.  That is not a clean graph cut — it is an
asymmetric visibility restriction — so the partition manager supports both:

* symmetric partitions between groups of addresses (classic split-brain), and
* one-way "hide B from A" rules (inconsistent views).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.types import Address

__all__ = ["PartitionManager"]


class PartitionManager:
    """Decides whether a message from ``source`` can reach ``dest``."""

    def __init__(self) -> None:
        #: pairs (a, b) such that messages a -> b are blocked.
        self._blocked: set[tuple[Address, Address]] = set()
        #: named symmetric partitions: name -> (group_a, group_b)
        self._partitions: dict[str, tuple[frozenset[Address], frozenset[Address]]] = {}

    # -- one-way visibility rules -------------------------------------------
    def hide(self, dest: Address, from_source: Address) -> None:
        """Block messages ``from_source`` -> ``dest`` (one-way)."""
        self._blocked.add((from_source, dest))

    def unhide(self, dest: Address, from_source: Address) -> None:
        """Remove a one-way block if present."""
        self._blocked.discard((from_source, dest))

    def hide_bidirectional(self, a: Address, b: Address) -> None:
        """Block messages in both directions between ``a`` and ``b``."""
        self.hide(a, from_source=b)
        self.hide(b, from_source=a)

    def unhide_bidirectional(self, a: Address, b: Address) -> None:
        """Remove a bidirectional block if present."""
        self.unhide(a, from_source=b)
        self.unhide(b, from_source=a)

    # -- symmetric group partitions -------------------------------------------
    def partition(
        self, name: str, group_a: Iterable[Address], group_b: Iterable[Address]
    ) -> None:
        """Install a named symmetric partition between two groups."""
        self._partitions[name] = (frozenset(group_a), frozenset(group_b))

    def heal(self, name: str) -> None:
        """Remove a named partition (no-op if absent)."""
        self._partitions.pop(name, None)

    def heal_all(self) -> None:
        """Remove every partition and every one-way rule."""
        self._partitions.clear()
        self._blocked.clear()

    # -- queries ------------------------------------------------------------
    def allows(self, source: Address, dest: Address) -> bool:
        """True if a message from ``source`` to ``dest`` may be delivered."""
        if (source, dest) in self._blocked:
            return False
        for group_a, group_b in self._partitions.values():
            if (source in group_a and dest in group_b) or (
                source in group_b and dest in group_a
            ):
                return False
        return True

    def blocked_pairs(self) -> set[tuple[Address, Address]]:
        """All currently blocked one-way pairs (excluding group partitions)."""
        return set(self._blocked)

    def reachability_graph(self, addresses: Iterable[Address]) -> "nx.DiGraph":
        """Directed graph of who can currently send to whom.

        Used by tests and by the progress-condition checker: the paper's
        guarantee is that the application progresses as long as there is a
        path client -> coordinator -> ... -> server in this graph (restricted
        to live nodes).
        """
        graph = nx.DiGraph()
        nodes = list(addresses)
        graph.add_nodes_from(nodes)
        for source in nodes:
            for dest in nodes:
                if source is dest:
                    continue
                if self.allows(source, dest):
                    graph.add_edge(source, dest)
        return graph
