"""String-keyed component plugin registry.

Scenario specs name extra components declaratively — ``{"name":
"inject.churn", "params": {...}}`` — and this registry turns the name into a
component instance.  Two resolution paths:

* **registered names** — a factory (usually a component class) registered
  with the :func:`component` decorator::

      @component("detect.heartbeat")
      class HeartbeatBeacon(BaseComponent): ...

  Built-in names live in :mod:`repro.platform.library` and are imported
  lazily by the lookup helpers, mirroring the scenario registry.

* **dotted-path fallback** — any name containing a dot that is not
  registered is treated as an import path, ``pkg.module:Attr`` or
  ``pkg.module.Attr``, so one-off components ship with an experiment
  without touching this package.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError
from repro.platform.component import Component, missing_component_attrs

__all__ = [
    "component",
    "component_names",
    "create_component",
    "register_component",
    "resolve_component",
]

#: name -> factory returning a Component when called with the entry's params.
_REGISTRY: dict[str, Callable[..., Component]] = {}

#: modules whose import registers the built-in components.
_BUILTIN_MODULES: tuple[str, ...] = (
    "repro.platform.library",
    "repro.policies.scheduling",
    "repro.policies.replication",
    "repro.policies.logging",
    "repro.crowd.component",
)
_loaded = False


def _load_builtins() -> None:
    global _loaded
    if _loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _loaded = True


def register_component(
    name: str, factory: Callable[..., Component], replace: bool = False
) -> Callable[..., Component]:
    """Register ``factory`` under ``name``; duplicates are configuration errors."""
    if not name:
        raise ConfigurationError("component name must be non-empty")
    if not replace and name in _REGISTRY and _REGISTRY[name] is not factory:
        raise ConfigurationError(f"component {name!r} is already registered")
    _REGISTRY[name] = factory
    return factory


def component(
    name: str, replace: bool = False
) -> Callable[[Callable[..., Component]], Callable[..., Component]]:
    """Decorator registering a component class (or factory) under ``name``."""

    def decorator(factory: Callable[..., Component]) -> Callable[..., Component]:
        return register_component(name, factory, replace=replace)

    return decorator


def resolve_component(name: str) -> Callable[..., Component]:
    """Name -> factory: the registry first, then the dotted-path fallback."""
    _load_builtins()
    factory = _REGISTRY.get(name)
    if factory is not None:
        return factory
    if "." in name or ":" in name:
        imported = _import_path(name)
        if imported is not None:
            return imported
    known = ", ".join(sorted(_REGISTRY)) or "<none>"
    raise ConfigurationError(
        f"unknown component {name!r} (registered: {known}; dotted import "
        "paths like 'pkg.module:Class' also work)"
    )


def _import_path(path: str) -> Callable[..., Component] | None:
    """Import ``pkg.module:Attr`` or ``pkg.module.Attr``; None when absent."""
    if ":" in path:
        module_name, _, attr = path.partition(":")
        candidates = [(module_name, attr)]
    else:
        parts = path.split(".")
        # Try the longest module prefix first: 'a.b.C' -> ('a.b', 'C'),
        # then ('a', 'b.C') — attribute chains are resolved below.
        candidates = [
            (".".join(parts[:split]), ".".join(parts[split:]))
            for split in range(len(parts) - 1, 0, -1)
        ]
    for module_name, attr_path in candidates:
        try:
            module = importlib.import_module(module_name)
        except ModuleNotFoundError as error:
            # Only swallow "this candidate module does not exist"; a missing
            # dependency *inside* an existing module must surface with its
            # real traceback, not as "unknown component".
            missing = error.name or ""
            if module_name == missing or module_name.startswith(missing + "."):
                continue
            raise
        target: Any = module
        try:
            for attr in attr_path.split("."):
                target = getattr(target, attr)
        except AttributeError:
            continue
        if callable(target):
            return target
    return None


def create_component(
    name: str, params: Mapping[str, Any] | None = None
) -> Component:
    """Instantiate the component registered (or importable) as ``name``."""
    factory = resolve_component(name)
    try:
        instance = factory(**dict(params or {}))
    except TypeError as error:
        raise ConfigurationError(
            f"component {name!r} rejected its parameters: {error}"
        ) from None
    missing = missing_component_attrs(instance)
    if missing:
        raise ConfigurationError(
            f"component {name!r} resolved to {type(instance).__name__}, "
            f"which does not satisfy the Component protocol "
            f"(missing: {', '.join(missing)})"
        )
    return instance


def component_names() -> tuple[str, ...]:
    """Every registered component name, sorted (built-ins loaded first)."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))
