"""The component lifecycle contract.

Everything that takes part in a scenario — protocol tiers, heartbeat
emitters, fault injectors, partition schedules, ad-hoc policies — is a
*component*: an object with a stable ``name`` and a three-phase lifecycle
driven by the :class:`~repro.platform.manager.ComponentManager`:

1. **setup(builder)** — the component declares what it needs by pulling
   capabilities off the :class:`~repro.platform.builder.Builder` facade
   (``builder.env``, ``builder.network``, ``builder.rng.stream(...)``,
   ``builder.monitor``, ``builder.hosts(...)``, ...).  No simulation
   activity happens here; the component may also register sub-components
   through ``builder.components``.
2. **start()** — arm timers, spawn processes, begin injecting.  Start order
   is registration order (coordinators before servers before clients, so
   the grid's tiers come up the way :class:`~repro.grid.builder.Grid` always
   started them).
3. **stop()** — retire timers and stop injecting; called in reverse start
   order and must be idempotent.

:class:`Component` is a structural (duck-typed) protocol: any object with
those three methods and a ``name`` qualifies — the existing protocol
components (:class:`~repro.core.client.ClientComponent` and friends) and the
injectors of :mod:`repro.nodes.faultgen` implement it directly.
:class:`BaseComponent` is an optional convenience base class with no-op
defaults for authors who only care about one or two phases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.builder import Builder

__all__ = ["Component", "BaseComponent", "missing_component_attrs"]

#: the attributes the structural Component contract requires.
_CONTRACT = ("name", "setup", "start", "stop")


def missing_component_attrs(candidate: object) -> list[str]:
    """The contract attributes ``candidate`` lacks (empty = conformant)."""
    return [attr for attr in _CONTRACT if not hasattr(candidate, attr)]


@runtime_checkable
class Component(Protocol):
    """Structural contract every managed component satisfies."""

    @property
    def name(self) -> str:
        """Stable identifier the manager registers the component under."""
        ...

    def setup(self, builder: "Builder") -> None:
        """Bind to the platform's cross-cutting capabilities (no activity)."""
        ...

    def start(self) -> None:
        """Begin operating (spawn processes, arm timers, inject faults)."""
        ...

    def stop(self) -> None:
        """Cease operating; idempotent, called in reverse start order."""
        ...


class BaseComponent:
    """Convenience base: a named component with no-op lifecycle defaults.

    Subclasses override the phases they care about::

        @component("example.noisy-neighbour")
        class NoisyNeighbour(BaseComponent):
            def setup(self, builder):
                self.env = builder.env
                self.hosts = builder.hosts("servers")
            def start(self):
                ...
    """

    def __init__(self, name: str | None = None) -> None:
        self._name = name or type(self).__name__

    @property
    def name(self) -> str:
        return self._name

    def setup(self, builder: "Builder") -> None:  # noqa: B027 - intentional no-op
        """Default: nothing to bind."""

    def start(self) -> None:  # noqa: B027 - intentional no-op
        """Default: nothing to start."""

    def stop(self) -> None:  # noqa: B027 - intentional no-op
        """Default: nothing to stop."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
