"""Built-in registered components.

These are the declarative building blocks a :class:`~repro.scenarios.spec.
ScenarioSpec` can name in its ``components:`` list (or code can pass to
``build_grid(components=...)`` / ``grid.add_component(...)``) without touching
any wiring code:

* ``inject.rate``            — the Poisson fault generator of Figure 7;
* ``inject.churn``           — per-host volatility (desktop-grid churn);
* ``inject.script``          — a deterministic kill/restart timetable;
* ``net.partition-schedule`` — timed partitions/heals over the partition
  manager (split-brain and one-way visibility rules);
* ``detect.heartbeat``       — an auxiliary heart-beat beacon from one tier
  of hosts to arbitrary targets.

Every class here follows the same shape: a constructor taking only plain
(JSON-able) parameters, a ``setup(builder)`` pulling the substrate off the
:class:`~repro.platform.builder.Builder`, and ``start``/``stop`` driving the
underlying mechanism.  They double as reference implementations for custom
components (see ``examples/custom_component.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.detect.heartbeat import HeartbeatEmitter
from repro.errors import ConfigurationError
from repro.net.message import MessageType
from repro.nodes.churn import ChurnModel, ExponentialChurn, TraceChurn
from repro.nodes.faultgen import (
    ChurnInjector,
    CorrelatedFaults,
    FaultGenerator,
    FaultScript,
)
from repro.platform.component import BaseComponent
from repro.platform.registry import component

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.builder import Builder

__all__ = [
    "ChurnInjectorComponent",
    "CorrelatedFaultInjector",
    "HeartbeatBeacon",
    "PartitionSchedule",
    "RateFaultInjector",
    "ScriptedFaults",
]


@component("inject.rate")
class RateFaultInjector(BaseComponent):
    """Aggregate-rate Poisson fault injection over one tier (Figure 7)."""

    def __init__(
        self,
        target: str = "servers",
        faults_per_minute: float = 0.0,
        restart_delay: float = 5.0,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"faultgen-{target}")
        self.target = target
        self.faults_per_minute = faults_per_minute
        self.restart_delay = restart_delay
        self.injector: FaultGenerator | None = None

    def setup(self, builder: "Builder") -> None:
        self.injector = FaultGenerator(
            env=builder.env,
            hosts=builder.hosts(self.target),
            rng=builder.rng,
            faults_per_minute=self.faults_per_minute,
            restart_delay=self.restart_delay,
            monitor=builder.monitor,
            name=self.name,
        )

    def start(self) -> None:
        assert self.injector is not None, "setup() must run before start()"
        self.injector.start()

    def stop(self) -> None:
        if self.injector is not None:
            self.injector.stop()

    @property
    def injected(self) -> int:
        """Faults injected so far (the ``faults_injected`` output)."""
        return self.injector.injected if self.injector is not None else 0


@component("inject.churn")
class ChurnInjectorComponent(BaseComponent):
    """Per-host volatility: every host of a tier churns independently.

    The availability schedule comes from, in order of precedence: an explicit
    ``model`` object, a ``trace`` CSV file of absolute ``node,up,down``
    availability intervals (see :meth:`repro.nodes.churn.TraceChurn.from_csv`;
    ``trace_mode`` decides whether an exhausted trace wraps or clamps the
    node down permanently), inline deterministic ``trace_pairs``
    (``[[up, down], ...]`` durations), or the exponential MTBF/MTTR model.
    """

    def __init__(
        self,
        target: str = "servers",
        mtbf: float = 600.0,
        mttr: float = 30.0,
        permanent_fraction: float = 0.0,
        model: ChurnModel | None = None,
        trace: str | None = None,
        trace_mode: str = "wrap",
        trace_pairs: Sequence[Sequence[float]] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"churn-{target}")
        self.target = target
        if model is not None:
            self.model = model
        elif trace is not None:
            self.model = TraceChurn.from_csv(trace, mode=trace_mode)
        elif trace_pairs is not None:
            self.model = TraceChurn(
                pairs=[(float(up), float(down)) for up, down in trace_pairs],
                mode=trace_mode,
            )
        else:
            self.model = ExponentialChurn(
                mtbf=mtbf, mttr=mttr, permanent_fraction=permanent_fraction
            )
        self.injector: ChurnInjector | None = None

    def setup(self, builder: "Builder") -> None:
        self.injector = ChurnInjector(
            env=builder.env,
            hosts=builder.hosts(self.target),
            rng=builder.rng,
            model=self.model,
            monitor=builder.monitor,
            name=self.name,
        )

    def start(self) -> None:
        assert self.injector is not None, "setup() must run before start()"
        self.injector.start()

    def stop(self) -> None:
        if self.injector is not None:
            self.injector.stop()

    @property
    def injected(self) -> int:
        """Departures injected so far (the ``faults_injected`` output)."""
        return self.injector.injected if self.injector is not None else 0


@component("inject.correlated")
class CorrelatedFaultInjector(BaseComponent):
    """Correlated group failures: whole groups of a tier fail together.

    ``groups`` names the failure domains explicitly (a list of host-name
    lists); without it the tier's hosts are chunked into consecutive groups
    of ``group_size``.  Each Poisson event (aggregate ``rate_per_minute``)
    kills one whole group, optionally ``partition``-ing it from the rest of
    the grid while it is down, and restarts the group together after an
    exponential ``mttr``.  All draws come from shared ``crn.*`` streams, so
    sweeps paired on a ``crn_seed`` replay identical group-failure schedules
    across policy arms.
    """

    def __init__(
        self,
        target: str = "servers",
        groups: Sequence[Sequence[str]] | None = None,
        group_size: int = 2,
        rate_per_minute: float = 0.0,
        mttr: float = 30.0,
        partition: bool = False,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"correlated-{target}")
        if groups is None and group_size < 1:
            raise ConfigurationError("group_size must be at least 1")
        self.target = target
        self.groups = [list(group) for group in groups] if groups is not None else None
        self.group_size = group_size
        self.rate_per_minute = rate_per_minute
        self.mttr = mttr
        self.partition = partition
        self.injector: CorrelatedFaults | None = None

    def setup(self, builder: "Builder") -> None:
        if self.groups is not None:
            host_groups = [
                [builder.host(entry) for entry in group] for group in self.groups
            ]
        else:
            tier = builder.hosts(self.target)
            host_groups = [
                tier[index : index + self.group_size]
                for index in range(0, len(tier), self.group_size)
            ]
        self.injector = CorrelatedFaults(
            env=builder.env,
            groups=host_groups,
            rng=builder.rng,
            rate_per_minute=self.rate_per_minute,
            mttr=self.mttr,
            all_hosts=builder.hosts("all"),
            partitions=builder.partitions if self.partition else None,
            partition=self.partition,
            monitor=builder.monitor,
            name=self.name,
        )

    def start(self) -> None:
        assert self.injector is not None, "setup() must run before start()"
        self.injector.start()

    def stop(self) -> None:
        if self.injector is not None:
            self.injector.stop()

    @property
    def injected(self) -> int:
        """Hosts killed so far (the ``faults_injected`` output)."""
        return self.injector.injected if self.injector is not None else 0


@component("inject.script")
class ScriptedFaults(BaseComponent):
    """Deterministic kill/restart scripts (the Figs. 10-11 style).

    Two declarative forms, combinable:

    ``events`` — an absolute timetable: ``{"time": ..., "action": "kill" |
    "restart", "target": "<host name>"}`` records, matched against
    ``str(host.address)`` over the whole grid.

    ``steps`` — a *sequential conditional program*, for scripts that trigger
    on system state rather than wall-clock time (Figure 10 kills the primary
    once ~40 % of the campaign has completed).  Steps run in order; each may
    carry:

    * ``"until"``: a condition polled every ``"poll"`` seconds (default 10)
      before the step's action fires —
      ``{"kind": "finished-count", "coordinator": "lille", "at_least": N}``
      (that coordinator knows ≥ N finished tasks) or
      ``{"kind": "caught-up", "coordinator": "lille", "reference": "orsay",
      "margin": M}`` (lille's count is within M of orsay's);
    * ``"after"``: a plain delay in seconds (instead of, or with, nothing);
    * ``"do"``: ``"kill"`` / ``"restart"`` (needs ``"target"``) or ``"note"``
      (record only);
    * ``"label"`` / ``"note"``: recorded with the firing time in
      :attr:`recorded` — the labelled event log the figures annotate.
    """

    _CONDITIONS = ("finished-count", "caught-up")

    def __init__(
        self,
        events: Sequence[Mapping[str, Any]] = (),
        steps: Sequence[Mapping[str, Any]] = (),
        name: str | None = None,
    ) -> None:
        super().__init__(name or "fault-script")
        self.script = FaultScript()
        for event in events:
            action = event.get("action")
            if action == "kill":
                self.script.kill(float(event["time"]), str(event["target"]))
            elif action == "restart":
                self.script.restart(float(event["time"]), str(event["target"]))
            else:
                raise ConfigurationError(
                    f"unknown scripted action {action!r} (kill or restart)"
                )
        self.steps = [dict(step) for step in steps]
        for step in self.steps:
            do = step.get("do")
            if do not in (None, "kill", "restart", "note"):
                raise ConfigurationError(
                    f"unknown step action {do!r} (kill, restart or note)"
                )
            if do in ("kill", "restart") and not step.get("target"):
                raise ConfigurationError(f"step {step!r} needs a 'target'")
            try:
                step["poll"] = float(step.get("poll", 10.0))
                if step.get("after") is not None:
                    step["after"] = float(step["after"])
            except (TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"step {step!r} has a non-numeric timing value: {error}"
                ) from None
            until = step.get("until")
            if until is None:
                continue
            if not isinstance(until, Mapping):
                raise ConfigurationError(
                    f"step condition must be a mapping, got {until!r}"
                )
            kind = until.get("kind")
            if kind not in self._CONDITIONS:
                raise ConfigurationError(
                    f"unknown step condition {kind!r} "
                    f"(one of: {', '.join(self._CONDITIONS)})"
                )
            required = (
                ("coordinator", "at_least")
                if kind == "finished-count"
                else ("coordinator", "reference")
            )
            missing = [key for key in required if key not in until]
            if missing:
                raise ConfigurationError(
                    f"step condition {dict(until)!r} is missing "
                    f"{', '.join(missing)}"
                )
            # Coerce the numeric threshold now (steps often come from
            # hand-written JSON/YAML specs): a malformed value must fail
            # here, not as a TypeError at the first in-simulation poll.
            until = step["until"] = dict(until)
            try:
                if kind == "finished-count":
                    until["at_least"] = float(until["at_least"])
                else:
                    until["margin"] = float(until.get("margin", 0))
            except (TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"step condition {dict(until)!r} has a non-numeric "
                    f"threshold: {error}"
                ) from None
        #: labelled events the steps recorded, in firing order.
        self.recorded: list[dict[str, Any]] = []
        self._builder: "Builder | None" = None

    def setup(self, builder: "Builder") -> None:
        self._builder = builder
        # Fail fast on a target no host of this grid matches.  The absolute
        # timetable resolves by full address string only (FaultScript's
        # contract); steps resolve through builder.host, which also accepts
        # bare address names.
        hosts = builder.hosts("all")
        full_names = {str(host.address) for host in hosts}
        unknown = self.script.targets() - full_names
        step_names = full_names | {host.address.name for host in hosts}
        unknown |= {
            str(step["target"])
            for step in self.steps
            if step.get("target") and str(step["target"]) not in step_names
        }
        if unknown:
            raise ConfigurationError(
                f"fault script targets unknown hosts: {sorted(unknown)}"
            )
        # The coordinator names inside step conditions get the same fail-fast
        # treatment — a typo must not surface mid-simulation at the first poll.
        coordinators = {c.address.name for c in builder.grid.coordinators}
        for step in self.steps:
            until = step.get("until")
            if until is None:
                continue
            named = {
                str(until[key])
                for key in ("coordinator", "reference")
                if key in until
            }
            missing = named - coordinators
            if missing:
                raise ConfigurationError(
                    f"step condition references unknown coordinators: "
                    f"{sorted(missing)} (known: {sorted(coordinators)})"
                )

    def start(self) -> None:
        builder = self._builder
        assert builder is not None, "setup() must run before start()"
        if self.script.events:
            self.script.install(builder.env, builder.hosts("all"), builder.monitor)
        if self.steps:
            builder.env.process(self._run_steps(), name=f"{self.name}:steps")

    # The driver processes run their scripts to the end; there is nothing to
    # reclaim on stop (they die with the environment).

    # ------------------------------------------------------------ step driver
    def _satisfied(self, condition: Mapping[str, Any]) -> bool:
        grid = self._builder.grid
        kind = condition["kind"]
        if kind == "finished-count":
            coordinator = grid.coordinator_by_name(str(condition["coordinator"]))
            return coordinator.finished_count() >= condition["at_least"]
        # caught-up: coordinator's count within margin of the reference's.
        coordinator = grid.coordinator_by_name(str(condition["coordinator"]))
        reference = grid.coordinator_by_name(str(condition["reference"]))
        margin = condition.get("margin", 0)
        return coordinator.finished_count() >= reference.finished_count() - margin

    def _run_steps(self):
        builder = self._builder
        env = builder.env
        for step in self.steps:
            until = step.get("until")
            if until is not None:
                # __init__ coerced poll/after to floats (fail-fast contract).
                while not self._satisfied(until):
                    yield env.timeout(step["poll"])
            after = step.get("after")
            if after:
                yield env.timeout(after)
            do = step.get("do")
            if do == "kill":
                builder.host(str(step["target"])).crash(cause=self.name)
                builder.monitor.incr("faultscript.kills")
            elif do == "restart":
                builder.host(str(step["target"])).restart()
                builder.monitor.incr("faultscript.restarts")
            if step.get("label") is not None or step.get("note") is not None:
                record: dict[str, Any] = {}
                if step.get("label") is not None:
                    record["label"] = step["label"]
                if step.get("note") is not None:
                    record["event"] = step["note"]
                record["time"] = env.now
                self.recorded.append(record)


@component("net.partition-schedule")
class PartitionSchedule(BaseComponent):
    """Timed partition/heal events over the partition manager.

    ``events`` entries (times relative to the component's start):

    * ``{"time": t, "action": "partition", "partition": "name",
      "group_a": [...], "group_b": [...]}`` — install a named symmetric
      partition; groups are host-name lists or tier selectors
      (``"servers"`` / ``"coordinators"`` / ``"clients"``);
    * ``{"time": t, "action": "heal", "partition": "name"}`` — remove it;
    * ``{"time": t, "action": "hide", "dest": "x", "source": "y"}`` /
      ``{"time": t, "action": "unhide", ...}`` — visibility rules.  ``dest``
      and ``source`` may each be one host name or a tier selector
      (``"servers"`` / ``"coordinators"`` / ``"clients"``), expanding to the
      cross product; ``"bidirectional": true`` hides each pair both ways
      (the mutually inconsistent views of Figure 11);
    * ``{"time": t, "action": "heal-all"}`` — remove everything.
    """

    _ACTIONS = ("partition", "heal", "hide", "unhide", "heal-all")

    def __init__(
        self,
        events: Sequence[Mapping[str, Any]] = (),
        name: str | None = None,
    ) -> None:
        super().__init__(name or "partition-schedule")
        for event in events:
            if event.get("action") not in self._ACTIONS:
                raise ConfigurationError(
                    f"unknown partition action {event.get('action')!r} "
                    f"(one of: {', '.join(self._ACTIONS)})"
                )
            if "time" not in event:
                raise ConfigurationError(
                    f"partition event {dict(event)!r} has no 'time'"
                )
        self.events = sorted((dict(e) for e in events), key=lambda e: e["time"])
        self.applied = 0
        self._builder: "Builder | None" = None

    def setup(self, builder: "Builder") -> None:
        self._builder = builder

    def _addresses(self, group: Any) -> list:
        """A group spec -> addresses: a tier selector, one host name, or a list."""
        builder = self._builder
        assert builder is not None
        if isinstance(group, str):
            try:
                return [host.address for host in builder.hosts(group)]
            except ConfigurationError:
                return [builder.host(group).address]
        return [builder.host(entry).address for entry in group]

    def _apply(self, event: Mapping[str, Any]) -> None:
        builder = self._builder
        assert builder is not None
        partitions = builder.partitions
        action = event["action"]
        if action == "partition":
            partitions.partition(
                str(event.get("partition", self.name)),
                self._addresses(event["group_a"]),
                self._addresses(event["group_b"]),
            )
        elif action == "heal":
            partitions.heal(str(event.get("partition", self.name)))
        elif action in ("hide", "unhide"):
            rule = partitions.hide if action == "hide" else partitions.unhide
            for dest in self._addresses(event["dest"]):
                for source in self._addresses(event["source"]):
                    if dest == source:
                        continue
                    rule(dest, from_source=source)
                    if event.get("bidirectional"):
                        rule(source, from_source=dest)
        else:  # heal-all
            partitions.heal_all()
        self.applied += 1

    def start(self) -> None:
        builder = self._builder
        assert builder is not None, "setup() must run before start()"
        if not self.events:
            return
        env = builder.env
        immediate = [e for e in self.events if e["time"] <= 0]
        timed = [e for e in self.events if e["time"] > 0]
        # Zero-time events apply synchronously so a partition declared "from
        # the start" is in force before the first message is ever routed.
        for event in immediate:
            self._apply(event)
        if timed:
            def driver():
                start = env.now
                for event in timed:
                    delay = start + float(event["time"]) - env.now
                    if delay > 0:
                        yield env.timeout(delay)
                    self._apply(event)

            env.process(driver(), name=f"{self.name}:driver")


@component("detect.heartbeat")
class HeartbeatBeacon(BaseComponent):
    """Auxiliary heart-beat emitters from one tier to arbitrary targets.

    Attaches one :class:`~repro.detect.heartbeat.HeartbeatEmitter` per host
    of ``tier``, beating to ``targets`` (a tier selector or explicit host
    names) every ``period`` seconds — e.g. an out-of-band liveness signal a
    custom detection policy consumes.  The protocol components' own emitters
    are untouched; this is *extra* signal.  A host crash reclaims its
    emitter's pending beat (the emitter's own crash hook) and a restart
    re-arms it (the beacon's restart hook), so the beacon keeps beating
    through churn exactly like the tier components' emitters do.
    """

    def __init__(
        self,
        tier: str = "servers",
        targets: str | Sequence[str] = "coordinators",
        period: float | None = None,
        mtype: str = MessageType.PING.value,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"heartbeat-{tier}")
        self.tier = tier
        self.targets = targets
        self.period = period
        self.mtype = MessageType(mtype)
        self.emitters: list[HeartbeatEmitter] = []
        self._running = False

    def setup(self, builder: "Builder") -> None:
        detection = builder.config.server.detection
        if self.period is not None:
            detection = replace(detection, heartbeat_period=self.period)
        if isinstance(self.targets, str):
            target_addresses = lambda: [
                host.address for host in builder.hosts(self.targets)
            ]
        else:
            fixed = [builder.host(entry).address for entry in self.targets]
            target_addresses = lambda: fixed
        self.emitters = [
            HeartbeatEmitter(
                host=host,
                config=detection,
                mtype=self.mtype,
                targets=target_addresses,
            )
            for host in builder.hosts(self.tier)
        ]

    def start(self) -> None:
        self._running = True
        for emitter in self.emitters:
            if emitter.host.up:
                emitter.start()
            # Crashed hosts stop beating through the emitter's own crash
            # hook; the restart hook re-arms the beat when they return (and
            # arms hosts that were already down at start time).
            emitter.host.add_restart_hook(self._on_host_restart)

    def stop(self) -> None:
        self._running = False
        for emitter in self.emitters:
            emitter.host.remove_restart_hook(self._on_host_restart)
            emitter.stop()

    def _on_host_restart(self, host) -> None:
        if not self._running:
            return
        for emitter in self.emitters:
            if emitter.host is host:
                emitter.start()

    @property
    def sent(self) -> int:
        """Total beats sent across every emitter."""
        return sum(emitter.sent for emitter in self.emitters)
