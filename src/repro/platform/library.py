"""Built-in registered components.

These are the declarative building blocks a :class:`~repro.scenarios.spec.
ScenarioSpec` can name in its ``components:`` list (or code can pass to
``build_grid(components=...)`` / ``grid.add_component(...)``) without touching
any wiring code:

* ``inject.rate``            — the Poisson fault generator of Figure 7;
* ``inject.churn``           — per-host volatility (desktop-grid churn);
* ``inject.script``          — a deterministic kill/restart timetable;
* ``net.partition-schedule`` — timed partitions/heals over the partition
  manager (split-brain and one-way visibility rules);
* ``detect.heartbeat``       — an auxiliary heart-beat beacon from one tier
  of hosts to arbitrary targets.

Every class here follows the same shape: a constructor taking only plain
(JSON-able) parameters, a ``setup(builder)`` pulling the substrate off the
:class:`~repro.platform.builder.Builder`, and ``start``/``stop`` driving the
underlying mechanism.  They double as reference implementations for custom
components (see ``examples/custom_component.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.detect.heartbeat import HeartbeatEmitter
from repro.errors import ConfigurationError
from repro.net.message import MessageType
from repro.nodes.churn import ChurnModel, ExponentialChurn
from repro.nodes.faultgen import ChurnInjector, FaultGenerator, FaultScript
from repro.platform.component import BaseComponent
from repro.platform.registry import component

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.builder import Builder

__all__ = [
    "ChurnInjectorComponent",
    "HeartbeatBeacon",
    "PartitionSchedule",
    "RateFaultInjector",
    "ScriptedFaults",
]


@component("inject.rate")
class RateFaultInjector(BaseComponent):
    """Aggregate-rate Poisson fault injection over one tier (Figure 7)."""

    def __init__(
        self,
        target: str = "servers",
        faults_per_minute: float = 0.0,
        restart_delay: float = 5.0,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"faultgen-{target}")
        self.target = target
        self.faults_per_minute = faults_per_minute
        self.restart_delay = restart_delay
        self.injector: FaultGenerator | None = None

    def setup(self, builder: "Builder") -> None:
        self.injector = FaultGenerator(
            env=builder.env,
            hosts=builder.hosts(self.target),
            rng=builder.rng,
            faults_per_minute=self.faults_per_minute,
            restart_delay=self.restart_delay,
            monitor=builder.monitor,
            name=self.name,
        )

    def start(self) -> None:
        assert self.injector is not None, "setup() must run before start()"
        self.injector.start()

    def stop(self) -> None:
        if self.injector is not None:
            self.injector.stop()

    @property
    def injected(self) -> int:
        """Faults injected so far (the ``faults_injected`` output)."""
        return self.injector.injected if self.injector is not None else 0


@component("inject.churn")
class ChurnInjectorComponent(BaseComponent):
    """Per-host volatility: every host of a tier churns independently."""

    def __init__(
        self,
        target: str = "servers",
        mtbf: float = 600.0,
        mttr: float = 30.0,
        permanent_fraction: float = 0.0,
        model: ChurnModel | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"churn-{target}")
        self.target = target
        self.model = model or ExponentialChurn(
            mtbf=mtbf, mttr=mttr, permanent_fraction=permanent_fraction
        )
        self.injector: ChurnInjector | None = None

    def setup(self, builder: "Builder") -> None:
        self.injector = ChurnInjector(
            env=builder.env,
            hosts=builder.hosts(self.target),
            rng=builder.rng,
            model=self.model,
            monitor=builder.monitor,
            name=self.name,
        )

    def start(self) -> None:
        assert self.injector is not None, "setup() must run before start()"
        self.injector.start()

    def stop(self) -> None:
        if self.injector is not None:
            self.injector.stop()

    @property
    def injected(self) -> int:
        """Departures injected so far (the ``faults_injected`` output)."""
        return self.injector.injected if self.injector is not None else 0


@component("inject.script")
class ScriptedFaults(BaseComponent):
    """A deterministic kill/restart timetable (the Figs. 10-11 style).

    ``events`` is a list of ``{"time": ..., "action": "kill" | "restart",
    "target": "<host name>"}`` records; targets are matched against
    ``str(host.address)`` over the whole grid.
    """

    def __init__(
        self,
        events: Sequence[Mapping[str, Any]] = (),
        name: str | None = None,
    ) -> None:
        super().__init__(name or "fault-script")
        self.script = FaultScript()
        for event in events:
            action = event.get("action")
            if action == "kill":
                self.script.kill(float(event["time"]), str(event["target"]))
            elif action == "restart":
                self.script.restart(float(event["time"]), str(event["target"]))
            else:
                raise ConfigurationError(
                    f"unknown scripted action {action!r} (kill or restart)"
                )
        self._builder: "Builder | None" = None

    def setup(self, builder: "Builder") -> None:
        self._builder = builder
        # Fail fast on a target no host of this grid matches.
        known = {str(host.address) for host in builder.hosts("all")}
        unknown = self.script.targets() - known
        if unknown:
            raise ConfigurationError(
                f"fault script targets unknown hosts: {sorted(unknown)}"
            )

    def start(self) -> None:
        assert self._builder is not None, "setup() must run before start()"
        self.script.install(
            self._builder.env, self._builder.hosts("all"), self._builder.monitor
        )

    # The driver process runs the timetable to its end; there is nothing to
    # reclaim on stop (the process dies with the environment).


@component("net.partition-schedule")
class PartitionSchedule(BaseComponent):
    """Timed partition/heal events over the partition manager.

    ``events`` entries (times relative to the component's start):

    * ``{"time": t, "action": "partition", "partition": "name",
      "group_a": [...], "group_b": [...]}`` — install a named symmetric
      partition; groups are host-name lists or tier selectors
      (``"servers"`` / ``"coordinators"`` / ``"clients"``);
    * ``{"time": t, "action": "heal", "partition": "name"}`` — remove it;
    * ``{"time": t, "action": "hide", "dest": "x", "source": "y"}`` /
      ``{"time": t, "action": "unhide", ...}`` — one-way visibility rules;
    * ``{"time": t, "action": "heal-all"}`` — remove everything.
    """

    _ACTIONS = ("partition", "heal", "hide", "unhide", "heal-all")

    def __init__(
        self,
        events: Sequence[Mapping[str, Any]] = (),
        name: str | None = None,
    ) -> None:
        super().__init__(name or "partition-schedule")
        for event in events:
            if event.get("action") not in self._ACTIONS:
                raise ConfigurationError(
                    f"unknown partition action {event.get('action')!r} "
                    f"(one of: {', '.join(self._ACTIONS)})"
                )
            if "time" not in event:
                raise ConfigurationError(
                    f"partition event {dict(event)!r} has no 'time'"
                )
        self.events = sorted((dict(e) for e in events), key=lambda e: e["time"])
        self.applied = 0
        self._builder: "Builder | None" = None

    def setup(self, builder: "Builder") -> None:
        self._builder = builder

    def _addresses(self, group: Any) -> list:
        builder = self._builder
        assert builder is not None
        if isinstance(group, str):
            return [host.address for host in builder.hosts(group)]
        return [builder.host(entry).address for entry in group]

    def _apply(self, event: Mapping[str, Any]) -> None:
        builder = self._builder
        assert builder is not None
        partitions = builder.partitions
        action = event["action"]
        if action == "partition":
            partitions.partition(
                str(event.get("partition", self.name)),
                self._addresses(event["group_a"]),
                self._addresses(event["group_b"]),
            )
        elif action == "heal":
            partitions.heal(str(event.get("partition", self.name)))
        elif action == "hide":
            partitions.hide(
                builder.host(event["dest"]).address,
                from_source=builder.host(event["source"]).address,
            )
        elif action == "unhide":
            partitions.unhide(
                builder.host(event["dest"]).address,
                from_source=builder.host(event["source"]).address,
            )
        else:  # heal-all
            partitions.heal_all()
        self.applied += 1

    def start(self) -> None:
        builder = self._builder
        assert builder is not None, "setup() must run before start()"
        if not self.events:
            return
        env = builder.env
        immediate = [e for e in self.events if e["time"] <= 0]
        timed = [e for e in self.events if e["time"] > 0]
        # Zero-time events apply synchronously so a partition declared "from
        # the start" is in force before the first message is ever routed.
        for event in immediate:
            self._apply(event)
        if timed:
            def driver():
                start = env.now
                for event in timed:
                    delay = start + float(event["time"]) - env.now
                    if delay > 0:
                        yield env.timeout(delay)
                    self._apply(event)

            env.process(driver(), name=f"{self.name}:driver")


@component("detect.heartbeat")
class HeartbeatBeacon(BaseComponent):
    """Auxiliary heart-beat emitters from one tier to arbitrary targets.

    Attaches one :class:`~repro.detect.heartbeat.HeartbeatEmitter` per host
    of ``tier``, beating to ``targets`` (a tier selector or explicit host
    names) every ``period`` seconds — e.g. an out-of-band liveness signal a
    custom detection policy consumes.  The protocol components' own emitters
    are untouched; this is *extra* signal.  A host crash reclaims its
    emitter's pending beat (the emitter's own crash hook) and a restart
    re-arms it (the beacon's restart hook), so the beacon keeps beating
    through churn exactly like the tier components' emitters do.
    """

    def __init__(
        self,
        tier: str = "servers",
        targets: str | Sequence[str] = "coordinators",
        period: float | None = None,
        mtype: str = MessageType.PING.value,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"heartbeat-{tier}")
        self.tier = tier
        self.targets = targets
        self.period = period
        self.mtype = MessageType(mtype)
        self.emitters: list[HeartbeatEmitter] = []
        self._running = False

    def setup(self, builder: "Builder") -> None:
        detection = builder.config.server.detection
        if self.period is not None:
            detection = replace(detection, heartbeat_period=self.period)
        if isinstance(self.targets, str):
            target_addresses = lambda: [
                host.address for host in builder.hosts(self.targets)
            ]
        else:
            fixed = [builder.host(entry).address for entry in self.targets]
            target_addresses = lambda: fixed
        self.emitters = [
            HeartbeatEmitter(
                host=host,
                config=detection,
                mtype=self.mtype,
                targets=target_addresses,
            )
            for host in builder.hosts(self.tier)
        ]

    def start(self) -> None:
        self._running = True
        for emitter in self.emitters:
            if emitter.host.up:
                emitter.start()
            # Crashed hosts stop beating through the emitter's own crash
            # hook; the restart hook re-arms the beat when they return (and
            # arms hosts that were already down at start time).
            emitter.host.add_restart_hook(self._on_host_restart)

    def stop(self) -> None:
        self._running = False
        for emitter in self.emitters:
            emitter.host.remove_restart_hook(self._on_host_restart)
            emitter.stop()

    def _on_host_restart(self, host) -> None:
        if not self._running:
            return
        for emitter in self.emitters:
            if emitter.host is host:
                emitter.start()

    @property
    def sent(self) -> int:
        """Total beats sent across every emitter."""
        return sum(emitter.sent for emitter in self.emitters)
