"""The Builder facade components see during ``setup``.

One object exposing every cross-cutting capability a component may need,
so components never reach into the grid's wiring code:

==========================  ====================================================
``builder.env``             the simulation :class:`~repro.sim.core.Environment`
``builder.network``         the :class:`~repro.net.transport.Network`
``builder.rng``             the scenario's :class:`~repro.sim.rng.RandomStreams`
                            (``builder.rng.stream("my.component")`` for a
                            deterministic private stream)
``builder.monitor``         the shared :class:`~repro.sim.monitor.Monitor`
``builder.services``        the :class:`~repro.core.services.ServiceRegistry`
``builder.config``          the scenario's :class:`~repro.config.ProtocolConfig`
``builder.partitions``      the :class:`~repro.net.partition.PartitionManager`
``builder.spec``            the :class:`~repro.grid.deployment.DeploymentSpec`
``builder.hosts(tier)``     live :class:`~repro.nodes.node.Host` lists by tier
``builder.host(address)``   one host by address (or its string form)
``builder.components``      registration interface (``add`` / ``get``) for
                            sub-components
==========================  ====================================================

The facade is deliberately read-mostly: components *pull* capabilities during
``setup`` and keep references; they do not mutate the builder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.platform.component import Component
from repro.platform.manager import ComponentManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ProtocolConfig
    from repro.core.services import ServiceRegistry
    from repro.grid.builder import Grid
    from repro.grid.deployment import DeploymentSpec
    from repro.net.partition import PartitionManager
    from repro.net.transport import Network
    from repro.nodes.node import Host
    from repro.sim.core import Environment
    from repro.sim.monitor import Monitor
    from repro.sim.rng import RandomStreams
    from repro.types import Address

__all__ = ["Builder", "ComponentsInterface"]

#: tier selectors accepted by :meth:`Builder.hosts`.
_TIERS = ("servers", "coordinators", "clients", "all")


class ComponentsInterface:
    """The slice of the :class:`ComponentManager` components may use."""

    def __init__(self, manager: ComponentManager) -> None:
        self._manager = manager

    def add(self, component: Component) -> Component:
        """Register a sub-component (set up / started as the phase requires)."""
        return self._manager.add(component)

    def get(self, name: str) -> Component:
        """Look a registered component up by name."""
        return self._manager.get(name)

    def names(self) -> list[str]:
        """All registered component names, in registration order."""
        return self._manager.names()


class Builder:
    """Capability facade handed to every component's ``setup``."""

    def __init__(
        self,
        env: "Environment",
        network: "Network",
        rng: "RandomStreams",
        monitor: "Monitor",
        services: "ServiceRegistry",
        config: "ProtocolConfig",
        partitions: "PartitionManager",
        spec: "DeploymentSpec",
        manager: ComponentManager,
    ) -> None:
        self.env = env
        self.network = network
        self.rng = rng
        self.monitor = monitor
        self.services = services
        self.config = config
        self.partitions = partitions
        self.spec = spec
        self.components = ComponentsInterface(manager)
        #: the grid under construction; set by build_grid before setup runs.
        self._grid: "Grid | None" = None

    # ------------------------------------------------------------------- grid
    def attach_grid(self, grid: "Grid") -> None:
        """Bind the grid under construction (called once by build_grid)."""
        self._grid = grid

    @property
    def grid(self) -> "Grid":
        """The grid being built (available from setup onwards)."""
        if self._grid is None:
            raise ConfigurationError("the builder is not attached to a grid yet")
        return self._grid

    def hosts(self, tier: str = "all") -> "list[Host]":
        """Hosts of one tier: ``servers`` / ``coordinators`` / ``clients`` / ``all``."""
        grid = self.grid
        if tier == "servers":
            return grid.server_hosts()
        if tier == "coordinators":
            return grid.coordinator_hosts()
        if tier == "clients":
            return grid.client_hosts()
        if tier == "all":
            return list(grid.hosts.values())
        raise ConfigurationError(
            f"unknown host tier {tier!r} (one of: {', '.join(_TIERS)})"
        )

    def host(self, address: "Address | str") -> "Host":
        """One host by :class:`~repro.types.Address` or its string form."""
        grid = self.grid
        if address in grid.hosts:
            return grid.hosts[address]  # type: ignore[index]
        wanted = str(address)
        for addr, host in grid.hosts.items():
            if str(addr) == wanted or addr.name == wanted:
                return host
        known = ", ".join(str(a) for a in grid.hosts)
        raise ConfigurationError(f"no host {wanted!r} (known: {known})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Builder spec={self.spec.name!r} components={self.components.names()}>"
