"""Component registration, ordering and lifecycle driving.

The :class:`ComponentManager` owns the authoritative list of a scenario's
components.  Registration order is meaningful: it is the setup order and the
start order (the grid registers coordinators, then servers, then clients —
exactly the order :meth:`~repro.grid.builder.Grid.start` has always used),
and teardown runs in reverse.

Components may be added at any lifecycle phase:

* before :meth:`setup_all` — the normal case; the component is set up and
  started with everybody else;
* during another component's ``setup`` (via ``builder.components.add``) —
  the new component is appended and set up in the same pass;
* after :meth:`start_all` — the component is set up and started immediately.
  This is how workload-relative injectors join a running scenario without
  perturbing the start order of everything that came before (the fault plan
  of :func:`~repro.scenarios.engine.execute_benchmark` arms *after* the
  workload process is spawned, which event-ordering determinism relies on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, TypeVar

from repro.errors import ConfigurationError
from repro.platform.component import Component, missing_component_attrs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.builder import Builder

__all__ = ["ComponentManager"]

C = TypeVar("C")

#: lifecycle phases, in order.
_PHASES = ("registration", "setup", "running", "stopped")


class ComponentManager:
    """Owns a scenario's components and drives their lifecycle in order."""

    def __init__(self) -> None:
        self._components: list[Component] = []
        self._by_name: dict[str, Component] = {}
        self._started: list[Component] = []
        self._setup_done: set[int] = set()
        self.phase: str = "registration"
        self._builder: "Builder | None" = None

    # -------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components)

    def names(self) -> list[str]:
        """Registered component names, in registration order."""
        return [component.name for component in self._components]

    def get(self, name: str) -> Component:
        """Look a component up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise ConfigurationError(
                f"no component named {name!r} (registered: {known})"
            ) from None

    def by_type(self, cls: type[C]) -> list[C]:
        """Every registered component that is an instance of ``cls``."""
        return [c for c in self._components if isinstance(c, cls)]

    # ------------------------------------------------------------ registration
    def add(self, component: Component) -> Component:
        """Register ``component``; its lifecycle catches up with the manager's.

        Added before setup: queued.  Added during/after setup: set up now.
        Added after start: set up and started now (late-joining injectors).
        """
        self._check_contract(component)
        name = component.name
        existing = self._by_name.get(name)
        if existing is not None:
            if existing is component:
                return component
            raise ConfigurationError(
                f"a component named {name!r} is already registered"
            )
        if self.phase == "stopped":
            raise ConfigurationError(
                f"cannot add component {name!r} to a stopped scenario"
            )
        self._components.append(component)
        self._by_name[name] = component
        if self.phase in ("setup", "running"):
            self._setup_one(component)
        if self.phase == "running":
            component.start()
            self._started.append(component)
        return component

    @staticmethod
    def _check_contract(component: Component) -> None:
        missing = missing_component_attrs(component)
        if missing:
            raise ConfigurationError(
                f"{type(component).__name__} does not satisfy the Component "
                f"protocol (missing: {', '.join(missing)})"
            )

    # --------------------------------------------------------------- lifecycle
    def setup_all(self, builder: "Builder") -> None:
        """Run ``setup(builder)`` over every component, in registration order.

        Components registered *during* the pass (by other components, through
        ``builder.components.add``) are picked up by the same pass.
        """
        if self.phase != "registration":
            raise ConfigurationError(f"setup_all called in phase {self.phase!r}")
        self._builder = builder
        self.phase = "setup"
        index = 0
        while index < len(self._components):
            self._setup_one(self._components[index])
            index += 1

    def _setup_one(self, component: Component) -> None:
        if id(component) in self._setup_done:
            return
        if self._builder is None:
            raise ConfigurationError(
                f"component {component.name!r} cannot be set up before setup_all"
            )
        self._setup_done.add(id(component))
        component.setup(self._builder)

    def start_all(self) -> None:
        """Start every component in registration order (idempotent)."""
        if self.phase == "running":
            return
        if self.phase != "setup":
            raise ConfigurationError(f"start_all called in phase {self.phase!r}")
        self.phase = "running"
        for component in list(self._components):
            if component not in self._started:
                component.start()
                self._started.append(component)

    def stop_all(self) -> None:
        """Stop every started component, in reverse start order (idempotent)."""
        if self.phase == "stopped":
            return
        while self._started:
            self._started.pop().stop()
        self.phase = "stopped"

    @property
    def started(self) -> bool:
        """Whether the manager is in its running phase."""
        return self.phase == "running"
