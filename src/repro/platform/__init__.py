"""The pluggable component platform.

One lifecycle for everything that takes part in a scenario: components
declare what they need through a :class:`~repro.platform.builder.Builder`
facade during ``setup``, the :class:`~repro.platform.manager.ComponentManager`
owns registration/start/stop ordering, and a string-keyed registry
(:func:`~repro.platform.registry.component`, with a dotted-path fallback)
lets scenario specs name extra components declaratively.  See
:mod:`repro.platform.library` for the built-in injectors and schedules, and
``examples/custom_component.py`` for authoring a new one.
"""

from repro.platform.builder import Builder, ComponentsInterface
from repro.platform.component import BaseComponent, Component
from repro.platform.manager import ComponentManager
from repro.platform.registry import (
    component,
    component_names,
    create_component,
    register_component,
    resolve_component,
)

__all__ = [
    "BaseComponent",
    "Builder",
    "Component",
    "ComponentManager",
    "ComponentsInterface",
    "component",
    "component_names",
    "create_component",
    "register_component",
    "resolve_component",
]
