"""Tests for workloads, config validation, analysis helpers, realtime driver,
and smoke tests of the experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    completion_curve_lag,
    makespan_overhead,
    plateaux_count,
    summarize_series,
)
from repro.config import (
    ClientConfig,
    CoordinatorConfig,
    FaultDetectionConfig,
    LoggingConfig,
    ProtocolConfig,
    ReplicationConfig,
    SchedulerConfig,
    ServerConfig,
)
from repro.errors import ConfigurationError
from repro.experiments import (
    run_baseline_ablation,
    run_detector_ablation,
    run_fig4_vs_size,
    run_fig5_vs_count,
    run_fig6_vs_calls,
    run_fig7,
    run_fig8,
)
from repro.experiments.common import format_rows, mean
from repro.runtime import RealTimeDriver
from repro.sim.core import Environment
from repro.sim.monitor import TimeSeries
from repro.types import LoggingStrategy
from repro.workloads import AlcatelWorkload, SyntheticWorkload, geometric_counts, geometric_sizes
from repro.workloads.sweep import fault_frequencies


class TestConfigValidation:
    def test_default_protocol_validates(self):
        assert ProtocolConfig().validate() is not None

    def test_detection_timeout_must_exceed_heartbeat(self):
        with pytest.raises(ConfigurationError):
            FaultDetectionConfig(heartbeat_period=10.0, suspicion_timeout=5.0).validate()

    def test_logging_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            LoggingConfig(capacity_bytes=0).validate()

    def test_replication_period_positive(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(period=0.0).validate()

    def test_scheduler_policy_known(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(policy="lifo").validate()

    def test_client_poll_period_positive(self):
        with pytest.raises(ConfigurationError):
            ClientConfig(result_poll_period=0.0).validate()

    def test_server_slots_positive(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(slots=0).validate()

    def test_coordinator_overhead_non_negative(self):
        config = CoordinatorConfig()
        config.request_processing_overhead = -1.0
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_with_logging_strategy_copies(self):
        base = ProtocolConfig()
        copy = base.with_logging_strategy(LoggingStrategy.OPTIMISTIC)
        assert copy.client.logging.strategy is LoggingStrategy.OPTIMISTIC
        assert base.client.logging.strategy is not LoggingStrategy.OPTIMISTIC

    def test_describe_reports_key_settings(self):
        description = ProtocolConfig().describe()
        assert "logging_strategy" in description
        assert "replication_period" in description


class TestWorkloads:
    def test_synthetic_metrics_nan_before_run(self):
        workload = SyntheticWorkload()
        assert np.isnan(workload.submission_time)
        assert np.isnan(workload.makespan)

    def test_alcatel_durations_are_deterministic_per_seed(self):
        a = AlcatelWorkload(n_tasks=100, seed=1).durations()
        b = AlcatelWorkload(n_tasks=100, seed=1).durations()
        c = AlcatelWorkload(n_tasks=100, seed=2).durations()
        assert np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_alcatel_distribution_is_wide_and_right_skewed(self):
        workload = AlcatelWorkload(n_tasks=1000, seed=42)
        stats = workload.duration_stats()
        assert stats["max"] > 4 * stats["median"]
        assert stats["mean"] > stats["median"]
        assert stats["min"] > 0

    def test_alcatel_histogram_counts_sum_to_tasks(self):
        workload = AlcatelWorkload(n_tasks=500, seed=3)
        counts, edges = workload.duration_histogram(bins=15)
        assert counts.sum() == 500
        assert len(edges) == 16

    def test_geometric_sizes_are_increasing_and_span_decades(self):
        sizes = geometric_sizes(100, 100_000_000)
        assert sizes == sorted(sizes)
        assert sizes[0] == 100
        assert sizes[-1] == 100_000_000

    def test_geometric_counts_default(self):
        assert geometric_counts() == [1, 10, 100, 1000]

    def test_fault_frequencies_range(self):
        frequencies = fault_frequencies(10.0, 2.0)
        assert frequencies[0] == 0.0
        assert frequencies[-1] == 10.0

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            geometric_sizes(0, 10)
        with pytest.raises(ValueError):
            geometric_counts(10, 1)
        with pytest.raises(ValueError):
            fault_frequencies(-1.0)


class TestAnalysis:
    def test_makespan_overhead(self):
        assert makespan_overhead(69.0, 60.0) == pytest.approx(0.15)
        with pytest.raises(ValueError):
            makespan_overhead(1.0, 0.0)

    def test_completion_curve_lag(self):
        lag = completion_curve_lag([0, 10, 20, 30], [0, 0, 20, 30])
        assert lag["max_lag_tasks"] == 10
        assert lag["final_gap_tasks"] == 0

    def test_completion_curve_lag_shape_mismatch(self):
        with pytest.raises(ValueError):
            completion_curve_lag([1, 2], [1, 2, 3])

    def test_plateaux_count(self):
        assert plateaux_count([0, 0, 1, 1, 1, 2, 3, 3]) == 3
        assert plateaux_count([1, 2, 3, 4]) == 0
        assert plateaux_count([]) == 0

    def test_summarize_series(self):
        series = TimeSeries("s")
        series.record(0.0, 0.0)
        series.record(10.0, 5.0)
        summary = summarize_series(series)
        assert summary["samples"] == 2
        assert summary["final_value"] == 5.0

    def test_summarize_empty_series(self):
        assert summarize_series(TimeSeries("empty"))["samples"] == 0

    def test_mean_and_format_rows(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        table = format_rows([{"a": 1, "b": 2.5}], title="t")
        assert "a" in table and "t" in table


class TestRealTimeDriver:
    def test_paces_events_against_wall_clock(self):
        env = Environment()
        sleeps: list[float] = []
        clock = {"now": 0.0}

        def fake_sleep(duration: float) -> None:
            sleeps.append(duration)
            clock["now"] += duration

        def fake_clock() -> float:
            return clock["now"]

        env.timeout(1.0)
        env.timeout(2.0)
        driver = RealTimeDriver(env, speedup=2.0, sleep=fake_sleep, clock=fake_clock)
        processed = driver.run(until=2.0)
        assert processed == 2
        assert env.now == 2.0
        assert sum(sleeps) == pytest.approx(1.0)  # 2 virtual seconds at 2x speed

    def test_invalid_speedup_rejected(self):
        with pytest.raises(ConfigurationError):
            RealTimeDriver(Environment(), speedup=0.0)


class TestExperimentSmoke:
    def test_fig4_rows_have_three_strategies(self):
        rows = run_fig4_vs_size(sizes=[1000], n_calls=2)
        assert len(rows) == 1
        row = rows[0]
        for strategy in LoggingStrategy:
            assert row[strategy.value] > 0

    def test_fig5_replication_time_grows_with_count(self):
        rows = run_fig5_vs_count(counts=[2, 64], environments=("confined",))
        assert rows[1]["confined"] > rows[0]["confined"]

    def test_fig6_reports_both_directions(self):
        rows = run_fig6_vs_calls(counts=[2])
        assert rows[0]["client_logs"] > 0
        assert rows[0]["coordinator_logs"] > 0

    def test_fig7_small_scale_monotonic_in_presence_of_faults(self):
        rows = run_fig7(
            frequencies=[0.0, 10.0],
            seeds=(3,),
            n_calls=8,
            exec_time=2.0,
            n_servers=4,
            n_coordinators=2,
            horizon=2000.0,
        )
        assert rows[0]["faulty_servers_seconds"] <= rows[1]["faulty_servers_seconds"]
        assert rows[1]["faulty_servers_completed"]

    def test_fig8_histogram_covers_all_tasks(self):
        result = run_fig8(n_tasks=200, bins=10)
        assert sum(r["tasks"] for r in result["histogram"]) == 200
        assert result["stats"]["count"] == 200

    def test_detector_ablation_tradeoff(self):
        rows = run_detector_ablation(
            heartbeat_periods=(5.0,), timeout_multipliers=(2.0, 12.0)
        )
        tight, loose = rows[0], rows[1]
        # A tighter timeout detects faster but is (weakly) more suspicious.
        assert tight["detection_latency_seconds"] <= loose["detection_latency_seconds"]
        assert tight["wrong_suspicion_checks"] >= loose["wrong_suspicion_checks"]

    def test_baseline_ablation_reports_all_systems(self):
        rows = run_baseline_ablation(
            faults_per_minute=0.0, seeds=(3,), n_calls=8, exec_time=1.0, horizon=1000.0
        )
        assert {row["system"] for row in rows} == {
            "rpc-v",
            "no-replication",
            "netsolve-style",
        }
        assert all(row["mean_completion_ratio"] == 1.0 for row in rows)
