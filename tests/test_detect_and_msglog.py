"""Tests for failure detection and message logging."""

from __future__ import annotations

import pytest

from repro.config import FaultDetectionConfig, LoggingConfig
from repro.detect.detector import FailureDetector
from repro.detect.heartbeat import HeartbeatEmitter
from repro.errors import LogCorruption
from repro.msglog.garbage import GarbageCollector
from repro.msglog.log import MessageLog
from repro.msglog.strategies import LoggingEngine
from repro.net.message import MessageType
from repro.net.transport import Network
from repro.nodes.node import Host
from repro.sim.rng import RandomStreams
from repro.types import Address, LoggingStrategy

S = Address("server", "s0")
K = Address("coordinator", "k0")


def make_host(env, name="h0", kind="client"):
    network = Network(env)
    return Host(env, network, Address(kind, name), rng=RandomStreams(0))


class TestFailureDetector:
    def _detector(self, timeout=30.0):
        return FailureDetector(
            FaultDetectionConfig(heartbeat_period=5.0, suspicion_timeout=timeout)
        )

    def test_unknown_subject_not_suspected(self):
        detector = self._detector()
        assert not detector.is_suspected(S, 100.0)

    def test_suspected_after_silence(self):
        detector = self._detector()
        detector.heard_from(S, 0.0)
        assert not detector.is_suspected(S, 20.0)
        assert detector.is_suspected(S, 31.0)

    def test_rehabilitated_on_new_message(self):
        detector = self._detector()
        detector.heard_from(S, 0.0)
        assert detector.is_suspected(S, 40.0)
        detector.heard_from(S, 41.0)
        assert not detector.is_suspected(S, 42.0)

    def test_silence_reported(self):
        detector = self._detector()
        detector.heard_from(S, 10.0)
        assert detector.silence(S, 25.0) == 15.0
        assert detector.silence(K, 25.0) == float("inf")

    def test_suspected_set_and_unsuspected_filter(self):
        detector = self._detector()
        detector.heard_from(S, 0.0)
        detector.heard_from(K, 29.0)
        assert detector.suspected_set(40.0) == {S}
        assert detector.unsuspected([S, K], 40.0) == [K]

    def test_history_records_transitions(self):
        detector = self._detector()
        detector.heard_from(S, 0.0)
        detector.is_suspected(S, 40.0)
        detector.heard_from(S, 41.0)
        assert detector.suspicion_transitions() == 2

    def test_wrong_suspicion_accounting_with_ground_truth(self):
        detector = FailureDetector(
            FaultDetectionConfig(heartbeat_period=5.0, suspicion_timeout=30.0),
            ground_truth=lambda _subject: True,  # actually up
        )
        detector.heard_from(S, 0.0)
        detector.is_suspected(S, 40.0)
        assert detector.wrong_suspicions == 1

    def test_watch_and_unwatch(self):
        detector = self._detector()
        detector.watch(S, 0.0)
        assert S in detector.monitored()
        detector.unwatch(S)
        assert S not in detector.monitored()


class TestHeartbeatEmitter:
    def test_emits_periodically_to_targets(self, env):
        host = make_host(env, kind="server")
        network = host.network
        target = Host(env, network, K, rng=RandomStreams(1))
        emitter = HeartbeatEmitter(
            host=host,
            config=FaultDetectionConfig(heartbeat_period=5.0, suspicion_timeout=30.0),
            mtype=MessageType.SERVER_HEARTBEAT,
            targets=lambda: [K],
        )
        emitter.start()
        env.run(until=30.0)
        assert emitter.sent >= 4
        assert target.endpoint.delivered >= 4

    def test_skips_none_and_self_targets(self, env):
        host = make_host(env, kind="server")
        emitter = HeartbeatEmitter(
            host=host,
            config=FaultDetectionConfig(),
            mtype=MessageType.SERVER_HEARTBEAT,
            targets=lambda: [None, host.address],
        )
        assert emitter.beat_now() == 0

    def test_stops_when_host_crashes(self, env):
        host = make_host(env, kind="server")
        Host(env, host.network, K, rng=RandomStreams(1))
        emitter = HeartbeatEmitter(
            host=host,
            config=FaultDetectionConfig(heartbeat_period=5.0, suspicion_timeout=30.0),
            mtype=MessageType.SERVER_HEARTBEAT,
            targets=lambda: [K],
        )
        emitter.start()
        env.run(until=12.0)
        sent_before = emitter.sent
        host.crash()
        env.run(until=60.0)
        assert emitter.sent == sent_before
        # The crash also reclaimed the pending beat timer.
        assert emitter.pending_timer is None

    def test_stop_cancels_pending_beat_timer(self, env):
        host = make_host(env, kind="server")
        Host(env, host.network, K, rng=RandomStreams(1))
        emitter = HeartbeatEmitter(
            host=host,
            config=FaultDetectionConfig(heartbeat_period=5.0, suspicion_timeout=30.0),
            mtype=MessageType.SERVER_HEARTBEAT,
            targets=lambda: [K],
        )
        emitter.start()
        env.run(until=12.0)
        sent_before = emitter.sent
        emitter.stop()
        env.run(until=60.0)
        assert emitter.sent == sent_before
        assert emitter.pending_timer is None
        emitter.stop()  # idempotent

    def test_payload_snapshotted_per_beat(self, env):
        host = make_host(env, kind="server")
        target = Host(env, host.network, K, rng=RandomStreams(1))
        live_state = {"coordinators": ["k0"]}
        emitter = HeartbeatEmitter(
            host=host,
            config=FaultDetectionConfig(),
            mtype=MessageType.SERVER_HEARTBEAT,
            targets=lambda: [K],
            payload=lambda: live_state,
        )
        assert emitter.beat_now() == 1
        # Mutating the emitter's live nested state after the beat must not
        # rewrite the payload already on the wire.
        live_state["coordinators"].append("k1")
        env.run()
        message = target.endpoint.try_recv()
        assert message is not None
        assert message.payload["coordinators"] == ["k0"]


class TestMessageLog:
    def test_append_then_durable_then_acked(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        log.append(1, {"x": 1}, 100)
        assert 1 in log
        assert log.durable_keys() == set()
        log.mark_durable(1)
        assert log.durable_keys() == {1}
        log.mark_acked(1)
        assert log.unacked_durable() == []

    def test_duplicate_key_rejected(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        log.append(1, {}, 10)
        with pytest.raises(LogCorruption):
            log.append(1, {}, 10)

    def test_mark_durable_unknown_key_rejected(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        with pytest.raises(LogCorruption):
            log.mark_durable(99)

    def test_buffered_records_lost_on_crash_durable_survive(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        log.append(1, {"payload": "durable"}, 10)
        log.mark_durable(1)
        log.append(2, {"payload": "buffered"}, 10)
        host.crash()
        host.restart()
        recovered = MessageLog(host, "out")
        assert recovered.durable_keys() == {1}
        assert 2 not in recovered

    def test_max_durable_key(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        assert log.max_durable_key(default=0) == 0
        for key in (3, 1, 7):
            log.append(key, {}, 1)
            log.mark_durable(key)
        assert log.max_durable_key() == 7

    def test_ack_for_forgotten_record_is_noop(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        log.mark_acked(123)  # never logged; must not raise

    def test_byte_accounting(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        log.append(1, {}, 100)
        log.mark_durable(1)
        log.append(2, {}, 50)
        assert log.durable_bytes() == 100
        assert log.total_bytes() == 150

    def test_replay_payloads_in_key_order(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        for key in (2, 1):
            log.append(key, {"k": key}, 10)
            log.mark_durable(key)
        assert log.replay_payloads([1, 2]) == [{"k": 1}, {"k": 2}]

    def test_integrity_check_passes_on_normal_log(self, env):
        host = make_host(env)
        log = MessageLog(host, "out")
        log.append(1, {}, 10)
        log.mark_durable(1)
        log.append(2, {}, 10)
        log.check_integrity()


class TestLoggingStrategies:
    def _engine(self, env, strategy):
        host = make_host(env)
        log = MessageLog(host, "out")
        return host, log, LoggingEngine(host, log, LoggingConfig(strategy=strategy))

    def _run(self, env, engine, size=1_000_000):
        def proc():
            token = yield from engine.before_send(1, {"p": 1}, size)
            before_send_done = engine.host.env.now
            yield from engine.after_send(token)
            return before_send_done, engine.host.env.now

        process = engine.host.spawn(proc())
        env.run()
        return process.value

    def test_blocking_pays_full_write_before_send(self, env):
        host, log, engine = self._engine(env, LoggingStrategy.PESSIMISTIC_BLOCKING)
        before, _after = self._run(env, engine)
        assert before == pytest.approx(host.disk.sync_write_time(1_000_000))
        assert log.get(1).durable

    def test_optimistic_barely_delays_send(self, env):
        host, log, engine = self._engine(env, LoggingStrategy.OPTIMISTIC)
        before, after = self._run(env, engine)
        assert before < 0.2 * host.disk.sync_write_time(1_000_000)
        assert after == before  # no post-send wait either

    def test_optimistic_record_becomes_durable_later(self, env):
        host, log, engine = self._engine(env, LoggingStrategy.OPTIMISTIC)
        self._run(env, engine)
        env.run()
        assert log.get(1).durable

    def test_non_blocking_waits_at_most_cached_time(self, env):
        host, log, engine = self._engine(env, LoggingStrategy.PESSIMISTIC_NON_BLOCKING)
        before, after = self._run(env, engine)
        assert before == 0.0
        assert after <= host.disk.sync_write_time(1_000_000)
        assert log.get(1).durable

    def test_blocking_overhead_ordering(self, env):
        results = {}
        for strategy in LoggingStrategy:
            host, _log, engine = self._engine(env, strategy)
            self._run(env, engine, size=10_000_000)
            results[strategy] = engine.blocking_overhead
        assert (
            results[LoggingStrategy.PESSIMISTIC_BLOCKING]
            > results[LoggingStrategy.PESSIMISTIC_NON_BLOCKING]
            >= 0.0
        )
        assert (
            results[LoggingStrategy.OPTIMISTIC]
            < results[LoggingStrategy.PESSIMISTIC_BLOCKING]
        )

    def test_crash_before_background_write_loses_record(self, env):
        host, log, engine = self._engine(env, LoggingStrategy.OPTIMISTIC)

        def proc():
            yield from engine.before_send(1, {"p": 1}, 50_000_000)

        host.spawn(proc())
        env.run(until=0.01)
        host.crash()
        env.run()
        recovered = MessageLog(host, "out")
        assert 1 not in recovered.durable_keys()


class TestGarbageCollection:
    def _log_with_records(self, env, n=10, size=100, acked=True):
        host = make_host(env)
        log = MessageLog(host, "out")
        for key in range(n):
            log.append(key, {}, size)
            log.mark_durable(key)
            if acked:
                log.mark_acked(key)
        return log

    def test_no_collection_under_capacity(self, env):
        log = self._log_with_records(env)
        collector = GarbageCollector(log, LoggingConfig(capacity_bytes=10_000))
        report = collector.maybe_collect()
        assert not report.triggered
        assert len(log) == 10

    def test_collection_flushes_acked_records(self, env):
        log = self._log_with_records(env, n=10, size=100)
        collector = GarbageCollector(
            log, LoggingConfig(capacity_bytes=500, gc_target_fraction=0.5)
        )
        report = collector.maybe_collect()
        assert report.triggered
        assert report.records_flushed > 0
        assert log.total_bytes() <= 500

    def test_unacked_records_never_flushed(self, env):
        log = self._log_with_records(env, n=10, size=100, acked=False)
        collector = GarbageCollector(
            log, LoggingConfig(capacity_bytes=500, gc_target_fraction=0.5)
        )
        report = collector.collect()
        assert report.records_flushed == 0
        assert len(log) == 10

    def test_stall_preference_reported(self, env):
        log = self._log_with_records(env, n=10, size=100, acked=False)
        collector = GarbageCollector(
            log,
            LoggingConfig(
                capacity_bytes=500, gc_target_fraction=0.5, prefer_stall_over_flush=True
            ),
        )
        report = collector.collect()
        assert report.should_stall
