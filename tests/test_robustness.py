"""Tests for the robustness layer: detection policies, quorum replication,
the trace/correlated fault space, and common-random-numbers pairing."""

from __future__ import annotations

import pytest

from repro.config import FaultDetectionConfig, PolicyConfig, ProtocolConfig
from repro.core.protocol import CallDescription
from repro.detect import FailureDetector
from repro.errors import ConfigurationError
from repro.grid.builder import build_confined_cluster
from repro.nodes.churn import TraceChurn
from repro.policies import (
    AdaptiveTimeoutDetection,
    FixedTimeoutDetection,
    PhiAccrualDetection,
    QuorumReplication,
)
from repro.scenarios.engine import benchmark_cell
from repro.scenarios.runner import SweepRunner
from repro.scenarios.spec import Axis, CellResult, ScenarioSpec
from repro.sim.rng import RandomStreams
from repro.types import Address, CallIdentity, RPCId, SessionId, UserId


def _call(rpc: int = 1, exec_time: float = 1.0) -> CallDescription:
    return CallDescription(
        identity=CallIdentity(user=UserId("u"), session=SessionId("s"), rpc=RPCId(rpc)),
        service="sleep",
        params_bytes=64,
        exec_time=exec_time,
    )


# --------------------------------------------------------------------- churn
class TestTraceChurn:
    def test_empty_trace_is_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceChurn(pairs=())

    def test_empty_trace_file_is_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("# only a comment\n\n")
        with pytest.raises(ConfigurationError, match="no intervals"):
            TraceChurn.from_csv(str(path))

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ConfigurationError, match="wrap or clamp"):
            TraceChurn(pairs=[(1.0, 1.0)], mode="bounce")

    def test_overlapping_intervals_are_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("s0,0,50\ns0,40,90\n")
        with pytest.raises(ConfigurationError, match="overlapping"):
            TraceChurn.from_csv(str(path))

    def test_degenerate_interval_is_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("s0,30,30\n")
        with pytest.raises(ConfigurationError, match="up < down"):
            TraceChurn.from_csv(str(path))

    def test_malformed_row_is_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("s0,ten,20\n")
        with pytest.raises(ConfigurationError, match="non-numeric"):
            TraceChurn.from_csv(str(path))

    def test_wrap_cycles_the_pairs(self):
        rng = RandomStreams(0)
        model = TraceChurn(pairs=[(10.0, 5.0), (20.0, 2.0)], mode="wrap")
        seen = [
            (model.uptime(rng, "n"), model.downtime(rng, "n")) for _ in range(4)
        ]
        assert seen == [(10.0, 5.0), (20.0, 2.0), (10.0, 5.0), (20.0, 2.0)]

    def test_clamp_departs_permanently(self):
        rng = RandomStreams(0)
        model = TraceChurn(pairs=[(10.0, 5.0)], mode="clamp")
        assert model.uptime(rng, "n") == 10.0
        assert model.downtime(rng, "n") == 5.0
        # The trace is exhausted: the node never crashes again.
        assert model.uptime(rng, "n") == float("inf")

    def test_from_csv_converts_absolute_intervals(self, tmp_path):
        path = tmp_path / "trace.csv"
        # Up [30, 60] and [100, 120]: starts down, 40 s gap between intervals.
        path.write_text("s0,30,60\ns0,100,120\n")
        model = TraceChurn.from_csv(str(path), mode="wrap")
        rng = RandomStreams(0)
        # Lead pair: down until the first interval starts.
        assert (model.uptime(rng, "s0"), model.downtime(rng, "s0")) == (0.0, 30.0)
        assert (model.uptime(rng, "s0"), model.downtime(rng, "s0")) == (30.0, 40.0)
        # Wrap: the final downtime returns to the first interval's start.
        assert (model.uptime(rng, "s0"), model.downtime(rng, "s0")) == (20.0, 30.0)
        # The lead pair does not repeat on later cycles.
        assert (model.uptime(rng, "s0"), model.downtime(rng, "s0")) == (30.0, 40.0)

    def test_from_csv_clamp_never_returns(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("s0,0,60\n")
        model = TraceChurn.from_csv(str(path), mode="clamp")
        rng = RandomStreams(0)
        assert model.uptime(rng, "s0") == 60.0
        assert model.downtime(rng, "s0") == float("inf")

    def test_full_address_falls_back_to_bare_name(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("s000,0,25\n")
        model = TraceChurn.from_csv(str(path))
        rng = RandomStreams(0)
        assert model.uptime(rng, "server:s000") == 25.0

    def test_uncovered_node_never_churns(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("s000,0,25\n")
        model = TraceChurn.from_csv(str(path))
        rng = RandomStreams(0)
        assert model.uptime(rng, "server:s999") == float("inf")


# --------------------------------------------------------- detection policies
class TestDetectionPolicies:
    config = FaultDetectionConfig(heartbeat_period=5.0, suspicion_timeout=30.0)

    def test_fixed_timeout_defers_to_the_config(self):
        policy = FixedTimeoutDetection()
        assert not policy.suspects("x", 29.9, self.config)
        assert policy.suspects("x", 30.1, self.config)

    def test_fixed_timeout_explicit_override(self):
        policy = FixedTimeoutDetection(timeout=10.0)
        assert policy.suspects("x", 10.1, self.config)

    def test_adaptive_uses_fixed_rule_below_min_samples(self):
        policy = AdaptiveTimeoutDetection(min_samples=3)
        policy.observe("x", 5.0)
        assert not policy.suspects("x", 29.0, self.config)
        assert policy.suspects("x", 31.0, self.config)

    def test_adaptive_tightens_after_regular_gaps(self):
        policy = AdaptiveTimeoutDetection(k=4.0, min_samples=3)
        for _ in range(20):
            policy.observe("x", 5.0)
        threshold = policy.threshold("x", self.config)
        # Regular 5 s gaps: the learned threshold sits at the floor
        # (2 heart-beat periods), far under the 30 s fixed timeout.
        assert threshold < 30.0
        assert threshold >= 10.0
        assert policy.suspects("x", threshold + 0.1, self.config)

    def test_adaptive_forget_resets_the_estimate(self):
        policy = AdaptiveTimeoutDetection(min_samples=1)
        policy.observe("x", 5.0)
        policy.forget("x")
        assert not policy.suspects("x", 29.0, self.config)

    def test_phi_never_slower_than_the_fixed_timeout(self):
        policy = PhiAccrualDetection()
        # No samples at all: silence beyond the fixed timeout still suspects.
        assert policy.suspects("x", 30.1, self.config)

    def test_phi_suspects_early_on_improbable_silence(self):
        policy = PhiAccrualDetection(threshold=8.0, min_samples=10)
        for _ in range(50):
            policy.observe("x", 5.0)
        assert not policy.suspects("x", 5.5, self.config)
        # 20 s of silence against a tight 5 s rhythm: phi blows through the
        # threshold long before the 30 s fixed timeout.
        assert policy.suspects("x", 20.0, self.config)

    def test_parameters_are_validated(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTimeoutDetection(k=-1.0)
        with pytest.raises(ConfigurationError):
            PhiAccrualDetection(window=0)
        with pytest.raises(ConfigurationError):
            QuorumReplication(successors=0)


# ------------------------------------------------------------ detector resets
class TestIncarnationReset:
    def test_restart_within_silence_window_resets_the_detector(self):
        config = FaultDetectionConfig(heartbeat_period=5.0, suspicion_timeout=30.0)
        policy = AdaptiveTimeoutDetection(min_samples=1)
        detector = FailureDetector(config, policy=policy)
        subject = Address("server", "s0")
        detector.watch(subject, 0.0)
        detector.heard_from(subject, 5.0, incarnation=0)
        detector.heard_from(subject, 10.0, incarnation=0)
        # The node dies silently, restarts, and is heard again 100 s later
        # under a fresh incarnation: the 90 s silence belongs to the dead
        # incarnation and must not poison the gap estimate.
        detector.heard_from(subject, 100.0, incarnation=1)
        assert "server:s0" not in policy._estimates or not policy._estimates.get(
            str(subject)
        )
        assert not detector.is_suspected(subject, 101.0)

    def test_same_incarnation_still_observes_gaps(self):
        config = FaultDetectionConfig(heartbeat_period=5.0, suspicion_timeout=30.0)
        policy = AdaptiveTimeoutDetection(min_samples=1)
        detector = FailureDetector(config, policy=policy)
        subject = Address("server", "s0")
        detector.watch(subject, 0.0)
        detector.heard_from(subject, 5.0, incarnation=0)
        detector.heard_from(subject, 10.0, incarnation=0)
        assert policy._estimates  # the 5 s gap was learned


# --------------------------------------------------------- quorum replication
class TestQuorumReplication:
    def _protocol(self, **params) -> ProtocolConfig:
        protocol = ProtocolConfig()
        protocol.policy = PolicyConfig(
            replication={"name": "policy.repl.quorum", "params": params}
        )
        return protocol

    def test_quorum_for_clamps_to_available_targets(self):
        policy = QuorumReplication(successors=2)
        assert policy.quorum_for(2) == 2
        assert policy.quorum_for(1) == 1  # a lone survivor still commits

    def test_rounds_commit_and_reach_the_backups(self):
        grid = build_confined_cluster(
            n_servers=2,
            n_coordinators=3,
            protocol=self._protocol(period=2.0),
            seed=3,
        )
        grid.start()
        assert isinstance(grid.coordinators[0].replication_policy, QuorumReplication)
        grid.coordinators[0].preload_tasks([_call()])
        grid.run(until=30.0)
        assert grid.monitor.count("coordinator.quorum_commits") >= 1
        assert grid.monitor.count("policy.repl.quorum.rounds") >= 1
        # Majority commit: both ring successors saw the state abstract.
        assert len(grid.coordinators[1].tasks) == 1
        assert len(grid.coordinators[2].tasks) == 1

    def test_ring_successors_skip_suspected_coordinators(self):
        grid = build_confined_cluster(
            n_servers=2, n_coordinators=3, protocol=self._protocol(), seed=3
        )
        grid.start()
        coordinator = grid.coordinators[0]
        ring = coordinator.registry.ring_successors(coordinator.address, 2)
        assert len(ring) == 2
        coordinator.registry.suspect(ring[0])
        assert coordinator.registry.ring_successors(coordinator.address, 2) == [
            ring[1]
        ]


# ------------------------------------------------------- on-commit backoff fix
class TestOnCommitBackoff:
    def test_no_successor_backoff_uses_the_policy_interval(self):
        protocol = ProtocolConfig()
        protocol.coordinator.replication.period = 500.0  # passive period is huge
        protocol.policy = PolicyConfig(
            replication={"name": "policy.repl.on-commit", "params": {"backoff": 2.0}}
        )
        grid = build_confined_cluster(
            n_servers=1, n_coordinators=1, protocol=protocol, seed=3
        )
        grid.start()
        grid.coordinators[0].preload_tasks([_call()])
        grid.run(until=21.0)
        # With the fix the solitary coordinator retries every 2 s; reading
        # the passive period instead would allow at most one round in 21 s.
        assert grid.monitor.count("policy.repl.on-commit.rounds") >= 5


# ------------------------------------------------------------------ CRN seeds
class TestCommonRandomNumbers:
    def test_crn_streams_pair_across_master_seeds(self):
        one = RandomStreams(1, crn_seed=7)
        two = RandomStreams(2, crn_seed=7)
        assert [one.exponential("crn.faults", 10.0) for _ in range(5)] == [
            two.exponential("crn.faults", 10.0) for _ in range(5)
        ]
        assert one.fingerprint(("crn.",)) == two.fingerprint(("crn.",))
        # Non-CRN streams still differ with the master seed.
        assert one.exponential("work", 10.0) != two.exponential("work", 10.0)

    def test_without_crn_seed_the_master_seed_keys_everything(self):
        one = RandomStreams(1)
        two = RandomStreams(2)
        assert one.exponential("crn.faults", 10.0) != two.exponential(
            "crn.faults", 10.0
        )

    def test_spawn_propagates_the_crn_seed(self):
        parent = RandomStreams(1, crn_seed=7)
        assert parent.spawn("child").crn_seed == 7

    def test_fingerprint_reflects_draw_counts(self):
        one = RandomStreams(1, crn_seed=7)
        two = RandomStreams(2, crn_seed=7)
        one.exponential("crn.faults", 10.0)
        assert one.fingerprint(("crn.",)) != two.fingerprint(("crn.",))


# ------------------------------------------------------------ correlated faults
class TestCorrelatedFaults:
    def test_groups_fail_and_recover_together(self):
        grid = build_confined_cluster(
            n_servers=4,
            n_coordinators=2,
            seed=3,
            components=[
                {
                    "name": "inject.correlated",
                    "params": {
                        "target": "servers",
                        "group_size": 2,
                        "rate_per_minute": 20.0,
                        "mttr": 5.0,
                    },
                }
            ],
        )
        grid.start()
        grid.run(until=120.0)
        kills = grid.monitor.count("correlated.kills")
        events = grid.monitor.count("correlated.events")
        assert events >= 1
        # Whole groups of 2 go down per event (already-down members excepted).
        assert kills >= events
        assert grid.monitor.count("correlated.restarts") >= 1


# ---------------------------------------------------------------- paired axes
def test_paired_axes_must_name_real_axes():
    with pytest.raises(ConfigurationError, match="paired_axes"):
        ScenarioSpec(
            name="bad-pairing",
            title="t",
            cell=benchmark_cell,
            axes=(Axis("x", (1, 2)),),
            paired_axes=("nope",),
        )


def _paired_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="paired-probe",
        title="CRN pairing probe",
        cell=benchmark_cell,
        base=dict(
            n_calls=4,
            exec_time=1.0,
            n_servers=2,
            n_coordinators=2,
            fault_kind="rate",
            fault_target="servers",
            faults_per_minute=6.0,
            restart_delay=2.0,
            horizon=120.0,
            run_full_horizon=True,
            record_fault_streams=True,
            crn_seed=11,
        ),
        axes=(
            Axis(
                "scheduler_policy",
                ("policy.sched.fifo-reschedule", "policy.sched.round-robin"),
            ),
        ),
        seeds=(1,),
        paired_axes=("scheduler_policy",),
    )


class TestPairedSweeps:
    def test_paired_arms_share_identical_fault_streams(self):
        result = SweepRunner(_paired_spec(), jobs=1).run()
        streams = [cell["outputs"]["fault_streams"] for cell in result.cells]
        assert streams[0] == streams[1]
        assert streams[0]  # the rate injector did draw from its streams

    def test_manifest_stamps_paired_axes(self):
        spec = _paired_spec()
        assert spec.manifest()["paired_axes"] == ["scheduler_policy"]
        plain = ScenarioSpec(name="plain", title="t", cell=benchmark_cell)
        assert "paired_axes" not in plain.manifest()

    def test_divergent_fault_streams_fail_the_sweep(self):
        runner = SweepRunner(_paired_spec(), jobs=1)
        results = [
            CellResult(
                index=i,
                params={"scheduler_policy": policy, "other": 1},
                seed=1,
                outputs={"fault_streams": {"crn.x": fingerprint}},
            )
            for i, (policy, fingerprint) in enumerate(
                [("a", "aaaa"), ("b", "bbbb")]
            )
        ]
        with pytest.raises(ConfigurationError, match="diverge"):
            runner._assert_paired(results)

    def test_missing_fingerprints_fail_the_sweep(self):
        runner = SweepRunner(_paired_spec(), jobs=1)
        results = [
            CellResult(
                index=i,
                params={"scheduler_policy": policy},
                seed=1,
                outputs={"makespan": 1.0},
            )
            for i, policy in enumerate(["a", "b"])
        ]
        with pytest.raises(ConfigurationError, match="record_fault_streams"):
            runner._assert_paired(results)

    def test_unknown_runner_paired_axis_is_rejected(self):
        with pytest.raises(ConfigurationError, match="not axes"):
            SweepRunner(_paired_spec(), jobs=1, paired_axes=("nope",))
