"""Tests for the declarative scenario engine (spec, registry, runner, store, CLI)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import main
from repro.core.protocol import CallDescription
from repro.errors import ConfigurationError
from repro.grid.builder import build_confined_cluster
from repro.scenarios import (
    Axis,
    ResultsStore,
    ScenarioSpec,
    all_scenarios,
    benchmark_cell,
    get_scenario,
    run_scenario,
)
from repro.scenarios.engine import apply_protocol_overrides, resolve_protocol
from repro.scenarios.runner import SweepRunner
from repro.types import CallIdentity, RPCId, SessionId, TaskState, UserId

EXPECTED_SCENARIOS = {
    "fig4-size", "fig4-calls", "fig5-size", "fig5-count", "fig6-size",
    "fig6-calls", "fig7", "fig8", "fig9", "fig10", "fig11",
    "ablation-baselines", "ablation-detector", "churn-survival",
    "sched-ablation",
}

#: fast overrides for the fig7 sweep used by the determinism tests.
FIG7_MICRO = dict(
    axes={"faults_per_minute": [0.0, 6.0]},
    seeds=(7,),
    params=dict(n_calls=8, exec_time=2.0, n_servers=4, n_coordinators=2,
                horizon=1500.0),
)


class TestRegistry:
    def test_every_figure_is_registered(self):
        assert EXPECTED_SCENARIOS <= set(all_scenarios())

    def test_get_scenario_round_trip(self):
        for name in EXPECTED_SCENARIOS:
            spec = get_scenario(name)
            assert spec.name == name
            assert callable(spec.cell)
            assert "tiny" in spec.scales

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("fig99")

    def test_duplicate_registration_raises(self):
        spec = get_scenario("fig7")
        clone = dataclasses.replace(spec)
        from repro.scenarios.registry import register

        with pytest.raises(ConfigurationError, match="already registered"):
            register(clone)


class TestSpecResolution:
    def test_cells_are_the_cartesian_product_times_seeds(self):
        spec = get_scenario("fig7")
        plan = spec.resolve()
        n_freqs = len(plan.axes[0].values)
        assert plan.n_cells == n_freqs * 2 * len(plan.seeds)
        cells = plan.cells()
        assert len(cells) == plan.n_cells
        assert [cell.index for cell in cells] == list(range(plan.n_cells))

    def test_scale_overrides_base_axes_and_seeds(self):
        spec = get_scenario("fig7")
        plan = spec.resolve(scale="tiny")
        assert plan.axes[0].values == (0.0, 4.0, 10.0)
        assert plan.seeds == (7, 11)
        assert plan.base["n_calls"] == 24

    def test_explicit_overrides_beat_the_scale(self):
        spec = get_scenario("fig7")
        plan = spec.resolve(
            scale="tiny", seeds=(1,), axes={"faults_per_minute": [2.0]},
            params={"n_calls": 4},
        )
        assert plan.axes[0].values == (2.0,)
        assert plan.seeds == (1,)
        assert plan.base["n_calls"] == 4

    def test_unknown_scale_and_axis_raise(self):
        spec = get_scenario("fig7")
        with pytest.raises(ConfigurationError, match="no scale"):
            spec.resolve(scale="gigantic")
        with pytest.raises(ConfigurationError, match="no axis"):
            spec.resolve(axes={"bogus": [1]})

    def test_spec_hash_tracks_the_resolution(self):
        spec = get_scenario("fig7")
        assert spec.spec_hash() == spec.spec_hash()
        assert spec.spec_hash() != spec.spec_hash(spec.resolve(scale="tiny"))
        manifest = spec.manifest()
        assert manifest["name"] == "fig7"
        assert manifest["cell"].endswith("benchmark_cell")

    def test_axis_and_spec_validation(self):
        with pytest.raises(ConfigurationError):
            Axis("x", ())
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="bad", title="t", cell=benchmark_cell,
                base={"x": 1}, axes=(Axis("x", (1, 2)),),
            )


class TestProtocolResolution:
    def test_presets_and_dotted_overrides(self):
        protocol = resolve_protocol(
            "rpc-v", {"coordinator.replication.enabled": False}
        )
        assert protocol.coordinator.replication.period == 5.0
        assert not protocol.coordinator.replication.enabled

    def test_bad_paths_and_presets_raise(self):
        with pytest.raises(ConfigurationError, match="unknown protocol path"):
            apply_protocol_overrides(resolve_protocol(), {"coordinator.bogus": 1})
        with pytest.raises(ConfigurationError, match="unknown protocol preset"):
            resolve_protocol("xtremweb")


class TestSweepRunner:
    def test_parallel_rows_equal_sequential_rows(self):
        sequential = run_scenario("fig7", jobs=1, **FIG7_MICRO)
        parallel = run_scenario("fig7", jobs=2, **FIG7_MICRO)
        assert sequential.rows == parallel.rows
        assert [c["outputs"] for c in sequential.cells] == [
            c["outputs"] for c in parallel.cells
        ]

    def test_sequential_runs_are_reproducible(self):
        first = run_scenario("fig7", jobs=1, **FIG7_MICRO)
        second = run_scenario("fig7", jobs=1, **FIG7_MICRO)
        assert first.rows == second.rows
        assert first.spec_hash == second.spec_hash

    def test_default_reduce_is_one_row_per_cell(self):
        spec = ScenarioSpec(
            name="adhoc-sum",
            title="ad-hoc",
            cell=benchmark_cell,
            base=dict(n_calls=2, exec_time=0.5, n_servers=2, n_coordinators=1,
                      horizon=500.0),
            seeds=(0,),
        )
        result = SweepRunner(spec, jobs=1).run()
        assert len(result.rows) == 1
        assert result.rows[0]["seed"] == 0
        assert result.rows[0]["completed"] == 2

    def test_every_registered_scenario_smokes_at_tiny_scale(self):
        for name, spec in all_scenarios().items():
            result = run_scenario(name, scale="tiny", jobs=1)
            assert result.rows, f"{name} produced no rows"
            assert len(result.cells) == spec.resolve(scale="tiny").n_cells
            assert result.scenario == name


class TestResultsStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        result = run_scenario(
            "fig8", scale="tiny", jobs=1, store=store, save=True
        )
        path = result.manifest["artifact"]
        loaded = store.load(path)
        assert loaded.scenario == "fig8"
        assert loaded.rows == result.rows
        assert loaded.spec_hash == result.spec_hash
        assert loaded.seeds == result.seeds
        assert store.latest("fig8").rows == result.rows
        assert store.list_runs("fig8") and store.list_runs()

    def test_schema_mismatch_is_rejected(self, tmp_path):
        store = ResultsStore(tmp_path)
        run_scenario("fig8", scale="tiny", jobs=1, store=store, save=True)
        path = store.list_runs("fig8")[0]
        payload = path.read_text().replace('"schema": 1', '"schema": 99')
        path.write_text(payload)
        with pytest.raises(ConfigurationError, match="schema"):
            store.load(path)


class TestCli:
    def test_list_names_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_SCENARIOS:
            assert name in out

    def test_run_writes_an_artifact(self, tmp_path, capsys):
        code = main(
            ["run", "fig8", "--scale", "tiny", "--jobs", "1",
             "--out", str(tmp_path)]
        )
        assert code == 0
        artifacts = list(tmp_path.glob("fig8/*.json"))
        assert len(artifacts) == 1
        assert "artifact" in capsys.readouterr().out

    def test_report_shows_the_latest_run(self, tmp_path, capsys):
        main(["run", "fig8", "--scale", "tiny", "--jobs", "1",
              "--out", str(tmp_path), "--quiet"])
        capsys.readouterr()
        assert main(["report", "fig8", "--out", str(tmp_path)]) == 0
        assert "fig8" in capsys.readouterr().out
        assert main(["report", "--out", str(tmp_path)]) == 0
        assert "Stored runs" in capsys.readouterr().out


def _fragile_cell(
    seed: int = 0, x: int = 0, state_dir: str = "", fail_at: int | None = None,
    **_: object,
) -> dict:
    """Countable kernel that fails at one axis point until a flag file appears.

    Module-level so it can cross a process boundary; execution counts land in
    per-cell files under ``state_dir`` (one line per execution).
    """
    from pathlib import Path

    marker = Path(state_dir) / f"ran-{x}-s{seed}"
    marker.write_text(marker.read_text() + "x" if marker.exists() else "x")
    if fail_at == x and not (Path(state_dir) / "fixed").exists():
        raise RuntimeError(f"cell x={x} blew up")
    return {"y": 10 * x + seed}


def _fragile_spec(tmp_path, fail_at=None) -> ScenarioSpec:
    return ScenarioSpec(
        name="fragile-sweep",
        title="resume test sweep",
        cell=_fragile_cell,
        base=dict(state_dir=str(tmp_path), fail_at=fail_at),
        axes=(Axis("x", (1, 2, 3)),),
        seeds=(0, 1),
    )


class TestSweepResume:
    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        spec = _fragile_spec(tmp_path, fail_at=3)
        with pytest.raises(RuntimeError, match="blew up"):
            SweepRunner(spec, jobs=1, store=store).run(save=True)
        # Cells before the failure were checkpointed as they finished.
        checkpointed = store.load_cells("fragile-sweep", spec.spec_hash())
        assert {key for key in checkpointed} == {(0, 0), (1, 1), (2, 0), (3, 1)}

        (tmp_path / "fixed").write_text("")  # same parameters, same spec hash
        runner = SweepRunner(spec, jobs=1, store=store, resume=True)
        result = runner.run(save=True)
        assert runner.resumed_cells == 4
        assert result.manifest["resumed_cells"] == 4
        assert [row["y"] for row in result.rows] == [10, 11, 20, 21, 30, 31]
        # Finished cells ran exactly once across both attempts; only the
        # failing axis point (both seeds) ran twice.
        runs = {
            path.name: len(path.read_text())
            for path in tmp_path.glob("ran-*")
        }
        assert runs == {
            "ran-1-s0": 1, "ran-1-s1": 1, "ran-2-s0": 1, "ran-2-s1": 1,
            "ran-3-s0": 2, "ran-3-s1": 1,
        }

    def test_parallel_failure_keeps_finished_checkpoints(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        spec = _fragile_spec(tmp_path, fail_at=2)
        with pytest.raises(RuntimeError, match="blew up"):
            SweepRunner(spec, jobs=3, store=store).run(save=True)
        # Cells that completed before/alongside the failure were still
        # checkpointed; only the failing axis point is absent.
        # All submitted futures are drained before the error re-raises, so
        # every non-failing cell is checkpointed (x=2 is cells 2 and 3).
        checkpointed = store.load_cells("fragile-sweep", spec.spec_hash())
        assert {index for index, _seed in checkpointed} == {0, 1, 4, 5}
        (tmp_path / "fixed").write_text("")
        runner = SweepRunner(spec, jobs=3, store=store, resume=True)
        result = runner.run(save=True)
        assert runner.resumed_cells == len(checkpointed)
        assert [row["y"] for row in result.rows] == [10, 11, 20, 21, 30, 31]

    def test_resume_ignores_other_resolutions(self, tmp_path):
        store = ResultsStore(tmp_path / "results")
        spec = _fragile_spec(tmp_path)
        SweepRunner(spec, jobs=1, store=store).run(save=True)
        # A different resolution (extra seed) has a different spec hash, so
        # nothing is reused even with resume on.
        runner = SweepRunner(
            spec, jobs=1, store=store, resume=True, seeds=(0, 1, 2)
        )
        result = runner.run()
        assert runner.resumed_cells == 0
        assert len(result.cells) == 9

    def test_resume_without_store_is_inert(self, tmp_path):
        spec = _fragile_spec(tmp_path)
        runner = SweepRunner(spec, jobs=1, resume=True)
        assert not runner.resume
        assert len(runner.run().cells) == 6


class TestCliProtocolSelection:
    def test_protocol_and_set_reach_the_kernel(self, tmp_path, capsys):
        base = ["run", "churn-survival", "--scale", "tiny", "--jobs", "1",
                "--out", str(tmp_path), "--quiet"]
        assert main(base) == 0
        assert main(base + ["--protocol", "no-replication"]) == 0
        assert main(base + ["--set",
                            "coordinator.replication.period=30"]) == 0
        out = capsys.readouterr().out
        hashes = {
            line.split("spec ")[-1]
            for line in out.splitlines() if "spec " in line
        }
        # Preset and override each resolve to a distinct spec hash.
        assert len(hashes) == 3

    def test_bad_preset_and_path_fail_fast(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown protocol preset"):
            main(["run", "fig8", "--scale", "tiny", "--jobs", "1",
                  "--out", str(tmp_path), "--protocol", "xtremweb"])
        with pytest.raises(ConfigurationError, match="valid keys"):
            main(["run", "fig8", "--scale", "tiny", "--jobs", "1",
                  "--out", str(tmp_path), "--set", "coordinator.bogus=1"])

    def test_kernels_without_protocol_are_skipped(self, tmp_path, capsys):
        # fig8's bespoke durations kernel takes no protocol keywords.
        code = main(["run", "fig8", "--scale", "tiny", "--jobs", "1",
                     "--out", str(tmp_path), "--protocol", "no-replication"])
        assert code == 0
        assert "takes no protocol, skipping" in capsys.readouterr().out

    def test_cli_resume_skips_checkpointed_cells(self, tmp_path, capsys):
        base = ["run", "fig8", "--scale", "tiny", "--jobs", "1",
                "--out", str(tmp_path), "--quiet"]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        assert "resumed" in capsys.readouterr().out


class TestCoordinatorPreload:
    def _calls(self, n, params_bytes=256):
        return [
            CallDescription(
                identity=CallIdentity(
                    user=UserId("bench"),
                    session=SessionId("preload"),
                    rpc=RPCId(index + 1),
                ),
                service="sleep",
                params_bytes=params_bytes,
                result_bytes=16,
                exec_time=1.0,
            )
            for index in range(n)
        ]

    def test_preload_registers_pending_tasks(self):
        grid = build_confined_cluster(n_servers=1, n_coordinators=2, seed=1)
        grid.start()
        coordinator = grid.coordinators[0]
        keys = coordinator.preload_tasks(self._calls(5))
        assert len(keys) == 5
        for key in keys:
            assert coordinator.tasks[key].state is TaskState.PENDING
            assert coordinator.tasks[key].owner == coordinator.name
            assert key in coordinator._dirty

    def test_preloaded_tasks_are_deterministic_across_runs(self):
        def keys():
            grid = build_confined_cluster(n_servers=1, n_coordinators=2, seed=1)
            grid.start()
            return grid.coordinators[0].preload_tasks(self._calls(3))

        assert keys() == keys()
