"""Tests for RNG streams and monitors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.monitor import Monitor, TimeSeries
from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream_is_reproducible(self):
        a = RandomStreams(42).stream("x").random(5)
        b = RandomStreams(42).stream("x").random(5)
        assert np.allclose(a, b)

    def test_different_names_are_independent(self):
        rng = RandomStreams(42)
        a = rng.stream("a").random(5)
        b = rng.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert not np.allclose(a, b)

    def test_exponential_requires_positive_mean(self):
        with pytest.raises(ValueError):
            RandomStreams(0).exponential("x", 0.0)

    def test_exponential_mean_is_roughly_right(self):
        rng = RandomStreams(7)
        draws = [rng.exponential("mtbf", 10.0) for _ in range(2000)]
        assert 9.0 < np.mean(draws) < 11.0

    def test_choice_from_empty_raises(self):
        with pytest.raises(ValueError):
            RandomStreams(0).choice("x", [])

    def test_choice_returns_member(self):
        options = ["a", "b", "c"]
        assert RandomStreams(0).choice("x", options) in options

    def test_shuffled_preserves_multiset(self):
        items = list(range(10))
        shuffled = RandomStreams(3).shuffled("x", items)
        assert sorted(shuffled) == items

    def test_spawn_creates_independent_factory(self):
        parent = RandomStreams(5)
        child = parent.spawn("node-1")
        assert child.master_seed != parent.master_seed
        assert not np.allclose(
            parent.stream("x").random(3), child.stream("x").random(3)
        )


class TestTimeSeries:
    def test_record_and_final_value(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(2.0, 3.0)
        assert series.final_value() == 3.0
        assert len(series) == 2

    def test_non_monotonic_time_rejected(self):
        series = TimeSeries("s")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 2.0)

    def test_value_at_uses_step_interpolation(self):
        series = TimeSeries("s")
        series.record(1.0, 10.0)
        series.record(5.0, 20.0)
        assert series.value_at(0.5) == 0.0
        assert series.value_at(1.0) == 10.0
        assert series.value_at(4.9) == 10.0
        assert series.value_at(5.0) == 20.0

    def test_resample_on_grid(self):
        series = TimeSeries("s")
        series.record(1.0, 1.0)
        series.record(3.0, 2.0)
        grid = [0.0, 1.0, 2.0, 3.0, 4.0]
        assert list(series.resample(grid)) == [0.0, 1.0, 1.0, 2.0, 2.0]

    def test_resample_empty_series_uses_default(self):
        series = TimeSeries("s")
        assert list(series.resample([0.0, 1.0], default=7.0)) == [7.0, 7.0]


class TestMonitor:
    def test_counters_accumulate(self):
        monitor = Monitor()
        monitor.incr("x")
        monitor.incr("x", 2.5)
        assert monitor.count("x") == 3.5
        assert monitor.count("missing") == 0.0

    def test_gauge_last_write_wins(self):
        monitor = Monitor()
        monitor.gauge("g", 1.0)
        monitor.gauge("g", 9.0)
        assert monitor.gauges["g"] == 9.0

    def test_timeseries_is_created_on_demand(self):
        monitor = Monitor()
        monitor.sample("curve", 1.0, 2.0)
        assert monitor.timeseries("curve").final_value() == 2.0

    def test_traces_filter_by_category(self):
        monitor = Monitor()
        monitor.trace(1.0, "crash", node="a")
        monitor.trace(2.0, "restart", node="a")
        assert len(monitor.traces_of("crash")) == 1

    def test_trace_limit_bounds_memory(self):
        monitor = Monitor()
        monitor.trace_limit = 5
        for i in range(10):
            monitor.trace(float(i), "event")
        assert len(monitor.traces) == 5

    def test_summary_reports_everything(self):
        monitor = Monitor()
        monitor.incr("c")
        monitor.gauge("g", 1.0)
        monitor.sample("s", 0.0, 0.0)
        summary = monitor.summary()
        assert summary["counters"]["c"] == 1.0
        assert summary["series"]["s"] == 1
