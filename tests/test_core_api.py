"""Tests for the GridRPC-compatible facade (`repro.core.api.GridRpc`)."""

from __future__ import annotations

import pytest

from repro.core.api import GridRpc
from repro.errors import RPCError, SessionError
from repro.grid.builder import build_confined_cluster
from repro.types import RPCStatus


def _grid():
    grid = build_confined_cluster(n_servers=2, n_coordinators=2, seed=1)
    grid.start()
    return grid


def _drive(grid, generator, timeout=600.0):
    """Run an application generator on the client host to completion."""
    process = grid.run_process(generator, name="api-test")
    assert grid.run_until(process, timeout=timeout), "application timed out"


class TestLifecycleGuardRails:
    def test_initialize_requires_a_started_client(self):
        grid = build_confined_cluster(n_servers=1, n_coordinators=1)
        api = GridRpc(grid.client)  # grid (and client) not started
        with pytest.raises(SessionError, match="not started"):
            api.initialize()
        assert not api.initialized

    def test_calls_require_initialize(self):
        grid = _grid()
        api = GridRpc(grid.client)

        def application():
            with pytest.raises(SessionError, match="initialize"):
                yield from api.call("sleep", exec_time=0.1)
            with pytest.raises(SessionError, match="initialize"):
                yield from api.call_async("sleep", exec_time=0.1)

        _drive(grid, application())

    def test_finalize_clears_handles_and_initialized(self):
        grid = _grid()
        api = GridRpc(grid.client)
        api.initialize()
        assert api.initialized

        def application():
            handle_id = yield from api.call_async("sleep", exec_time=0.5)
            assert api.handles() == [handle_id]
            yield from api.wait(handle_id)

        _drive(grid, application())
        api.finalize()
        assert not api.initialized
        assert api.handles() == []


class TestHandleBookkeeping:
    def test_call_async_probe_wait(self):
        grid = _grid()
        api = GridRpc(grid.client)
        api.initialize()
        observed = {}

        def application():
            handle_id = yield from api.call_async(
                "sleep", exec_time=2.0, params_bytes=256, result_bytes=32
            )
            observed["early"] = api.probe(handle_id)
            result = yield from api.wait(handle_id)
            observed["late"] = api.probe(handle_id)
            observed["result"] = result
            observed["result_of"] = api.result_of(handle_id)

        _drive(grid, application())
        assert observed["early"] in (RPCStatus.SUBMITTED, RPCStatus.RUNNING)
        assert observed["late"] is RPCStatus.COMPLETED
        assert observed["result"] is not None
        assert observed["result_of"] is observed["result"]

    def test_wait_all_and_wait_any(self):
        grid = _grid()
        api = GridRpc(grid.client)
        api.initialize()
        observed = {}

        def application():
            ids = []
            for index in range(3):
                handle_id = yield from api.call_async(
                    "sleep", exec_time=1.0 + index
                )
                ids.append(handle_id)
            observed["ids"] = ids
            first_id, first_result = yield from api.wait_any(ids)
            observed["first"] = (first_id, first_result)
            observed["all"] = (yield from api.wait_all(ids))
            # wait_any on all-completed handles returns without blocking,
            # picking the first listed completed handle.
            again_id, _ = yield from api.wait_any(ids)
            observed["again"] = again_id

        _drive(grid, application())
        first_id, first_result = observed["first"]
        assert first_id in observed["ids"]
        assert first_result is not None
        assert len(observed["all"]) == 3
        assert observed["again"] == observed["ids"][0]

    def test_unknown_handles_raise(self):
        grid = _grid()
        api = GridRpc(grid.client)
        api.initialize()
        with pytest.raises(RPCError, match="unknown handle"):
            api.probe(424242)
        with pytest.raises(RPCError, match="unknown handle"):
            api.result_of(424242)

    def test_cancel_stops_tracking_only(self):
        grid = _grid()
        api = GridRpc(grid.client)
        api.initialize()
        observed = {}

        def application():
            handle_id = yield from api.call_async("sleep", exec_time=1.0)
            api.cancel(handle_id)
            observed["tracked"] = api.handles()
            with pytest.raises(RPCError, match="unknown handle"):
                api.probe(handle_id)
            api.cancel(handle_id)  # cancelling twice is a no-op
            # At-least-once semantics: the underlying client still completes.
            pending = api._client.pending_handles()
            if pending:
                yield from api._client.wait_all(pending)
            observed["completed"] = api._client.completed_count

        _drive(grid, application())
        assert observed["tracked"] == []
        assert observed["completed"] >= 1

    def test_blocking_call_returns_the_result_record(self):
        grid = _grid()
        api = GridRpc(grid.client)
        api.initialize()
        observed = {}

        def application():
            result = yield from api.call("sleep", exec_time=1.5, result_bytes=48)
            observed["result"] = result

        _drive(grid, application())
        result = observed["result"]
        assert result.size_bytes == 48
        assert str(result.produced_by).startswith("server:")
