"""Property-based tests (hypothesis) on the protocol's core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LoggingConfig
from repro.core.protocol import CallDescription, TaskRecord, identity_to_key
from repro.core.registry import CoordinatorRegistry
from repro.core.replication import build_state, merge_state, state_precedence
from repro.core.session import Session
from repro.core.synchronization import merge_max_timestamps, plan_client_sync, plan_server_sync
from repro.msglog.garbage import GarbageCollector
from repro.msglog.log import MessageLog
from repro.net.transport import Network
from repro.nodes.node import Host
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.types import Address, CallIdentity, RPCId, SessionId, TaskState, UserId

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

key_sets = st.sets(st.integers(min_value=1, max_value=200), max_size=40)

task_states = st.sampled_from(list(TaskState))


def make_task(counter: int, state: TaskState, owner: str = "k0") -> TaskRecord:
    identity = CallIdentity(UserId("u"), SessionId("s"), RPCId(counter))
    call = CallDescription(identity=identity, service="sleep", params_bytes=10, exec_time=1.0)
    return TaskRecord(call=call, state=state, owner=owner, submitted_at=float(counter))


# ---------------------------------------------------------------------------
# Synchronization plans
# ---------------------------------------------------------------------------


class TestSyncPlanProperties:
    @given(client=key_sets, known=key_sets, finished=key_sets)
    @settings(max_examples=60, deadline=None)
    def test_client_sync_plan_partitions_are_disjoint_and_complete(self, client, known, finished):
        plan = plan_client_sync(client, known, finished & known)
        resend = set(plan.client_must_resend)
        lost = set(plan.client_lost)
        # What only the client has must be resent; what only the coordinator
        # has was lost by the client; nothing is in both sets.
        assert resend == client - known
        assert lost == known - client
        assert not (resend & lost)
        # The coordinator's max timestamp bounds everything it knows.
        assert all(k <= plan.coordinator_max_timestamp for k in known)

    @given(server=key_sets, finished=key_sets, assigned=key_sets)
    @settings(max_examples=60, deadline=None)
    def test_server_sync_plan_covers_every_server_key(self, server, finished, assigned):
        plan = plan_server_sync(server, finished, assigned)
        assert set(plan.server_must_resend) | set(plan.already_finished) == server
        assert set(plan.coordinator_must_requeue) == assigned - server - finished

    @given(
        mine=st.dictionaries(st.tuples(st.text(max_size=3), st.text(max_size=3)),
                             st.integers(min_value=0, max_value=100), max_size=10),
        theirs=st.dictionaries(st.tuples(st.text(max_size=3), st.text(max_size=3)),
                               st.integers(min_value=0, max_value=100), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_timestamp_merge_is_monotone_and_idempotent(self, mine, theirs):
        merged = dict(mine)
        merge_max_timestamps(merged, theirs)
        for key, value in mine.items():
            assert merged[key] >= value
        for key, value in theirs.items():
            assert merged.get(key, 0) >= value
        again = dict(merged)
        assert merge_max_timestamps(again, theirs) == 0
        assert again == merged


# ---------------------------------------------------------------------------
# Replication merge
# ---------------------------------------------------------------------------


class TestReplicationProperties:
    @given(
        local_states=st.lists(task_states, min_size=1, max_size=15),
        incoming_states=st.lists(task_states, min_size=1, max_size=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_never_regresses_task_state(self, local_states, incoming_states):
        local = {}
        for index, state in enumerate(local_states):
            task = make_task(index, state)
            local[identity_to_key(task.identity)] = task
        before = {key: task.state for key, task in local.items()}

        incoming_tasks = {}
        for index, state in enumerate(incoming_states):
            task = make_task(index, state, owner="k1")
            incoming_tasks[identity_to_key(task.identity)] = task
        state_abstract = build_state("k1", incoming_tasks, {}, [])

        merge_state(local, {}, state_abstract, key_of=lambda r: identity_to_key(r.identity))
        for key, old_state in before.items():
            assert state_precedence(local[key].state) >= state_precedence(old_state)

    @given(incoming_states=st.lists(task_states, min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_merge_is_idempotent(self, incoming_states):
        incoming_tasks = {}
        for index, state in enumerate(incoming_states):
            task = make_task(index, state, owner="k1")
            incoming_tasks[identity_to_key(task.identity)] = task
        abstract = build_state("k1", incoming_tasks, {}, [])
        local: dict = {}
        merge_state(local, {}, abstract, key_of=lambda r: identity_to_key(r.identity))
        snapshot = {key: task.state for key, task in local.items()}
        outcome = merge_state(local, {}, abstract, key_of=lambda r: identity_to_key(r.identity))
        assert outcome.new_tasks == 0 and outcome.updated_tasks == 0
        assert {key: task.state for key, task in local.items()} == snapshot


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


class TestSessionProperties:
    @given(restores=st.lists(st.integers(min_value=0, max_value=1000), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_timestamps_strictly_increase_across_restores(self, restores):
        session = Session.open("alice")
        issued = []
        for restore in restores:
            issued.append(session.allocate().rpc.value)
            session.restore_counter(restore)
        issued.append(session.allocate().rpc.value)
        assert issued == sorted(issued)
        assert len(set(issued)) == len(issued)


# ---------------------------------------------------------------------------
# Registry / ring
# ---------------------------------------------------------------------------


class TestRegistryProperties:
    @given(
        n=st.integers(min_value=2, max_value=8),
        suspected=st.sets(st.integers(min_value=0, max_value=7), max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_successor_is_never_self_and_never_suspected(self, n, suspected):
        coordinators = [Address("coordinator", f"k{i}") for i in range(n)]
        registry = CoordinatorRegistry(coordinators=list(coordinators))
        for index in suspected:
            if index < n:
                registry.suspect(coordinators[index])
        me = coordinators[0]
        successor = registry.ring_successor(me)
        if successor is not None:
            assert successor != me
            assert successor not in registry.suspected
        else:
            # Only possible when every other coordinator is suspected.
            assert all(c in registry.suspected for c in coordinators if c != me)

    @given(n=st.integers(min_value=1, max_value=8), switches=st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_switch_preferred_always_returns_a_member(self, n, switches):
        coordinators = [Address("coordinator", f"k{i}") for i in range(n)]
        registry = CoordinatorRegistry(coordinators=list(coordinators))
        for _ in range(switches):
            preferred = registry.switch_preferred(away_from=registry.preferred())
            assert preferred in coordinators


# ---------------------------------------------------------------------------
# Message log garbage collection
# ---------------------------------------------------------------------------


class TestGarbageCollectionProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=40),
        acked_mask=st.lists(st.booleans(), min_size=1, max_size=40),
        capacity=st.integers(min_value=500, max_value=20_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_gc_never_flushes_unacked_records(self, sizes, acked_mask, capacity):
        env = Environment()
        host = Host(env, Network(env), Address("client", "c"), rng=RandomStreams(0))
        log = MessageLog(host, "out")
        unacked = set()
        for index, size in enumerate(sizes):
            log.append(index, {}, size)
            log.mark_durable(index)
            if index < len(acked_mask) and acked_mask[index]:
                log.mark_acked(index)
            else:
                unacked.add(index)
        collector = GarbageCollector(log, LoggingConfig(capacity_bytes=capacity))
        collector.maybe_collect()
        # Every unacknowledged record must still be there.
        assert unacked <= log.keys()
        log.check_integrity()
