"""Integration tests: full scenarios on the assembled grid."""

from __future__ import annotations

import pytest

from repro.baselines import netsolve_style_protocol, no_fault_tolerance_protocol
from repro.config import ProtocolConfig
from repro.core.api import GridRpc
from repro.errors import ConfigurationError
from repro.grid.builder import build_confined_cluster, build_internet_testbed
from repro.grid.deployment import confined_cluster_spec, internet_testbed_spec
from repro.grid.runner import run_synthetic_benchmark
from repro.types import LoggingStrategy, RPCStatus, TaskState
from repro.workloads.synthetic import SyntheticWorkload


def small_grid(**kwargs):
    defaults = dict(n_servers=4, n_coordinators=2, seed=1, spread_servers=False)
    defaults.update(kwargs)
    grid = build_confined_cluster(**defaults)
    grid.start()
    return grid


class TestDeploymentSpecs:
    def test_confined_spec_defaults_match_paper(self):
        spec = confined_cluster_spec()
        assert spec.n_servers == 16
        assert spec.n_coordinators == 4
        assert spec.n_clients == 1

    def test_internet_spec_sites(self):
        spec = internet_testbed_spec()
        assert set(spec.servers_per_site) == {"lille", "wisconsin", "orsay"}
        assert spec.protocol.coordinator.replication.period == 60.0

    def test_spec_validation_rejects_unknown_site(self):
        spec = internet_testbed_spec()
        with pytest.raises(ConfigurationError):
            type(spec)(
                name="broken",
                servers_per_site={"mars": 1},
                coordinator_sites=["lille"],
                client_sites=["lille"],
                site_map=spec.site_map,
            )


class TestBasicExecution:
    def test_all_calls_complete(self, ):
        grid = small_grid()
        workload = SyntheticWorkload(n_calls=8, exec_time=1.0, params_bytes=256)
        process = grid.run_process(workload.run(grid.client))
        assert grid.run_until(process, timeout=500.0)
        assert workload.completed_count() == 8
        assert workload.makespan > 0

    def test_results_reach_every_handle_with_identity_match(self):
        grid = small_grid()
        workload = SyntheticWorkload(n_calls=5, exec_time=0.5)
        process = grid.run_process(workload.run(grid.client))
        grid.run_until(process, timeout=300.0)
        for handle in workload.handles:
            assert handle.done
            assert handle.result.identity == handle.identity

    def test_makespan_roughly_matches_ideal(self):
        grid = small_grid(n_servers=4)
        workload = SyntheticWorkload(n_calls=8, exec_time=5.0)
        process = grid.run_process(workload.run(grid.client))
        grid.run_until(process, timeout=600.0)
        ideal = 8 * 5.0 / 4
        assert ideal <= workload.makespan < 4 * ideal

    def test_client_stats_reflect_run(self):
        grid = small_grid()
        workload = SyntheticWorkload(n_calls=4, exec_time=0.5)
        process = grid.run_process(workload.run(grid.client))
        grid.run_until(process, timeout=300.0)
        stats = grid.client.stats()
        assert stats["submitted"] == 4
        assert stats["completed"] == 4
        assert stats["pending"] == 0

    def test_coordinator_state_is_consistent_at_the_end(self):
        grid = small_grid()
        workload = SyntheticWorkload(n_calls=6, exec_time=0.5)
        process = grid.run_process(workload.run(grid.client))
        grid.run_until(process, timeout=300.0)
        primary = grid.coordinators[0]
        assert primary.stats()["finished"] == 6
        assert len(primary.results) == 6

    def test_replication_propagates_to_replica(self):
        grid = small_grid()
        workload = SyntheticWorkload(n_calls=6, exec_time=0.5)
        process = grid.run_process(workload.run(grid.client))
        grid.run_until(process, timeout=300.0)
        grid.run(until=grid.env.now + 3 * grid.spec.protocol.coordinator.replication.period)
        replica = grid.coordinators[1]
        assert replica.finished_count() == 6

    def test_progress_condition_holds_on_healthy_grid(self):
        grid = small_grid()
        assert grid.progress_condition_holds()

    def test_progress_condition_fails_without_coordinators(self):
        grid = small_grid()
        for host in grid.coordinator_hosts():
            host.crash()
        assert not grid.progress_condition_holds()

    def test_internet_testbed_builds_and_runs(self):
        grid = build_internet_testbed(
            servers_per_site={"lille": 2, "orsay": 2}, seed=2
        )
        grid.start()
        workload = SyntheticWorkload(n_calls=4, exec_time=1.0)
        process = grid.run_process(workload.run(grid.client))
        assert grid.run_until(process, timeout=2000.0)
        assert workload.completed_count() == 4


class TestGridRpcApi:
    def test_blocking_and_async_calls(self):
        grid = small_grid()
        api = GridRpc(grid.client)
        api.initialize()
        outcome = {}

        def app():
            result = yield from api.call("sleep", exec_time=1.0, params_bytes=64)
            outcome["blocking"] = result
            handle_id = yield from api.call_async("sleep", exec_time=1.0)
            outcome["status_before"] = api.probe(handle_id)
            outcome["async"] = yield from api.wait(handle_id)
            outcome["status_after"] = api.probe(handle_id)

        process = grid.run_process(app())
        grid.run_until(process, timeout=300.0)
        assert outcome["blocking"] is not None
        assert outcome["async"] is not None
        assert outcome["status_before"] in (RPCStatus.SUBMITTED, RPCStatus.RUNNING)
        assert outcome["status_after"] is RPCStatus.COMPLETED

    def test_wait_all_and_wait_any(self):
        grid = small_grid()
        api = GridRpc(grid.client)
        api.initialize()
        outcome = {}

        def app():
            ids = []
            for _ in range(3):
                handle_id = yield from api.call_async("sleep", exec_time=0.5)
                ids.append(handle_id)
            first_id, _result = yield from api.wait_any(ids)
            outcome["first"] = first_id
            outcome["all"] = yield from api.wait_all(ids)

        process = grid.run_process(app())
        grid.run_until(process, timeout=300.0)
        assert outcome["first"] in api.handles()
        assert len(outcome["all"]) == 3

    def test_initialize_required(self):
        grid = small_grid()
        api = GridRpc(grid.client)
        with pytest.raises(Exception):
            list(api.call_async("sleep"))

    def test_cancel_stops_tracking(self):
        grid = small_grid()
        api = GridRpc(grid.client)
        api.initialize()
        collected = {}

        def app():
            handle_id = yield from api.call_async("sleep", exec_time=0.5)
            collected["id"] = handle_id
            api.cancel(handle_id)

        process = grid.run_process(app())
        grid.run_until(process, timeout=100.0)
        assert collected["id"] not in api.handles()


class TestFaultTolerance:
    def test_server_crash_mid_execution_still_completes(self):
        grid = small_grid(n_servers=2, n_coordinators=1)
        workload = SyntheticWorkload(n_calls=4, exec_time=10.0)
        process = grid.run_process(workload.run(grid.client))
        victim = grid.server_hosts()[0]

        def killer():
            yield grid.env.timeout(15.0)
            victim.crash()
            yield grid.env.timeout(10.0)
            victim.restart()

        grid.env.process(killer())
        assert grid.run_until(process, timeout=3000.0)
        assert workload.completed_count() == 4
        assert grid.monitor.count("faults.server") == 1

    def test_permanent_server_loss_recovered_by_other_server(self):
        grid = small_grid(n_servers=2, n_coordinators=1)
        workload = SyntheticWorkload(n_calls=4, exec_time=10.0)
        process = grid.run_process(workload.run(grid.client))
        victim = grid.server_hosts()[0]

        def killer():
            yield grid.env.timeout(12.0)
            victim.crash()   # never restarted

        grid.env.process(killer())
        assert grid.run_until(process, timeout=3000.0)
        assert workload.completed_count() == 4

    def test_coordinator_crash_and_restart_preserves_tasks(self):
        grid = small_grid(n_servers=2, n_coordinators=2)
        workload = SyntheticWorkload(n_calls=6, exec_time=5.0)
        process = grid.run_process(workload.run(grid.client))
        primary_host = grid.coordinator_hosts()[0]

        def killer():
            yield grid.env.timeout(8.0)
            primary_host.crash()
            yield grid.env.timeout(10.0)
            primary_host.restart()

        grid.env.process(killer())
        assert grid.run_until(process, timeout=3000.0)
        assert workload.completed_count() == 6
        assert grid.coordinators[0].finished_count() >= 1

    def test_primary_coordinator_permanent_failure_fails_over(self):
        grid = small_grid(n_servers=2, n_coordinators=2)
        workload = SyntheticWorkload(n_calls=6, exec_time=5.0)
        process = grid.run_process(workload.run(grid.client))
        primary_host = grid.coordinator_hosts()[0]

        def killer():
            # Let some state replicate first (period is 5 s on the cluster).
            yield grid.env.timeout(12.0)
            primary_host.crash()  # permanent

        grid.env.process(killer())
        assert grid.run_until(process, timeout=4000.0)
        assert workload.completed_count() == 6
        assert grid.monitor.count("server.coordinator_switches") >= 1

    def test_fig7_style_run_with_server_faults_completes(self):
        report = run_synthetic_benchmark(
            n_calls=16,
            exec_time=2.0,
            n_servers=4,
            n_coordinators=2,
            faults_per_minute=6.0,
            fault_target="servers",
            fault_restart_delay=5.0,
            seed=3,
            horizon=3000.0,
        )
        assert report.all_completed
        assert report.makespan >= report.ideal_time

    def test_faults_increase_makespan_on_average(self):
        quiet = run_synthetic_benchmark(
            n_calls=32, exec_time=5.0, n_servers=8, n_coordinators=2, seed=5,
        )
        noisy = run_synthetic_benchmark(
            n_calls=32, exec_time=5.0, n_servers=8, n_coordinators=2, seed=5,
            faults_per_minute=10.0, fault_target="servers", fault_restart_delay=20.0,
            horizon=6000.0,
        )
        assert noisy.makespan > quiet.makespan
        assert noisy.faults_injected > 0


class TestLoggingStrategiesEndToEnd:
    @pytest.mark.parametrize("strategy", list(LoggingStrategy))
    def test_every_strategy_completes_the_workload(self, strategy):
        protocol = ProtocolConfig().with_logging_strategy(strategy)
        protocol.coordinator.replication.period = 5.0
        grid = small_grid(protocol=protocol)
        workload = SyntheticWorkload(n_calls=4, exec_time=1.0, params_bytes=2048)
        process = grid.run_process(workload.run(grid.client))
        assert grid.run_until(process, timeout=500.0)
        assert workload.completed_count() == 4

    def test_blocking_strategy_is_slowest_to_submit(self):
        times = {}
        for strategy in LoggingStrategy:
            protocol = ProtocolConfig().with_logging_strategy(strategy)
            protocol.coordinator.replication.period = 5.0
            protocol.server.work_poll_period = 10_000.0
            grid = small_grid(protocol=protocol, n_servers=1, n_coordinators=1)
            workload = SyntheticWorkload(
                n_calls=8, exec_time=1.0e6, params_bytes=2_000_000
            )
            process = grid.run_process(workload.submit_only(grid.client))
            grid.run_until(process, timeout=5000.0)
            times[strategy] = workload.submission_time
        assert times[LoggingStrategy.PESSIMISTIC_BLOCKING] > times[LoggingStrategy.OPTIMISTIC]


class TestBaselines:
    def test_presets_validate(self):
        assert netsolve_style_protocol().coordinator.replication.enabled is False
        assert no_fault_tolerance_protocol().coordinator.scheduler.reschedule_on_suspicion is False

    def test_baseline_still_completes_without_faults(self):
        report = run_synthetic_benchmark(
            n_calls=8, exec_time=1.0, n_servers=4, n_coordinators=2,
            protocol=netsolve_style_protocol(), seed=2,
        )
        assert report.all_completed
