"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.latency import LanLinkModel
from repro.net.transport import Network
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.types import Address


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def network(env: Environment) -> Network:
    """A LAN network bound to the environment."""
    return Network(env, link_model=LanLinkModel(jitter=0.0), rng=RandomStreams(1))


@pytest.fixture
def addresses() -> dict[str, Address]:
    """A small set of well-known addresses."""
    return {
        "client": Address("client", "c0"),
        "coordinator": Address("coordinator", "k0"),
        "coordinator2": Address("coordinator", "k1"),
        "server": Address("server", "s0"),
        "server2": Address("server", "s1"),
    }
