"""Tests for the pluggable policy layer (policy.* registry, wiring, sweeps)."""

from __future__ import annotations

import time

import pytest

from repro.baselines import (
    POLICY_BUNDLES,
    no_fault_tolerance_protocol,
    protocol_from_bundle,
    rpcv_protocol,
)
from repro.config import (
    LoggingConfig,
    PolicyConfig,
    ProtocolConfig,
    ReplicationConfig,
    SchedulerConfig,
)
from repro.errors import ConfigurationError
from repro.grid.builder import build_confined_cluster
from repro.platform.registry import component_names, create_component
from repro.policies import (
    FastestFirstSchedulerPolicy,
    FifoReschedulePolicy,
    NoReplication,
    OnCommitReplication,
    OptimisticLogging,
    PassivePeriodicReplication,
    PessimisticNonBlockingLogging,
    RandomSchedulerPolicy,
    RoundRobinSchedulerPolicy,
    SchedulerPolicy,
    logging_policy_from,
    replication_policy_from,
    scheduler_policy_from,
)
from repro.scenarios import Axis, ScenarioSpec, run_scenario
from repro.scenarios.engine import benchmark_cell, resolve_protocol
from repro.scenarios.library import SCHEDULER_POLICIES
from repro.scenarios.runner import SweepRunner
from repro.sim.rng import RandomStreams
from repro.types import Address, LoggingStrategy, TaskState
from tests.test_core_units import make_task

SERVER = Address("server", "s0")

#: a fast benchmark_cell parameterisation shared by the equivalence tests.
MICRO = dict(
    n_calls=8, exec_time=2.0, n_servers=4, n_coordinators=2, horizon=1500.0,
    seed=7,
)


class TestRegistryRoundTrip:
    def test_all_policies_are_registered(self):
        names = set(component_names())
        assert set(SCHEDULER_POLICIES) <= names
        assert {
            "policy.repl.passive-periodic", "policy.repl.none",
            "policy.repl.on-commit", "policy.log.pessimistic-blocking",
            "policy.log.pessimistic-nonblocking", "policy.log.optimistic",
        } <= names

    def test_create_component_round_trip(self):
        policy = create_component("policy.sched.round-robin", {"reschedule": False})
        assert isinstance(policy, RoundRobinSchedulerPolicy)
        assert policy.reschedule is False
        assert policy.key == "policy.sched.round-robin"

    def test_unknown_policy_fails_with_known_names(self):
        with pytest.raises(ConfigurationError, match="unknown component"):
            create_component("policy.sched.telepathic")

    def test_entry_shapes(self):
        assert isinstance(
            scheduler_policy_from(SchedulerConfig(), "policy.sched.random"),
            RandomSchedulerPolicy,
        )
        assert isinstance(
            scheduler_policy_from(
                SchedulerConfig(),
                {"name": "policy.sched.fastest-first", "params": {"reschedule": False}},
            ),
            FastestFirstSchedulerPolicy,
        )
        with pytest.raises(ConfigurationError, match="name"):
            scheduler_policy_from(SchedulerConfig(), {"params": {}})
        with pytest.raises(ConfigurationError, match="not a SchedulerPolicy"):
            scheduler_policy_from(SchedulerConfig(), "policy.repl.none")


class TestDefaultDerivation:
    def test_scheduler_defaults_track_the_flags(self):
        policy = scheduler_policy_from(SchedulerConfig())
        assert isinstance(policy, FifoReschedulePolicy)
        assert policy.reschedule is True
        off = scheduler_policy_from(SchedulerConfig(reschedule_on_suspicion=False))
        assert off.reschedule is False

    def test_replication_defaults_track_the_flags(self):
        periodic = replication_policy_from(ReplicationConfig(period=7.0))
        assert isinstance(periodic, PassivePeriodicReplication)
        assert periodic.period == 7.0
        assert isinstance(
            replication_policy_from(ReplicationConfig(enabled=False)), NoReplication
        )

    def test_logging_defaults_track_the_strategy(self):
        assert isinstance(
            logging_policy_from(LoggingConfig()), PessimisticNonBlockingLogging
        )
        assert isinstance(
            logging_policy_from(LoggingConfig(strategy=LoggingStrategy.OPTIMISTIC)),
            OptimisticLogging,
        )


class TestSchedulerVariants:
    def _tasks(self, n=5):
        tasks = {}
        for i in range(1, n + 1):
            task = make_task(i)
            task.call.exec_time = float(n + 1 - i)  # later submissions shorter
            tasks[i] = task
        return tasks

    def test_fifo_picks_oldest(self):
        decision = FifoReschedulePolicy().pick(
            self._tasks(), SERVER, "k0", lambda _o: False, now=0.0
        )
        assert decision.task.identity.rpc.value == 1

    def test_fastest_first_picks_shortest(self):
        decision = FastestFirstSchedulerPolicy().pick(
            self._tasks(), SERVER, "k0", lambda _o: False, now=0.0
        )
        assert decision.task.identity.rpc.value == 5  # shortest exec_time

    def test_round_robin_rotates(self):
        policy = RoundRobinSchedulerPolicy()
        tasks = self._tasks(3)
        first = policy.pick(tasks, SERVER, "k0", lambda _o: False, now=0.0)
        # Reset so the same eligible set is offered again.
        first.task.state = TaskState.PENDING
        second = policy.pick(tasks, SERVER, "k0", lambda _o: False, now=0.0)
        assert first.task.identity.rpc.value == 1
        assert second.task.identity.rpc.value == 2

    def test_random_is_deterministic_per_bound_stream(self):
        def picks():
            policy = RandomSchedulerPolicy().bind(owner="k0", rng=RandomStreams(42))
            sequence = []
            for _ in range(6):
                tasks = self._tasks()
                decision = policy.pick(tasks, SERVER, "k0", lambda _o: False, now=0.0)
                sequence.append(decision.task.identity.rpc.value)
            return sequence

        assert picks() == picks()

    def test_random_requires_a_bound_rng(self):
        with pytest.raises(ConfigurationError, match="never bound"):
            RandomSchedulerPolicy().pick(
                self._tasks(), SERVER, "k0", lambda _o: False, now=0.0
            )

    def test_reschedule_switch(self):
        task = make_task(1, state=TaskState.ONGOING, owner="k0")
        task.assigned_server = SERVER
        held = FifoReschedulePolicy(reschedule=False)
        assert held.reschedule_for_suspected_server({1: task}, SERVER, "k0") == []
        released = FifoReschedulePolicy()
        assert len(released.reschedule_for_suspected_server({1: task}, SERVER, "k0")) == 1


class TestPresetBundleEquivalence:
    def test_presets_carry_their_bundles(self):
        protocol = rpcv_protocol()
        assert protocol.policy.replication["name"] == "policy.repl.passive-periodic"
        assert protocol.coordinator.replication.period == 5.0
        no_ft = no_fault_tolerance_protocol()
        assert no_ft.policy.replication["name"] == "policy.repl.none"
        assert no_ft.coordinator.replication.enabled is False
        assert no_ft.coordinator.scheduler.reschedule_on_suspicion is False
        assert no_ft.client.logging.strategy is LoggingStrategy.OPTIMISTIC

    def test_unknown_bundle_and_axis_raise(self):
        with pytest.raises(ConfigurationError, match="unknown policy bundle"):
            protocol_from_bundle("xtremweb")
        with pytest.raises(ConfigurationError, match="unknown policy bundle axes"):
            protocol_from_bundle({"sched": "policy.sched.random"})

    def test_preset_rows_equal_explicit_policy_bundle_rows(self):
        """A preset and its bundle spelled out as overrides run identically."""
        preset = benchmark_cell(protocol_preset="no-replication", **MICRO)
        bundle = POLICY_BUNDLES["no-fault-tolerance"]
        explicit = benchmark_cell(
            scheduler_policy=bundle["scheduler"],
            replication_policy=bundle["replication"],
            logging_policy=bundle["logging"],
            **MICRO,
        )
        assert preset == explicit

    def test_policy_override_path_reaches_the_grid(self):
        protocol = resolve_protocol(
            None, {"policy.scheduler": "policy.sched.round-robin"}
        )
        grid = build_confined_cluster(
            n_servers=1, n_coordinators=1, protocol=protocol, seed=1
        )
        grid.start()
        assert grid.coordinators[0].scheduler.key == "policy.sched.round-robin"
        assert "policies" in grid.stats()

    def test_bad_policy_override_fails_fast(self):
        with pytest.raises(ConfigurationError, match="unknown component"):
            resolve_protocol(None, {"policy.scheduler": "policy.sched.nope"})

    def test_policy_override_mirrors_the_legacy_flags(self):
        protocol = resolve_protocol(
            None,
            {"policy.replication": "policy.repl.none",
             "policy.logging": "policy.log.optimistic"},
        )
        assert protocol.coordinator.replication.enabled is False
        assert protocol.client.logging.strategy is LoggingStrategy.OPTIMISTIC
        assert protocol.describe()["replication_enabled"] is False

    def test_scheduler_entry_inherits_the_reschedule_flag(self):
        # Swapping the scheduling order on a degraded baseline must not
        # silently re-enable the rescheduling the baseline turned off.
        protocol = resolve_protocol(
            "no-replication", {"policy.scheduler": "policy.sched.random"}
        )
        policy = scheduler_policy_from(
            protocol.coordinator.scheduler, protocol.policy.scheduler
        )
        assert isinstance(policy, RandomSchedulerPolicy)
        assert policy.reschedule is False
        # An explicit param still wins over the flag.
        explicit = scheduler_policy_from(
            protocol.coordinator.scheduler,
            {"name": "policy.sched.random", "params": {"reschedule": True}},
        )
        assert explicit.reschedule is True

    def test_reschedule_flag_override_keeps_the_selected_ordering(self):
        # The scheduler flag only expresses the reschedule switch; overriding
        # it must rewrite the entry's param, not discard the chosen ordering
        # (even when a preset bundle spelled the param out explicitly).
        protocol = resolve_protocol(
            "rpc-v",
            {"policy.scheduler": "policy.sched.random",
             "coordinator.scheduler.reschedule_on_suspicion": False},
        )
        assert protocol.policy.scheduler["name"] == "policy.sched.random"
        policy = scheduler_policy_from(
            protocol.coordinator.scheduler, protocol.policy.scheduler
        )
        assert isinstance(policy, RandomSchedulerPolicy)
        assert policy.reschedule is False

    def test_describe_reports_the_effective_scheduler(self):
        assert ProtocolConfig().describe()["scheduler_policy"] == "fcfs"
        protocol = resolve_protocol(
            None, {"policy.scheduler": "policy.sched.round-robin"}
        )
        assert protocol.describe()["scheduler_policy"] == "policy.sched.round-robin"

    def test_legacy_flag_override_clears_the_shadowing_entry(self):
        # A preset bundles policy entries; explicitly overriding the legacy
        # flag re-asserts the flags as that axis' source of truth.
        protocol = resolve_protocol(
            "rpc-v", {"coordinator.replication.enabled": False}
        )
        assert protocol.policy.replication is None
        assert isinstance(
            replication_policy_from(
                protocol.coordinator.replication, protocol.policy.replication
            ),
            NoReplication,
        )
        # The untouched axes keep their bundle entries.
        assert protocol.policy.scheduler["name"] == "policy.sched.fifo-reschedule"


class TestOnCommitReplication:
    def test_on_commit_replicates_without_waiting_for_the_period(self):
        protocol = ProtocolConfig()
        protocol.coordinator.replication.period = 1000.0  # periodic would idle
        protocol.policy = PolicyConfig(
            replication={"name": "policy.repl.on-commit", "params": {"min_interval": 1.0}}
        )
        grid = build_confined_cluster(
            n_servers=2, n_coordinators=2, protocol=protocol, seed=3
        )
        grid.start()
        assert isinstance(grid.coordinators[0].replication_policy, OnCommitReplication)
        from repro.core.protocol import CallDescription
        from repro.types import CallIdentity, RPCId, SessionId, UserId

        grid.coordinators[0].preload_tasks(
            [
                CallDescription(
                    identity=CallIdentity(
                        user=UserId("u"), session=SessionId("s"), rpc=RPCId(1)
                    ),
                    service="sleep",
                    params_bytes=64,
                    exec_time=1.0,
                )
            ]
        )
        grid.run(until=50.0)
        assert grid.monitor.count("coordinator.replications") >= 1
        assert grid.monitor.count("policy.repl.on-commit.rounds") >= 1
        # The backup learned the task long before the 1000 s period.
        assert len(grid.coordinators[1].tasks) == 1


class TestSchedAblationScenario:
    def test_tiny_rows_are_distinct_per_policy_and_deterministic(self):
        sequential = run_scenario("sched-ablation", scale="tiny", jobs=1)
        parallel = run_scenario("sched-ablation", scale="tiny", jobs=2)
        assert sequential.rows == parallel.rows
        assert [row["scheduler_policy"] for row in sequential.rows] == list(
            SCHEDULER_POLICIES
        )
        makespans = [row["mean_makespan_seconds"] for row in sequential.rows]
        assert len(set(makespans)) == len(makespans), "policies produced equal rows"

    def test_policy_counters_reach_the_cells(self):
        outputs = benchmark_cell(
            scheduler_policy="policy.sched.random", exec_time_spread=2.0, **MICRO
        )
        assert outputs["completed"] == MICRO["n_calls"]


def _sleepy_cell(seed: int = 0, nap: float = 0.0, **_: object) -> dict:
    """Module-level kernel for the timeout tests (crosses process boundaries)."""
    if nap:
        time.sleep(nap)
    return {"napped": nap, "seed": seed}


def _timeout_spec(nap_values, cell_timeout=0.5) -> ScenarioSpec:
    return ScenarioSpec(
        name="timeout-sweep",
        title="cell timeout test sweep",
        cell=_sleepy_cell,
        axes=(Axis("nap", tuple(nap_values)),),
        seeds=(0,),
        cell_timeout=cell_timeout,
    )


class TestCellTimeout:
    def test_overrunning_cell_is_killed_and_recorded(self):
        result = SweepRunner(_timeout_spec((0.0, 5.0), cell_timeout=0.4), jobs=1).run()
        ok, slow = result.rows
        assert ok["napped"] == 0.0
        assert slow.get("timed_out") is True
        assert slow.get("cell_timeout") == 0.4

    def test_parallel_sweep_survives_a_timeout(self):
        result = SweepRunner(_timeout_spec((0.0, 5.0, 0.0), cell_timeout=0.4), jobs=3).run()
        assert [row.get("timed_out", False) for row in result.rows] == [
            False, True, False,
        ]

    def test_fast_cells_are_untouched(self):
        result = SweepRunner(_timeout_spec((0.0, 0.0), cell_timeout=5.0), jobs=1).run()
        assert all("timed_out" not in row for row in result.rows)

    def test_cell_errors_still_propagate(self):
        spec = ScenarioSpec(
            name="error-sweep", title="t", cell=_error_cell, seeds=(0,),
            cell_timeout=5.0,
        )
        with pytest.raises(ValueError, match="boom"):
            SweepRunner(spec, jobs=1).run()

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="cell_timeout"):
            _timeout_spec((0.0,), cell_timeout=-1.0)

    def test_timed_out_cells_are_not_checkpointed(self, tmp_path):
        from repro.scenarios import ResultsStore

        store = ResultsStore(tmp_path)
        spec = _timeout_spec((0.0, 5.0), cell_timeout=0.4)
        result = SweepRunner(spec, jobs=1, store=store).run(save=True)
        assert result.rows[1].get("timed_out") is True
        # Only the finished cell is checkpointed; a --resume retries the
        # timed-out one rather than keeping the placeholder forever.
        checkpointed = store.load_cells("timeout-sweep", spec.spec_hash())
        assert set(checkpointed) == {(0, 0)}
        runner = SweepRunner(spec, jobs=1, store=store, resume=True)
        runner.run()
        assert runner.resumed_cells == 1

    def test_timeout_stamps_the_manifest_only_when_set(self):
        spec = _timeout_spec((0.0,), cell_timeout=1.0)
        assert spec.manifest()["cell_timeout"] == 1.0
        bare = ScenarioSpec(name="bare", title="t", cell=_sleepy_cell, seeds=(0,))
        assert "cell_timeout" not in bare.manifest()


def _error_cell(seed: int = 0, **_: object) -> dict:
    raise ValueError("boom")


class TestScriptedStepsAndPartitionedViews:
    def test_scripted_steps_fire_on_conditions(self):
        grid = build_confined_cluster(n_servers=2, n_coordinators=2, seed=5)
        script = grid.add_component(
            "inject.script",
            {
                "steps": [
                    {"do": "note", "label": 1, "note": "armed"},
                    {"after": 3.0, "do": "kill", "target": "server:s000",
                     "label": 2, "note": "killed"},
                    {"after": 2.0, "do": "restart", "target": "server:s000",
                     "label": 3, "note": "restarted"},
                ]
            },
        )
        grid.start()
        grid.run(until=10.0)
        assert [record["label"] for record in script.recorded] == [1, 2, 3]
        assert script.recorded[1]["time"] == pytest.approx(3.0)
        assert grid.hosts[Address("server", "s000")].up

    def test_scripted_steps_validate(self):
        with pytest.raises(ConfigurationError, match="unknown step action"):
            create_component("inject.script", {"steps": [{"do": "explode"}]})
        with pytest.raises(ConfigurationError, match="unknown step condition"):
            create_component(
                "inject.script",
                {"steps": [{"do": "note", "until": {"kind": "vibes"}}]},
            )
        with pytest.raises(ConfigurationError, match="missing at_least"):
            create_component(
                "inject.script",
                {"steps": [{"do": "note", "until": {
                    "kind": "finished-count", "coordinator": "x"}}]},
            )

    def test_scripted_steps_fail_fast_on_unknown_condition_coordinators(self):
        grid = build_confined_cluster(n_servers=1, n_coordinators=2, seed=5)
        with pytest.raises(ConfigurationError, match="unknown coordinators"):
            grid.add_component(
                "inject.script",
                {"steps": [{
                    "until": {"kind": "finished-count", "coordinator": "lile",
                              "at_least": 1},
                    "do": "note",
                }]},
            )

    def test_partition_schedule_tier_hide_is_bidirectional(self):
        grid = build_confined_cluster(n_servers=2, n_coordinators=2, seed=5)
        hidden = grid.coordinators[0].address
        grid.add_component(
            "net.partition-schedule",
            {
                "events": [
                    {"time": 0, "action": "hide", "dest": str(hidden),
                     "source": "servers", "bidirectional": True},
                ]
            },
        )
        grid.start()
        for server in grid.servers:
            assert not grid.partitions.allows(server.address, hidden)
            assert not grid.partitions.allows(hidden, server.address)
