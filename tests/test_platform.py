"""Tests for the component platform (manager, builder, registry, library)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.grid.builder import build_confined_cluster, build_grid
from repro.grid.deployment import confined_cluster_spec
from repro.platform import (
    BaseComponent,
    ComponentManager,
    component,
    component_names,
    create_component,
    resolve_component,
)
from repro.platform.library import (
    ChurnInjectorComponent,
    HeartbeatBeacon,
    PartitionSchedule,
    RateFaultInjector,
    ScriptedFaults,
)
from repro.scenarios.engine import interpolate_params
from repro.scenarios.runner import SweepRunner
from repro.scenarios.spec import Axis, ScenarioSpec


class Recorder(BaseComponent):
    """Test component recording its lifecycle transitions into a shared log."""

    def __init__(self, name: str, log: list[str]):
        super().__init__(name)
        self.log = log

    def setup(self, builder):
        self.log.append(f"setup:{self.name}")

    def start(self):
        self.log.append(f"start:{self.name}")

    def stop(self):
        self.log.append(f"stop:{self.name}")


class TestComponentManager:
    def test_lifecycle_ordering(self):
        log: list[str] = []
        manager = ComponentManager()
        for name in ("a", "b", "c"):
            manager.add(Recorder(name, log))
        assert manager.phase == "registration"
        manager.setup_all(object())
        assert log == ["setup:a", "setup:b", "setup:c"]
        manager.start_all()
        assert log[3:] == ["start:a", "start:b", "start:c"]
        manager.stop_all()
        assert log[6:] == ["stop:c", "stop:b", "stop:a"]
        assert manager.phase == "stopped"

    def test_late_add_catches_up(self):
        log: list[str] = []
        manager = ComponentManager()
        manager.add(Recorder("a", log))
        manager.setup_all(object())
        manager.start_all()
        manager.add(Recorder("late", log))
        assert "setup:late" in log and "start:late" in log
        manager.stop_all()
        # The late component started last, so it stops first.
        assert log[-2:] == ["stop:late", "stop:a"]

    def test_add_during_setup_is_picked_up(self):
        log: list[str] = []
        manager = ComponentManager()

        class Parent(Recorder):
            def setup(self, builder):
                super().setup(builder)
                manager.add(Recorder("child", log))

        manager.add(Parent("parent", log))
        manager.setup_all(object())
        assert log == ["setup:parent", "setup:child"]

    def test_duplicate_names_and_stopped_adds_raise(self):
        log: list[str] = []
        manager = ComponentManager()
        manager.add(Recorder("a", log))
        with pytest.raises(ConfigurationError, match="already registered"):
            manager.add(Recorder("a", log))
        manager.setup_all(object())
        manager.start_all()
        manager.stop_all()
        with pytest.raises(ConfigurationError, match="stopped"):
            manager.add(Recorder("b", log))

    def test_contract_and_lookup_errors(self):
        manager = ComponentManager()
        with pytest.raises(ConfigurationError, match="Component"):
            manager.add(object())
        with pytest.raises(ConfigurationError, match="no component named"):
            manager.get("ghost")

    def test_idempotent_start_and_stop(self):
        log: list[str] = []
        manager = ComponentManager()
        manager.add(Recorder("a", log))
        manager.setup_all(object())
        manager.start_all()
        manager.start_all()
        manager.stop_all()
        manager.stop_all()
        assert log == ["setup:a", "start:a", "stop:a"]


class TestComponentRegistry:
    def test_builtins_are_registered(self):
        names = component_names()
        for name in (
            "inject.rate", "inject.churn", "inject.script",
            "net.partition-schedule", "detect.heartbeat",
        ):
            assert name in names

    def test_create_with_params(self):
        built = create_component(
            "inject.rate", {"target": "coordinators", "faults_per_minute": 3.0}
        )
        assert isinstance(built, RateFaultInjector)
        assert built.name == "faultgen-coordinators"

    def test_dotted_path_fallback(self):
        for path in (
            "repro.platform.library.ChurnInjectorComponent",
            "repro.platform.library:ChurnInjectorComponent",
        ):
            assert resolve_component(path) is ChurnInjectorComponent

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="inject.rate"):
            resolve_component("no-such-component")

    def test_bad_params_are_configuration_errors(self):
        with pytest.raises(ConfigurationError, match="rejected its parameters"):
            create_component("inject.rate", {"bogus": 1})

    def test_duplicate_registration_raises(self):
        @component("test.dup-probe")
        class Probe(BaseComponent):
            pass

        with pytest.raises(ConfigurationError, match="already registered"):
            component("test.dup-probe")(Recorder)


class TestBuilderFacade:
    def test_exposes_the_cross_cutting_capabilities(self):
        grid = build_confined_cluster(n_servers=2, n_coordinators=2)
        builder = grid.builder
        assert builder.env is grid.env
        assert builder.network is grid.network
        assert builder.rng is grid.rng
        assert builder.monitor is grid.monitor
        assert builder.services is grid.services
        assert builder.partitions is grid.partitions
        assert builder.config is grid.spec.protocol
        assert builder.rng.stream("x") is grid.rng.stream("x")

    def test_host_selectors(self):
        grid = build_confined_cluster(n_servers=3, n_coordinators=2)
        builder = grid.builder
        assert len(builder.hosts("servers")) == 3
        assert len(builder.hosts("coordinators")) == 2
        assert len(builder.hosts("clients")) == 1
        assert len(builder.hosts("all")) == 6
        assert builder.host("server:s000").address.name == "s000"
        assert builder.host("s001").address.name == "s001"
        with pytest.raises(ConfigurationError, match="unknown host tier"):
            builder.hosts("printers")
        with pytest.raises(ConfigurationError, match="no host"):
            builder.host("mainframe")


class TestGridOnThePlatform:
    def test_tiers_are_registered_components(self):
        grid = build_confined_cluster(n_servers=2, n_coordinators=2)
        names = grid.manager.names()
        assert names[:2] == ["coordinator:cluster-k0", "coordinator:cluster-k1"]
        assert names[2:4] == ["server:s000", "server:s001"]
        assert names[4] == "client:c0"
        assert grid.component("client:c0") is grid.client

    def test_start_stop_drive_the_manager(self):
        grid = build_confined_cluster(n_servers=1, n_coordinators=1)
        assert not grid.started
        grid.start()
        assert grid.started and grid.client.started
        grid.stop()
        assert not grid.started
        assert grid.client._heartbeat.stopped

    def test_build_grid_accepts_component_entries(self):
        spec = confined_cluster_spec(n_servers=2, n_coordinators=1)
        grid = build_grid(
            spec,
            components=[
                ("inject.churn", {"target": "servers", "mtbf": 30.0, "mttr": 5.0}),
                {"name": "detect.heartbeat", "params": {"period": 2.0}},
            ],
        )
        churn = grid.component("churn-servers")
        assert churn.injector is not None  # setup ran
        grid.start()
        grid.run(until=120.0)
        assert churn.injected > 0
        assert grid.component("heartbeat-servers").sent > 0

    def test_instance_entries_with_params_raise(self):
        grid = build_confined_cluster(n_servers=1, n_coordinators=1)
        with pytest.raises(ConfigurationError, match="by name"):
            grid.add_component(ChurnInjectorComponent(), params={"mtbf": 1.0})


class TestLibraryComponents:
    def test_scripted_faults_follow_the_timetable(self):
        grid = build_confined_cluster(n_servers=2, n_coordinators=1)
        grid.add_component(ScriptedFaults(events=[
            {"time": 5.0, "action": "kill", "target": "server:s000"},
            {"time": 12.0, "action": "restart", "target": "server:s000"},
        ]))
        grid.start()
        host = grid.builder.host("server:s000")
        grid.run(until=8.0)
        assert not host.up
        grid.run(until=15.0)
        assert host.up

    def test_scripted_faults_reject_unknown_targets(self):
        spec = confined_cluster_spec(n_servers=1, n_coordinators=1)
        with pytest.raises(ConfigurationError, match="unknown hosts"):
            build_grid(spec, components=[
                ("inject.script",
                 {"events": [{"time": 1.0, "action": "kill", "target": "ghost"}]}),
            ])

    def test_partition_schedule_partitions_and_heals(self):
        grid = build_confined_cluster(n_servers=2, n_coordinators=1)
        grid.add_component(PartitionSchedule(events=[
            {"time": 0.0, "action": "partition", "partition": "split",
             "group_a": "servers", "group_b": "coordinators"},
            {"time": 10.0, "action": "heal", "partition": "split"},
        ]))
        grid.start()
        server = grid.servers[0].address
        coordinator = grid.coordinators[0].address
        # Zero-time events are applied synchronously at start.
        assert not grid.partitions.allows(server, coordinator)
        grid.run(until=12.0)
        assert grid.partitions.allows(server, coordinator)

    def test_partition_schedule_rejects_unknown_actions(self):
        with pytest.raises(ConfigurationError, match="unknown partition action"):
            PartitionSchedule(events=[{"time": 0.0, "action": "explode"}])

    def test_partition_schedule_rejects_missing_time(self):
        with pytest.raises(ConfigurationError, match="no 'time'"):
            PartitionSchedule(events=[{"action": "heal-all"}])

    def test_heartbeat_beacon_sends_extra_signal(self):
        grid = build_confined_cluster(n_servers=2, n_coordinators=1)
        beacon = grid.add_component(HeartbeatBeacon(
            tier="servers", targets="coordinators", period=1.0,
        ))
        grid.start()
        grid.run(until=10.0)
        assert beacon.sent >= 10
        grid.stop()
        assert all(e.pending_timer is None for e in beacon.emitters)

    def test_heartbeat_beacon_survives_crash_and_restart(self):
        grid = build_confined_cluster(n_servers=1, n_coordinators=1)
        beacon = grid.add_component(HeartbeatBeacon(
            tier="servers", targets="coordinators", period=1.0,
        ))
        grid.start()
        host = grid.builder.host("server:s000")
        grid.run(until=5.0)
        host.crash()
        grid.run(until=10.0)
        quiet = beacon.sent  # no beats while down (pending tick reclaimed)
        grid.run(until=12.0)
        assert beacon.sent == quiet
        host.restart()  # the beacon's restart hook re-arms the emitter
        grid.run(until=20.0)
        assert beacon.sent > quiet
        grid.stop()
        host.crash()
        host.restart()  # after stop() the hook is gone: stays silent
        stopped = beacon.sent
        grid.run(until=30.0)
        assert beacon.sent == stopped


class TestInterpolation:
    def test_placeholders_resolve_recursively(self):
        resolved = interpolate_params(
            [{"name": "x", "params": {"rate": "$rate", "nested": ["$seed"]}}],
            {"rate": 4.0, "seed": 7},
        )
        assert resolved == [{"name": "x", "params": {"rate": 4.0, "nested": [7]}}]

    def test_unknown_placeholder_raises(self):
        with pytest.raises(ConfigurationError, match="unknown cell parameter"):
            interpolate_params({"rate": "$missing"}, {"seed": 1})

    def test_dollar_escape(self):
        assert interpolate_params("$$literal", {}) == "$literal"


#: counts how often the custom injector below actually armed, across cells.
_CUSTOM_STARTS: list[str] = []


@component("test.first-server-killer")
class FirstServerKiller(BaseComponent):
    """Minimal custom injector: kill the first server once at ``at`` seconds."""

    def __init__(self, at: float = 10.0):
        super().__init__("first-server-killer")
        self.at = at
        self.injected = 0

    def setup(self, builder):
        self.env = builder.env
        self.victim = builder.hosts("servers")[0]

    def start(self):
        _CUSTOM_STARTS.append(self.name)

        def kill():
            yield self.env.timeout(self.at)
            if self.victim.up:
                self.injected += 1
                self.victim.crash(cause=self.name)

        self.env.process(kill(), name=self.name)


class TestCustomComponentFromSpec:
    def test_spec_components_drive_a_custom_injector(self):
        """A new injector is a class + decorator + spec entry — no builder edits."""
        from repro.scenarios.engine import benchmark_cell

        spec = ScenarioSpec(
            name="custom-injector-sweep",
            title="custom injector",
            cell=benchmark_cell,
            base=dict(n_calls=6, exec_time=2.0, n_servers=2, n_coordinators=1,
                      horizon=600.0),
            axes=(Axis("kill_at", (4.0, 1e9)),),
            seeds=(1,),
            components=(
                {"name": "test.first-server-killer", "params": {"at": "$kill_at"}},
            ),
        )
        _CUSTOM_STARTS.clear()
        result = SweepRunner(spec, jobs=1).run()
        assert len(_CUSTOM_STARTS) == 2
        by_kill_at = {row["kill_at"]: row for row in result.rows}
        # The early kill is survived (rescheduling) and counted; the
        # never-firing kill injects nothing.
        assert by_kill_at[4.0]["faults_injected"] == 1
        assert by_kill_at[4.0]["completed"] == 6
        assert by_kill_at[1e9]["faults_injected"] == 0
        # The spec hash covers the components list.
        without = spec.with_overrides(components=())
        assert spec.spec_hash() != without.spec_hash()
